//! A minimal JSON reader/writer for checkpoint shards and manifests.
//!
//! The build environment is offline (no serde), so the checkpoint
//! format is served by this deliberately small module: a
//! recursive-descent parser into [`Json`] values and escape-correct
//! string writing. Two properties matter more than generality:
//!
//! * **Exactness** — numbers keep their raw token text, so `u64` seeds
//!   and `f64` bit patterns round-trip without any float parsing in
//!   the way (callers store floats via [`f64::to_bits`]).
//! * **Named errors** — a corrupt shard produces a position-stamped
//!   message for [`crate::error::DcnrError::Checkpoint`], never a
//!   panic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed JSON value. Numbers keep their raw token so integer
/// precision is never laundered through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw token text (e.g. `"42"`, `"-1.5e3"`).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (sorted map); the writer
    /// side of the checkpoint format emits fields explicitly.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(map) => map.get(key).ok_or_else(|| format!("missing field {key:?}")),
            _ => Err(format!("expected an object while reading {key:?}")),
        }
    }

    /// The value as a `u64` (integer token required).
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("expected an unsigned integer, got {raw:?}")),
            other => Err(format!("expected a number, got {}", other.kind())),
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, String> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected a bool, got {}", other.kind())),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected a string, got {}", other.kind())),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected an array, got {}", other.kind())),
        }
    }

    /// An `f64` stored as its IEEE-754 bit pattern (a `u64` field).
    pub fn as_f64_bits(&self) -> Result<f64, String> {
        self.as_u64().map(f64::from_bits)
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Parses one JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b) if *b == want => {
            *pos += 1;
            Ok(())
        }
        Some(_) => Err(format!("expected {:?} at byte {}", char::from(want), *pos)),
        None => Err(format!(
            "unexpected end of input (wanted {:?})",
            char::from(want)
        )),
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", char::from(*c), *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("malformed number at byte {start}"));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).expect("sliced on ASCII boundaries");
    // Validate the token parses as *some* number so garbage like
    // "1.2.3" is rejected at read time, not when a field is accessed.
    if raw.parse::<f64>().is_err() && raw.parse::<u64>().is_err() {
        return Err(format!("malformed number {raw:?} at byte {start}"));
    }
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "non-ASCII \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "malformed \\u escape")?;
                        // Checkpoint writers only escape control chars,
                        // so surrogate pairs are out of scope; reject
                        // rather than mis-decode.
                        let ch = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let ch = rest.chars().next().expect("non-empty by match arm");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert!(v.get("b").unwrap().get("c").unwrap().as_bool().unwrap());
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "x");
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX;
        let v = parse(&format!("{{\"seed\": {big}}}")).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64().unwrap(), big);
    }

    #[test]
    fn f64_bits_round_trip() {
        for f in [0.0, -1.5, std::f64::consts::PI, 1e-300, f64::MAX] {
            let v = parse(&format!("{{\"x\": {}}}", f.to_bits())).unwrap();
            let back = v.get("x").unwrap().as_f64_bits().unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn f64_bits_round_trip_ieee_edge_cases() {
        // Values plain decimal JSON numbers cannot carry (NaN,
        // infinities) or would silently normalize (-0.0, subnormals):
        // the bit-pattern path must keep every one exact.
        let edges = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            5e-324, // smallest positive subnormal
            -5e-324,
            f64::MIN_POSITIVE,                     // smallest positive normal
            f64::MIN_POSITIVE / 2.0,               // a mid-range subnormal
            f64::from_bits(0x7FF8_DEAD_BEEF_0001), // NaN with payload
        ];
        for f in edges {
            let v = parse(&format!("{{\"x\": {}}}", f.to_bits())).unwrap();
            let back = v.get("x").unwrap().as_f64_bits().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "bits must be exact for {f}");
        }
        // Sign-sensitive checks decimal round-trips typically lose.
        let v = parse(&format!("{{\"x\": {}}}", (-0.0f64).to_bits())).unwrap();
        assert!(v
            .get("x")
            .unwrap()
            .as_f64_bits()
            .unwrap()
            .is_sign_negative());
        let v = parse(&format!("{{\"x\": {}}}", f64::NAN.to_bits())).unwrap();
        assert!(v.get("x").unwrap().as_f64_bits().unwrap().is_nan());
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "a \"quoted\" \\ back\nnew\ttab \u{1} control µ";
        let mut doc = String::from("{\"k\": ");
        write_str(&mut doc, nasty);
        doc.push('}');
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn named_errors_for_malformed_documents() {
        assert!(parse("{").unwrap_err().contains("unexpected end"));
        assert!(parse("[1,]").unwrap_err().contains("byte"));
        assert!(parse("{\"a\": 1} x").unwrap_err().contains("trailing"));
        assert!(parse("tru").unwrap_err().contains("literal"));
        assert!(parse("\"abc").unwrap_err().contains("unterminated"));
        assert!(parse("1.2.3").unwrap_err().contains("malformed number"));
    }

    #[test]
    fn field_access_errors_are_named() {
        let v = parse("{\"n\": 1.5}").unwrap();
        assert!(v.get("missing").unwrap_err().contains("missing"));
        assert!(v.get("n").unwrap().as_u64().unwrap_err().contains("1.5"));
        assert!(v.get("n").unwrap().as_str().unwrap_err().contains("number"));
    }
}
