//! The seven-year intra-datacenter study (§5).
//!
//! Pipeline: calibrated issue generation ([`dcnr_faults`]) → automated
//! remediation triage ([`dcnr_remediation`]) → SEV creation
//! ([`dcnr_service`]) → the SEV database and query layer
//! ([`dcnr_sev`]). Each `table*`/`fig*` method reproduces one published
//! artifact from the resulting database — by querying it, exactly as the
//! paper's SQL did, never by reading the calibration tables.

use dcnr_faults::hazard::HazardConfig;
use dcnr_faults::{
    calibration, FleetGrowth, HazardModel, IssueGenerator, RootCause, RootCauseModel,
};
use dcnr_remediation::{RemediationEngine, RemediationOutcome, Table1Report};
use dcnr_service::SevGenerator;
use dcnr_sev::{MetricsExt, SevDb, SevLevel};
use dcnr_sim::StudyCalendar;
use dcnr_stats::{pearson_correlation, YearSeries};
use dcnr_topology::{DeviceType, NetworkDesign};
use std::collections::BTreeMap;

/// Configuration for one intra-DC study run.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Fleet scale multiplier. 1.0 is the calibrated baseline fleet;
    /// the default of 10.0 produces "thousands of incidents" like the
    /// paper's dataset (§4.2) at the cost of a few seconds of runtime.
    pub scale: f64,
    /// Master seed; every derived stream is deterministic in it.
    pub seed: u64,
    /// Hazard-model knobs (ablations A-1 and A-2).
    pub hazard: HazardConfig,
    /// Observation window (defaults to the paper's 2011–2017).
    pub window: StudyCalendar,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            scale: 10.0,
            seed: 0xDC_2018,
            hazard: HazardConfig::default(),
            window: StudyCalendar::intra_dc(),
        }
    }
}

/// A completed intra-DC study: the SEV database plus everything needed
/// to reproduce Tables 1–2 and Figures 2–14.
pub struct IntraDcStudy {
    config: StudyConfig,
    growth: FleetGrowth,
    db: SevDb,
    outcomes: Vec<RemediationOutcome>,
}

impl IntraDcStudy {
    /// Runs the full pipeline.
    pub fn run(config: StudyConfig) -> Self {
        let build = dcnr_telemetry::span("intra.fleet_build");
        let growth = FleetGrowth::scaled(config.scale);
        let hazard = HazardModel::with_config(config.hazard);
        let generator = IssueGenerator::new(
            growth.clone(),
            hazard.clone(),
            RootCauseModel::paper(),
            config.seed,
        );
        build.finish();
        let issues = generator.generate(config.window);
        let remediation = dcnr_telemetry::span("intra.remediation");
        let mut engine = RemediationEngine::new(hazard, config.seed);
        let outcomes = engine.triage_all(issues);
        remediation.finish();
        let sev = dcnr_telemetry::span("intra.sev_analysis");
        let mut db = SevDb::new();
        SevGenerator::new(config.seed).ingest(&outcomes, &mut db);
        sev.finish();
        Self {
            config,
            growth,
            db,
            outcomes,
        }
    }

    /// The study's configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The SEV database (for ad-hoc queries).
    pub fn db(&self) -> &SevDb {
        &self.db
    }

    /// The fleet growth model used.
    pub fn growth(&self) -> &FleetGrowth {
        &self.growth
    }

    /// All remediation outcomes (incident + non-incident issues).
    pub fn outcomes(&self) -> &[RemediationOutcome] {
        &self.outcomes
    }

    /// First study year.
    pub fn first_year(&self) -> i32 {
        calibration::FIRST_YEAR
    }

    /// Last study year.
    pub fn last_year(&self) -> i32 {
        calibration::LAST_YEAR
    }

    fn population(&self) -> impl Fn(DeviceType, i32) -> f64 + '_ {
        |t, y| self.growth.population(t, y)
    }

    // ---------------- Tables ----------------

    /// **Table 1** — automated repair ratio / priority / wait / repair
    /// time per covered device type, measured from the triage outcomes.
    pub fn table1_automated_repair(&self) -> Table1Report {
        Table1Report::from_outcomes(self.outcomes.iter())
    }

    /// **Table 2** — root-cause shares over all seven years (multi-cause
    /// SEVs count toward each category).
    pub fn table2_root_causes(&self) -> BTreeMap<RootCause, f64> {
        self.db.query().fraction_by_root_cause()
    }

    // ---------------- Figures ----------------

    /// **Fig. 2** — root-cause distribution per device type: for each
    /// root cause, the fraction of its incidents on each device type.
    pub fn fig2_root_cause_by_device(&self) -> BTreeMap<RootCause, BTreeMap<DeviceType, f64>> {
        RootCause::ALL
            .iter()
            .map(|&c| (c, self.db.query().root_cause(c).fraction_by_device_type()))
            .collect()
    }

    /// **Fig. 3** — incident rate (incidents per device) per type per
    /// year.
    pub fn fig3_incident_rate(&self) -> BTreeMap<DeviceType, YearSeries> {
        DeviceType::INTRA_DC
            .iter()
            .map(|&t| {
                let mut s = YearSeries::new(self.first_year(), self.last_year());
                for y in self.first_year()..=self.last_year() {
                    s.set(y, self.db.incident_rate(t, y, self.population()));
                }
                (t, s)
            })
            .collect()
    }

    /// **Fig. 4** — for each severity level in 2017, the device-type
    /// breakdown, plus each level's share of all 2017 SEVs.
    pub fn fig4_severity_by_device(&self) -> BTreeMap<SevLevel, (f64, BTreeMap<DeviceType, f64>)> {
        let total = self.db.query().year(2017).count() as f64;
        SevLevel::ALL
            .iter()
            .map(|&l| {
                let q = self.db.query().year(2017).severity(l);
                let share = if total > 0.0 {
                    q.count() as f64 / total
                } else {
                    0.0
                };
                (l, (share, q.fraction_by_device_type()))
            })
            .collect()
    }

    /// **Fig. 5** — per-device SEV rate by severity level over the years.
    pub fn fig5_sev_rates(&self) -> BTreeMap<SevLevel, YearSeries> {
        SevLevel::ALL
            .iter()
            .map(|&l| {
                (
                    l,
                    self.db
                        .sev_rate_series(l, self.first_year(), self.last_year(), |y| {
                            self.growth.total_population(y)
                        }),
                )
            })
            .collect()
    }

    /// **Fig. 6** — `(employees, normalized switches)` scatter and its
    /// Pearson correlation.
    pub fn fig6_switches_vs_employees(&self) -> (Vec<(f64, f64)>, f64) {
        let pts = self.growth.switches_vs_employees();
        let r = pearson_correlation(&pts).unwrap_or(0.0);
        (pts, r)
    }

    /// **Fig. 7** — each device type's fraction of that year's incidents.
    pub fn fig7_incident_fractions(&self) -> BTreeMap<DeviceType, YearSeries> {
        let totals = self
            .db
            .query()
            .count_by_year(self.first_year(), self.last_year());
        DeviceType::INTRA_DC
            .iter()
            .map(|&t| {
                let counts = self
                    .db
                    .query()
                    .device_type(t)
                    .count_by_year(self.first_year(), self.last_year());
                (t, counts.per(&totals))
            })
            .collect()
    }

    /// **Fig. 8** — incidents per type per year, normalized to the total
    /// number of SEVs in 2017 (the paper's fixed baseline).
    pub fn fig8_normalized_incidents(&self) -> BTreeMap<DeviceType, YearSeries> {
        let baseline = self.db.query().year(2017).count() as f64;
        DeviceType::INTRA_DC
            .iter()
            .map(|&t| {
                let counts = self
                    .db
                    .query()
                    .device_type(t)
                    .count_by_year(self.first_year(), self.last_year());
                (t, counts.normalized_to(baseline.max(1.0)))
            })
            .collect()
    }

    /// **Fig. 9** — incidents per network design per year, normalized to
    /// the 2017 SEV total.
    pub fn fig9_design_incidents(&self) -> BTreeMap<NetworkDesign, YearSeries> {
        let baseline = self.db.query().year(2017).count() as f64;
        [NetworkDesign::Cluster, NetworkDesign::Fabric]
            .iter()
            .map(|&d| {
                let counts = self
                    .db
                    .query()
                    .design(d)
                    .count_by_year(self.first_year(), self.last_year());
                (d, counts.normalized_to(baseline.max(1.0)))
            })
            .collect()
    }

    /// **Fig. 10** — incidents per device for each network design per
    /// year.
    pub fn fig10_design_rate(&self) -> BTreeMap<NetworkDesign, YearSeries> {
        [NetworkDesign::Cluster, NetworkDesign::Fabric]
            .iter()
            .map(|&d| {
                let counts = self
                    .db
                    .query()
                    .design(d)
                    .count_by_year(self.first_year(), self.last_year());
                let mut pops = YearSeries::new(self.first_year(), self.last_year());
                for y in self.first_year()..=self.last_year() {
                    pops.set(y, self.growth.design_population(d, y));
                }
                (d, counts.per(&pops))
            })
            .collect()
    }

    /// **Fig. 11** — population fraction per device type per year.
    pub fn fig11_population_fractions(&self) -> BTreeMap<DeviceType, YearSeries> {
        DeviceType::INTRA_DC
            .iter()
            .map(|&t| {
                let mut s = YearSeries::new(self.first_year(), self.last_year());
                for y in self.first_year()..=self.last_year() {
                    s.set(y, self.growth.population_fraction(t, y));
                }
                (t, s)
            })
            .collect()
    }

    /// **Fig. 12** — MTBI (device-hours) per type per year; `None`
    /// years are omitted from the series (plotted as gaps).
    pub fn fig12_mtbi(&self) -> BTreeMap<DeviceType, Vec<(i32, f64)>> {
        DeviceType::INTRA_DC
            .iter()
            .map(|&t| {
                let pts = (self.first_year()..=self.last_year())
                    .filter_map(|y| self.db.mtbi_hours(t, y, self.population()).map(|m| (y, m)))
                    .collect();
                (t, pts)
            })
            .collect()
    }

    /// §5.6's fabric-vs-cluster MTBI comparison for `year`.
    pub fn design_mtbi(&self, year: i32) -> (Option<f64>, Option<f64>) {
        (
            self.db
                .design_mtbi_hours(NetworkDesign::Fabric, year, self.population()),
            self.db
                .design_mtbi_hours(NetworkDesign::Cluster, year, self.population()),
        )
    }

    /// **Fig. 13** — p75 incident resolution time per type per year.
    pub fn fig13_p75irt(&self) -> BTreeMap<DeviceType, Vec<(i32, f64)>> {
        DeviceType::INTRA_DC
            .iter()
            .map(|&t| {
                let pts = (self.first_year()..=self.last_year())
                    .filter_map(|y| self.db.p75irt_hours(t, y).map(|p| (y, p)))
                    .collect();
                (t, pts)
            })
            .collect()
    }

    /// **Fig. 14** — `(p75IRT across all types, normalized switches)`
    /// per year, with the Pearson correlation.
    pub fn fig14_irt_vs_fleet(&self) -> (Vec<(f64, f64)>, f64) {
        let max_pop = self.growth.total_population(self.last_year());
        let pts: Vec<(f64, f64)> = (self.first_year()..=self.last_year())
            .filter_map(|y| {
                let hours = self.db.query().year(y).resolution_hours();
                let p75 = dcnr_stats::Summary::new(&hours)?.p75();
                Some((p75, self.growth.total_population(y) / max_pop))
            })
            .collect();
        let r = pearson_correlation(&pts).unwrap_or(0.0);
        (pts, r)
    }

    /// Total SEV growth factor 2011 → 2017 (the paper reports 9.4×).
    pub fn sev_growth_factor(&self) -> Option<f64> {
        self.db
            .query()
            .count_by_year(self.first_year(), self.last_year())
            .growth_factor()
    }

    // ---------------- sensitivity analyses ----------------

    /// Table 2 recomputed after passing every report through a noisy
    /// review process (§5.1's misclassification concern): how far can
    /// reviewer error move the root-cause distribution?
    pub fn table2_with_review(&self, process: dcnr_sev::ReviewProcess) -> BTreeMap<RootCause, f64> {
        let mut rng = dcnr_sim::stream_rng(self.config.seed, "core.review-sensitivity");
        let reviewed = process.review_db(&mut rng, &self.db);
        reviewed.query().fraction_by_root_cause()
    }

    /// Fig. 3 incident rates adjusted for hardware wear-out (§4.3.3's
    /// "switch maturity" conflating factor): each type-year rate is
    /// multiplied by the fleet's Weibull hazard multiplier at shape `k`.
    /// `k = 1` returns the measured rates unchanged.
    pub fn fig3_with_wearout(&self, k: f64) -> BTreeMap<DeviceType, YearSeries> {
        let cohorts = dcnr_faults::CohortAgeModel::paper();
        self.fig3_incident_rate()
            .into_iter()
            .map(|(t, series)| {
                let mut adjusted = YearSeries::new(self.first_year(), self.last_year());
                for (year, rate) in series.points() {
                    adjusted.set(year, rate * cohorts.hazard_multiplier(t, year, k));
                }
                (t, adjusted)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> IntraDcStudy {
        // Scale 2 keeps unit tests quick while leaving ~260 incidents in
        // 2017 for stable shares.
        IntraDcStudy::run(StudyConfig {
            scale: 2.0,
            seed: 0xAB,
            ..Default::default()
        })
    }

    #[test]
    fn pipeline_produces_thousands_of_issues_hundreds_of_sevs() {
        let s = study();
        assert!(s.outcomes().len() > 10_000, "issues {}", s.outcomes().len());
        assert!(s.db().len() > 400, "sevs {}", s.db().len());
        assert!(s.db().len() < 3000, "sevs {}", s.db().len());
    }

    #[test]
    fn table1_matches_paper() {
        let s = study();
        let t1 = s.table1_automated_repair();
        let rsw = t1.row(DeviceType::Rsw).expect("RSW row");
        assert!((rsw.repair_ratio() - 0.997).abs() < 0.003);
        let core = t1.row(DeviceType::Core).expect("Core row");
        assert!((core.repair_ratio() - 0.75).abs() < 0.05);
        assert!(t1.row(DeviceType::Csa).is_none());
    }

    #[test]
    fn table2_maintenance_leads_determined_causes() {
        let s = study();
        let t2 = s.table2_root_causes();
        let m = t2[&RootCause::Maintenance];
        for c in [
            RootCause::Hardware,
            RootCause::Configuration,
            RootCause::Bug,
        ] {
            assert!(m >= t2[&c] - 0.03, "maintenance {m} vs {c}: {}", t2[&c]);
        }
        assert!((t2[&RootCause::Undetermined] - 0.29).abs() < 0.06);
    }

    #[test]
    fn fig3_anchors() {
        let s = study();
        let rates = s.fig3_incident_rate();
        // CSA spike 2013.
        let csa_2013 = rates[&DeviceType::Csa].get(2013);
        assert!((csa_2013 - 1.7).abs() < 0.6, "csa 2013 {csa_2013}");
        // RSW stays under 1%.
        assert!(rates[&DeviceType::Rsw].get(2017) < 0.01);
        // Fabric types have zero rate before deployment.
        assert_eq!(rates[&DeviceType::Fsw].get(2014), 0.0);
    }

    #[test]
    fn fig4_core_and_rsw_dominate_2017() {
        let s = study();
        let f4 = s.fig4_severity_by_device();
        let (sev3_share, by_dev) = &f4[&SevLevel::Sev3];
        assert!(*sev3_share > 0.7, "SEV3 share {sev3_share}");
        let core = by_dev.get(&DeviceType::Core).copied().unwrap_or(0.0);
        let rsw = by_dev.get(&DeviceType::Rsw).copied().unwrap_or(0.0);
        assert!(core > 0.2, "core {core}");
        assert!(rsw > 0.15, "rsw {rsw}");
    }

    #[test]
    fn fig5_inflection_mid_study() {
        let s = study();
        let f5 = s.fig5_sev_rates();
        let sev3 = &f5[&SevLevel::Sev3];
        // Rate grows early, then falls after the fabric deployment.
        assert!(sev3.get(2013) > sev3.get(2011));
        assert!(sev3.get(2017) < sev3.get(2014));
    }

    #[test]
    fn fig6_strong_correlation() {
        let (pts, r) = study().fig6_switches_vs_employees();
        assert_eq!(pts.len(), 7);
        assert!(r > 0.97, "r {r}");
    }

    #[test]
    fn fig7_fractions_sum_to_one_each_year() {
        let s = study();
        let f7 = s.fig7_incident_fractions();
        for y in 2011..=2017 {
            let sum: f64 = f7.values().map(|series| series.get(y)).sum();
            assert!((sum - 1.0).abs() < 0.02, "{y}: {sum}");
        }
    }

    #[test]
    fn fig9_fabric_half_of_cluster_2017() {
        let s = study();
        let f9 = s.fig9_design_incidents();
        let fabric = f9[&NetworkDesign::Fabric].get(2017);
        let cluster = f9[&NetworkDesign::Cluster].get(2017);
        let ratio = fabric / cluster;
        assert!((ratio - 0.5).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn fig10_cluster_rate_exceeds_fabric() {
        let s = study();
        let f10 = s.fig10_design_rate();
        for y in 2015..=2017 {
            assert!(
                f10[&NetworkDesign::Cluster].get(y) > f10[&NetworkDesign::Fabric].get(y),
                "{y}"
            );
        }
    }

    #[test]
    fn fig12_mtbi_span_and_anchor() {
        let s = study();
        let f12 = s.fig12_mtbi();
        let core_2017 = f12[&DeviceType::Core]
            .iter()
            .find(|&&(y, _)| y == 2017)
            .map(|&(_, m)| m)
            .expect("core 2017");
        assert!(
            (core_2017 - 39_495.0).abs() / 39_495.0 < 0.35,
            "core {core_2017}"
        );
        let rsw_2017 = f12[&DeviceType::Rsw]
            .iter()
            .find(|&&(y, _)| y == 2017)
            .map(|&(_, m)| m)
            .expect("rsw 2017");
        assert!(rsw_2017 / core_2017 > 50.0, "span {}", rsw_2017 / core_2017);
    }

    #[test]
    fn design_mtbi_ratio_about_3x() {
        let s = study();
        let (fabric, cluster) = s.design_mtbi(2017);
        let ratio = fabric.unwrap() / cluster.unwrap();
        assert!(ratio > 1.8 && ratio < 6.5, "ratio {ratio}");
    }

    #[test]
    fn fig13_irt_grows() {
        let s = study();
        let f13 = s.fig13_p75irt();
        let rsw = &f13[&DeviceType::Rsw];
        let first = rsw.first().expect("data").1;
        let last = rsw.last().expect("data").1;
        assert!(last > 3.0 * first, "p75IRT {first} -> {last}");
    }

    #[test]
    fn fig14_positive_correlation() {
        let (pts, r) = study().fig14_irt_vs_fleet();
        assert_eq!(pts.len(), 7);
        assert!(r > 0.7, "r {r}");
    }

    #[test]
    fn growth_factor_near_9_4() {
        let g = study().sev_growth_factor().expect("growth");
        assert!((g - 9.4).abs() < 3.5, "growth {g}");
    }

    #[test]
    fn deterministic() {
        let a = IntraDcStudy::run(StudyConfig {
            scale: 1.0,
            seed: 5,
            ..Default::default()
        });
        let b = IntraDcStudy::run(StudyConfig {
            scale: 1.0,
            seed: 5,
            ..Default::default()
        });
        assert_eq!(a.db().records(), b.db().records());
    }

    #[test]
    fn review_sensitivity_moves_table2_toward_undetermined() {
        let s = study();
        let baseline = s.table2_root_causes();
        let noisy = s.table2_with_review(dcnr_sev::ReviewProcess::new(0.3, 1.0));
        assert!(
            noisy[&RootCause::Undetermined] > baseline[&RootCause::Undetermined] + 0.1,
            "{} -> {}",
            baseline[&RootCause::Undetermined],
            noisy[&RootCause::Undetermined]
        );
        // Zero-error review is the identity.
        let clean = s.table2_with_review(dcnr_sev::ReviewProcess::new(0.0, 0.5));
        for (cause, share) in &baseline {
            assert!((clean[cause] - share).abs() < 1e-12);
        }
    }

    #[test]
    fn wearout_adjustment_widens_fabric_cluster_gap() {
        let s = study();
        let base = s.fig3_incident_rate();
        let worn = s.fig3_with_wearout(2.0);
        // Identity at k = 1.
        let identity = s.fig3_with_wearout(1.0);
        for (t, series) in &base {
            for (year, rate) in series.points() {
                assert!((identity[t].get(year) - rate).abs() < 1e-12);
            }
        }
        // Under wear-out, the old cluster CSWs get relatively worse
        // versus the young fabric FSWs.
        let ratio_base =
            base[&DeviceType::Csw].get(2017) / base[&DeviceType::Fsw].get(2017).max(1e-9);
        let ratio_worn =
            worn[&DeviceType::Csw].get(2017) / worn[&DeviceType::Fsw].get(2017).max(1e-9);
        assert!(ratio_worn > ratio_base, "{ratio_base} -> {ratio_worn}");
    }
}
