//! `dcnr` — command-line front end for the reliability study toolkit.
//!
//! ```text
//! dcnr intra     [--scale S] [--seed N] [--no-automation] [--no-drain]
//! dcnr backbone  [--seed N] [--edges E] [--vendors V]
//! dcnr chaos     [--seed N] [--corrupt-rate R] [--loss-rate R] [--dup-rate R] ...
//! dcnr drill
//! dcnr risk      [--trials N] [--seed N]
//! dcnr help
//! ```

use dcnr_core::backbone::topo::BackboneParams;
use dcnr_core::backbone::BackboneSimConfig;
use dcnr_core::chaos::{run_study, ChaosConfig, Tolerance};
use dcnr_core::faults::hazard::HazardConfig;
use dcnr_core::{Experiment, InterDcStudy, IntraDcStudy, StudyConfig};
use std::process::ExitCode;

const USAGE: &str = "\
dcnr — Data Center Network Reliability study toolkit

USAGE:
    dcnr intra     [--scale S] [--seed N] [--no-automation] [--no-drain]
                   Run the seven-year intra-DC study; print Tables 1-2
                   and Figures 2-14 with paper-vs-measured comparisons.
    dcnr backbone  [--seed N] [--edges E] [--vendors V]
                   Run the eighteen-month backbone study; print
                   Figures 15-18 and Table 4.
    dcnr chaos     [--seed N] [--sim-seed N] [--edges E] [--vendors V]
                   [--corrupt-rate R] [--truncate-rate R] [--loss-rate R]
                   [--dup-rate R] [--reorder-rate R] [--store-fail-rate R]
                   Run the backbone study twice — clean and under
                   injected ingestion faults — print the data-quality
                   report, and check the paper statistics stay within
                   tolerance. Unset rates default to the drill mix.
    dcnr drill     Run the fault-injection and disaster-recovery drills
                   on the reference mixed region.
    dcnr risk      [--trials N] [--seed N]
                   Conditional-risk capacity planning over a simulated
                   backbone.
    dcnr help      Show this message.
";

/// Minimal flag parser: `--name value` and boolean `--name` forms.
struct Args {
    rest: Vec<String>,
}

impl Args {
    fn new(args: Vec<String>) -> Self {
        Self { rest: args }
    }

    fn flag(&mut self, name: &str) -> bool {
        if let Some(pos) = self.rest.iter().position(|a| a == name) {
            self.rest.remove(pos);
            true
        } else {
            false
        }
    }

    fn value<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, String> {
        let Some(pos) = self.rest.iter().position(|a| a == name) else {
            return Ok(None);
        };
        if pos + 1 >= self.rest.len() {
            return Err(format!("{name} requires a value"));
        }
        let raw = self.rest.remove(pos + 1);
        self.rest.remove(pos);
        raw.parse::<T>()
            .map(Some)
            .map_err(|_| format!("invalid value for {name}: {raw:?}"))
    }

    fn finish(self) -> Result<(), String> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {:?}", self.rest))
        }
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let command = argv.remove(0);
    let result = match command.as_str() {
        "intra" => cmd_intra(Args::new(argv)),
        "backbone" => cmd_backbone(Args::new(argv)),
        "chaos" => cmd_chaos(Args::new(argv)),
        "drill" => cmd_drill(Args::new(argv)),
        "risk" => cmd_risk(Args::new(argv)),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_intra(mut args: Args) -> Result<(), String> {
    let scale: f64 = args.value("--scale")?.unwrap_or(10.0);
    let seed: u64 = args.value("--seed")?.unwrap_or(0xDC_2018);
    let hazard = HazardConfig {
        automation_enabled: !args.flag("--no-automation"),
        drain_policy_enabled: !args.flag("--no-drain"),
    };
    args.finish()?;
    if scale.is_nan() || scale <= 0.0 {
        return Err("--scale must be positive".into());
    }

    eprintln!("running intra-DC study (scale {scale}, seed {seed:#x})...");
    let intra = IntraDcStudy::run(StudyConfig {
        scale,
        seed,
        hazard,
        ..Default::default()
    });
    let inter = small_backbone(seed);
    println!(
        "dataset: {} issues -> {} SEVs (2011-2017)\n",
        intra.outcomes().len(),
        intra.db().len()
    );
    for e in Experiment::ALL.into_iter().filter(|e| e.is_intra()) {
        print_experiment(e, &intra, &inter);
    }
    Ok(())
}

fn cmd_backbone(mut args: Args) -> Result<(), String> {
    let seed: u64 = args.value("--seed")?.unwrap_or(0xB0_E5);
    let edges: u32 = args.value("--edges")?.unwrap_or(90);
    let vendors: u32 = args.value("--vendors")?.unwrap_or(40);
    args.finish()?;
    if edges < 2 || vendors < 1 {
        return Err("need at least 2 edges and 1 vendor".into());
    }

    eprintln!("running backbone study ({edges} edges, {vendors} vendors, seed {seed:#x})...");
    let inter = InterDcStudy::run(BackboneSimConfig {
        params: BackboneParams {
            edges,
            vendors,
            min_links_per_edge: 3,
        },
        seed,
        ..Default::default()
    });
    let intra = IntraDcStudy::run(StudyConfig {
        scale: 0.5,
        seed,
        ..Default::default()
    });
    println!(
        "dataset: {} e-mails -> {} tickets (Oct 2016 - Apr 2018)\n",
        inter.output().emails.len(),
        inter.tickets().len()
    );
    for e in Experiment::ALL.into_iter().filter(|e| !e.is_intra()) {
        print_experiment(e, &intra, &inter);
    }
    Ok(())
}

fn cmd_chaos(mut args: Args) -> Result<(), String> {
    let chaos_seed: u64 = args.value("--seed")?.unwrap_or(0xC4_05);
    let sim_seed: u64 = args.value("--sim-seed")?.unwrap_or(0xB0_E5);
    let edges: u32 = args.value("--edges")?.unwrap_or(90);
    let vendors: u32 = args.value("--vendors")?.unwrap_or(40);
    let mut cfg = ChaosConfig::drill(chaos_seed);
    if let Some(r) = args.value("--corrupt-rate")? {
        cfg.corrupt_rate = r;
    }
    if let Some(r) = args.value("--truncate-rate")? {
        cfg.truncate_rate = r;
    }
    if let Some(r) = args.value("--loss-rate")? {
        cfg.loss_rate = r;
    }
    if let Some(r) = args.value("--dup-rate")? {
        cfg.dup_rate = r;
    }
    if let Some(r) = args.value("--reorder-rate")? {
        cfg.reorder_rate = r;
    }
    if let Some(r) = args.value("--store-fail-rate")? {
        cfg.store_fail_rate = r;
    }
    args.finish()?;
    cfg.validate()?;
    if edges < 2 || vendors < 1 {
        return Err("need at least 2 edges and 1 vendor".into());
    }

    eprintln!(
        "running chaos ingestion drill ({edges} edges, {vendors} vendors, \
         sim seed {sim_seed:#x}, chaos seed {chaos_seed:#x})..."
    );
    let sim = BackboneSimConfig {
        params: BackboneParams {
            edges,
            vendors,
            min_links_per_edge: 3,
        },
        seed: sim_seed,
        ..Default::default()
    };
    let out = run_study(sim, &cfg, Tolerance::default());

    println!("{}", out.report);
    println!();
    println!("paper statistics, clean vs chaos (Figures 15-18, Table 4):");
    for d in &out.deviations {
        println!("  {d}");
    }
    println!();
    println!("write-path drill (SEV store + remediation queue):");
    println!(
        "  sev         : {} committed, {} transient failures, {} abandoned, max delay {}",
        out.drill.sev.committed,
        out.drill.sev.transient_failures,
        out.drill.sev.abandoned,
        out.drill.sev.max_delay,
    );
    println!(
        "  remediation : {} committed, {} transient failures, {} abandoned, max delay {}",
        out.drill.remediation.committed,
        out.drill.remediation.transient_failures,
        out.drill.remediation.abandoned,
        out.drill.remediation.max_delay,
    );
    println!();
    println!("annotation for regenerated tables/figures:");
    println!("  {}", out.report.annotation());

    if out.within_tolerance() {
        println!("\nverdict: paper statistics within tolerance under injected faults");
        Ok(())
    } else {
        Err("paper statistics drifted outside tolerance under injected faults".into())
    }
}

fn cmd_drill(args: Args) -> Result<(), String> {
    args.finish()?;
    use dcnr_core::service::{disaster_drill, FaultInjectionDrill, ImpactModel, Placement};
    use dcnr_core::topology::Region;
    let region = Region::mixed_reference();
    let placement = Placement::default_mix(&region.topology);
    let model = ImpactModel::default();

    println!("fault-injection sweep (every device, one at a time):");
    let drill = FaultInjectionDrill::sweep(&region, &placement, &model);
    for r in drill.reports() {
        println!(
            "  {:<5} n={:<4} worst={}   mean capacity loss {:>6.3}%",
            r.device_type.to_string(),
            r.devices,
            r.worst_severity,
            r.mean_capacity_loss * 100.0
        );
    }
    println!("\ndisaster drills:");
    for dc in &region.datacenters {
        let r = disaster_drill(&region, &placement, &model, dc);
        println!(
            "  dc{}: {} racks lost / {} surviving, {:.1}% capacity lost",
            r.datacenter,
            r.racks_lost,
            r.racks_surviving,
            r.capacity_lost_fraction * 100.0
        );
    }
    Ok(())
}

fn cmd_risk(mut args: Args) -> Result<(), String> {
    let trials: u32 = args.value("--trials")?.unwrap_or(400_000);
    let seed: u64 = args.value("--seed")?.unwrap_or(0xB0_E5);
    args.finish()?;
    if trials == 0 {
        return Err("--trials must be positive".into());
    }
    eprintln!("simulating backbone and planning capacity ({trials} trials)...");
    let inter = InterDcStudy::run(BackboneSimConfig {
        seed,
        ..Default::default()
    });
    let report = inter
        .risk_report(trials)
        .ok_or("no edge failures observed; cannot assess risk")?;
    println!(
        "expected concurrently-failed edges : {:.3}",
        report.expected_failures
    );
    println!(
        "p99.99 concurrent edge failures    : {}",
        report.p9999_failures
    );
    println!(
        "P(all edges up)                    : {:.3}",
        report.p_all_up
    );
    println!(
        "capacity headroom rule             : {:.1}%",
        report.headroom_fraction * 100.0
    );
    Ok(())
}

fn small_backbone(seed: u64) -> InterDcStudy {
    InterDcStudy::run(BackboneSimConfig {
        params: BackboneParams {
            edges: 30,
            vendors: 12,
            min_links_per_edge: 3,
        },
        seed,
        ..Default::default()
    })
}

fn print_experiment(e: Experiment, intra: &IntraDcStudy, inter: &InterDcStudy) {
    let out = e.run(intra, inter);
    println!("----------------------------------------------------------");
    println!("{}", e.title());
    println!("----------------------------------------------------------");
    println!("{}", out.rendered);
    for c in &out.comparisons {
        println!(
            "  {:<40} paper {:>12.4}  measured {:>12.4}",
            c.metric, c.paper, c.measured
        );
    }
    println!();
}
