//! `dcnr` — command-line front end for the reliability study toolkit.
//!
//! Every study subcommand lowers its flags onto a [`Scenario`] and
//! hands it to the scenario engine; `sweep` replicates one scenario
//! across derived seeds under the supervision layer (panic isolation,
//! watchdog deadlines, checkpoint/resume) and prints cross-seed
//! confidence bands.

use dcnr_core::cli::{parse_loadgen_args, parse_serve_args};
use dcnr_core::telemetry::metrics::MetricsSnapshot;
use dcnr_core::telemetry::trace::TraceSnapshot;
use dcnr_core::telemetry::{logger, Telemetry};
use dcnr_core::{
    apply_scenario_flags, artifacts, checkpoint, loadgen, parse_sweep_args, phase_rows,
    render_profile_json, render_profile_table, run_supervised, serve, telemetry_io, ArgScanner,
    DcnrError, Experiment, FaultPlan, InterDcStudy, RunContext, Scenario, ScenarioKind,
    SupervisorConfig, SweepConfig,
};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
dcnr — Data Center Network Reliability study toolkit

Global flags (any command):
    --metrics FILE    write telemetry metrics on exit: Prometheus text,
                      or JSON when FILE ends in .json
    --trace FILE      write the bounded sim-time event trace as JSON
    --quiet, -q       only errors on stderr
    -v                debug detail on stderr
                      Telemetry never perturbs results: report and
                      sweep bytes are identical with or without it.

Scenario flags (shared by intra/backbone/chaos/routes/survivability/
sweep/profile):
    --seed N          master seed; every derived stream follows it
    --scale S         intra-DC fleet scale multiplier
    --topology NAME   zoo member for the survivability lifespan replay
                      (see `dcnr topology --list`; default fat-tree)
    --edges E         backbone edge count
    --vendors V       backbone vendor count
    --no-automation   disable the automated-remediation hazard model
    --no-drain        disable the drain-policy hazard model
    --corrupt-rate R  --truncate-rate R  --loss-rate R
    --dup-rate R      --reorder-rate R   --store-fail-rate R
                      chaos ingestion fault rates (default: drill mix)

USAGE:
    dcnr intra     [scenario flags]
                   Run the seven-year intra-DC study; print Tables 1-2
                   and Figures 2-14 with paper-vs-measured comparisons.
    dcnr backbone  [scenario flags]
                   Run the eighteen-month backbone study; print
                   Figures 15-18 and Table 4.
    dcnr chaos     [scenario flags]
                   Run the backbone study twice — clean and under
                   injected ingestion faults — print the data-quality
                   report, and check the paper statistics stay within
                   tolerance.
    dcnr routes    [scenario flags]
                   Run the forwarding-state study: per-device ECMP path
                   sets with incremental invalidation, capacity loss
                   derived from surviving path fractions, the emergent
                   SEV mix checked against Table 3's 82/13/5, and a
                   workload-degradation curve. --scale here scales the
                   study region (racks per cluster/pod), default 1.0.
    dcnr survivability [scenario flags]
                   Run the topology-zoo survivability study: pair
                   survivability and surviving core capacity vs. failed
                   element fraction (links, switches, servers) across
                   every registered zoo topology, plus a seeded
                   Monte-Carlo fleet-lifespan replay on the --topology
                   member. Prints the surv.ranking and surv.lifespan
                   artifacts with paper-vs-measured comparisons.
    dcnr topology  --list
                   List every registered zoo topology with its
                   parameter schema and node/link counts at scale 1,
                   in registry order.
    dcnr sweep     [--scenario intra|backbone|chaos|routes|survivability]
                   [--seeds N]
                   [--jobs J] [--resamples B] [--confidence C]
                   [--deadline SECS] [--retries K] [--max-failures F]
                   [--checkpoint DIR] [--resume DIR]
                   [--bench-json PATH] [scenario flags]
                   Run N replicas of one scenario (seeds derived from
                   the master seed) on a J-wide supervised worker pool
                   and print paper values against cross-seed confidence
                   bands. A replica that panics is retried up to K
                   times on a fresh derived seed, then quarantined; one
                   that exceeds --deadline is abandoned. The sweep
                   degrades to the survivors and exits nonzero only
                   when more than F replicas failed.
                   --checkpoint persists each completed replica as a
                   JSON shard in DIR (doubling as a result cache);
                   --resume reloads DIR's manifest and shards and
                   re-executes only the missing replicas, rendering
                   byte-identical output. --bench-json additionally
                   times the sweep at 1 and J workers, checks the
                   reports are byte-identical, and writes the wall
                   clocks to PATH.
    dcnr profile   [--scenario intra|backbone|chaos|routes|survivability]
                   [--json PATH]
                   [scenario flags]
                   Run one scenario with the phase timers on, print the
                   wall-clock breakdown per pipeline stage (fleet
                   build, issue generation per device type,
                   remediation, SEV analysis, backbone, aggregation),
                   and write it to PATH (default BENCH_profile.json).
    dcnr serve     [--addr HOST:PORT] [--engine threads|events]
                   [--workers W] [--queue-depth Q]
                   [--cache-entries E] [--sweep-root DIR] [--admin]
                   [--port-file PATH] [--chaos-* ...]
                   [--breaker-threshold N] [--breaker-cooldown-ms MS]
                   [--render-fault-rate R] [--render-fault-skip N]
                   [--render-fault-limit N] [--render-fault-seed S]
                   Serve study reports over HTTP on a fixed worker pool
                   with a bounded accept queue (overload sheds 503 +
                   Retry-After; never hangs). --engine picks the
                   serving core: `threads` (default) blocks a pool
                   thread per connection; `events` runs W epoll
                   reactor workers with per-worker sharded caches —
                   the wire bytes are identical either way. --workers 0
                   auto-detects available parallelism (pool threads or
                   reactor workers). GET /artifacts/{id} (with
                   scenario flags as query parameters, e.g.
                   /artifacts/fig15?seed=7&scale=0.5) renders any
                   registry artifact byte-identically to
                   `dcnr artifact`, through an LRU result cache keyed
                   by scenario+seed+artifact; /sweeps/{dir} aggregates
                   an existing checkpoint directory under --sweep-root;
                   /metrics is live Prometheus text (requests, latency
                   histograms, cache hits/misses, shed count, chaos
                   injections, breaker states, stale serves);
                   /healthz and /readyz report liveness. --admin adds
                   /admin/shutdown (graceful drain) for tests and
                   scripts; SIGINT drains too. --addr with port 0 picks
                   an ephemeral port, written to --port-file.
                   Transport chaos (deterministic, seeded; off unless a
                   --chaos-* flag or DCNR_CHAOS is set; zero rates are
                   byte-identical to off): --chaos-seed S plus
                   --chaos-{accept,read,write}-delay-rate R,
                   --chaos-delay-ms MS, --chaos-reset-rate R,
                   --chaos-truncate-rate R, --chaos-corrupt-rate R,
                   --chaos-stall-rate R, --chaos-stall-ms MS.
                   Render failures trip a per-artifact circuit breaker
                   (--breaker-threshold consecutive failures open it
                   for --breaker-cooldown-ms, then one half-open
                   probe); misses under an open breaker or a saturated
                   queue serve the last good render flagged
                   X-Dcnr-Stale, or shed 503 + Retry-After.
                   Admission control (off by default; off is
                   byte-identical to the pre-admission server):
                   --sojourn-target-ms MS sheds queued connections at
                   dequeue once their queue wait exceeds MS
                   (CoDel-style head drop), --priority-depth N gives
                   /healthz, /readyz, and /metrics their own N-deep
                   lane that is drained first and never sojourn-shed,
                   --adaptive-retry-after derives the shed Retry-After
                   from the observed drain rate (clamped to 1..=30s)
                   instead of the fixed hint.
    dcnr loadgen   [--addr HOST:PORT] [--clients N] [--requests R]
                   [--mix-seed S] [--scenario-seeds K]
                   [--artifacts id,id,...] [--verify] [--chaos]
                   [--retries K] [--backoff-ms MS] [--backoff-cap-ms MS]
                   [--deadline-ms MS] [--min-success F]
                   [--bench-json PATH] [--bench-append]
                   [--bench-label ENGINE]
                   [--timeout-secs T] [scenario flags]
                   [--open-loop [--rate R] [--overload X]
                   [--arrivals N] [--max-in-flight N]
                   [--burst-rate R] [--burst-mult M] [--burst-ms MS]
                   [--diurnal-amplitude A] [--diurnal-period-ms MS]
                   [--trace-out PATH | --trace-in PATH]
                   [--goodput-floor F] [--p99-cap-ms MS]
                   [--health-floor F]]
                   Closed-loop load harness: N client threads drive a
                   running `dcnr serve` with a seeded artifact/scenario
                   request mix and report throughput and p50/p95/p99
                   latency. Every request retries under a per-request
                   deadline with capped jittered exponential backoff,
                   honoring the server's Retry-After on 503; outcomes
                   are classified ok / retried-ok / shed / gave-up /
                   corrupt. --verify compares every body byte-for-byte
                   against a local render; --bench-json writes the run
                   record (--bench-append adds to an existing file,
                   --bench-label tags the record's engine key so
                   threads and events rows stay distinguishable).
                   --chaos is the resilience harness: verification is
                   forced, the verdict fails unless the eventual
                   success rate is >= --min-success (default 0.99) AND
                   no corruption went undetected, and the record goes
                   to BENCH_resilience.json unless --bench-json says
                   otherwise.
                   --open-loop is the overload harness: arrivals fire
                   on their own seeded clock (Poisson at
                   sustainable * --overload, default 2x, with optional
                   burst/diurnal modulation) regardless of responses,
                   bounded by --max-in-flight (excess arrivals are
                   counted as client-dropped, not deferred). The
                   sustainable rate is measured with a short
                   closed-loop calibration unless --rate gives it.
                   Requests are single-attempt (no retries — retrying
                   would re-close the loop); health endpoints are
                   probed throughout. The verdict fails unless goodput
                   >= --goodput-floor (default 0.5) of sustainable,
                   admitted p99 <= --p99-cap-ms (default 1000), and
                   >= --health-floor (default 0.9) of health probes
                   answer. --trace-out records the arrival schedule;
                   --trace-in replays one byte-identically (same
                   seed+config => same trace). The record goes to
                   BENCH_overload.json unless --bench-json says
                   otherwise. Conflicts with --chaos, --verify,
                   --clients, and --requests.
    dcnr artifact  ID [scenario flags]
                   Render one registry artifact (table1, fig2, ...,
                   fig18, table4, routes.capacity, routes.severity_mix,
                   routes.workload) for the scenario — the same bytes
                   `dcnr serve` returns for /artifacts/ID.
    dcnr artifact  --list
                   List every registry artifact id with its title and
                   the paper baseline it reproduces, in registry order.
    dcnr fetch     ADDR TARGET [--validate] [--timeout-secs T]
                   [--retries K] [--deadline-ms MS]
                   One-shot HTTP GET against a running server (no curl
                   needed in scripts); prints the body, fails on
                   non-200. Transient failures (503 shed, transport
                   errors, detected truncation/corruption) retry up to
                   K times (default 2) under the deadline budget,
                   honoring Retry-After. --validate additionally runs
                   the strict Prometheus text-format validator over
                   the body.
    dcnr drill     Run the fault-injection and disaster-recovery drills
                   on the reference mixed region.
    dcnr risk      [--trials N] [--seed N]
                   Conditional-risk capacity planning over a simulated
                   backbone.
    dcnr help      Show this message.

Environment:
    DCNR_FAULT_REPLICA=idx[:panic|panic-once|hang][,...]
                   Test hook: force sweep replica idx to panic or hang,
                   exercising the supervision path end to end.
    DCNR_CHAOS=key=value[,key=value...]
                   Base transport fault plan for `dcnr serve` (same
                   keys as the --chaos-* flags without the prefix,
                   e.g. DCNR_CHAOS=\"seed=7,reset-rate=0.1\"); any
                   --chaos-* flag overrides its key.
";

/// The global flags every command accepts, stripped from argv before
/// subcommand dispatch.
struct GlobalFlags {
    metrics: Option<String>,
    trace: Option<String>,
}

fn parse_global_flags(argv: Vec<String>) -> Result<(GlobalFlags, Vec<String>), DcnrError> {
    let mut scan = ArgScanner::new(argv);
    if scan.flag("--quiet") || scan.flag("-q") {
        logger::set_verbosity(logger::Level::Error);
    }
    let mut verbose = false;
    while scan.flag("-v") {
        verbose = true;
    }
    if verbose {
        logger::set_verbosity(logger::Level::Debug);
    }
    let flags = GlobalFlags {
        metrics: scan.value("--metrics")?,
        trace: scan.value("--trace")?,
    };
    Ok((flags, scan.into_rest()))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let (global, mut argv) = match parse_global_flags(argv) {
        Ok(parsed) => parsed,
        Err(error) => {
            logger::error(format!("error: {error}"));
            return ExitCode::from(error.exit_code());
        }
    };
    if argv.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let command = argv.remove(0);

    // Install a collector only when telemetry output was requested:
    // with none installed every instrumentation call in the engine is
    // a no-op, and either way the study results are byte-identical.
    let handle = (global.metrics.is_some() || global.trace.is_some() || command == "profile")
        .then(Telemetry::new_handle);
    let _guard = handle.clone().map(dcnr_core::telemetry::installed);

    // Sweep replicas run on their own threads with their own
    // collectors; cmd_sweep parks the merged snapshots here so the
    // epilogue can fold them into the main thread's.
    let mut replica_telemetry: Option<(MetricsSnapshot, TraceSnapshot)> = None;

    let mut result = match command.as_str() {
        "intra" => cmd_scenario(
            Scenario::cli_default(ScenarioKind::Intra),
            ArgScanner::new(argv),
        ),
        "backbone" => cmd_scenario(
            Scenario::cli_default(ScenarioKind::Backbone),
            ArgScanner::new(argv),
        ),
        "chaos" => cmd_scenario(
            Scenario::cli_default(ScenarioKind::Chaos),
            ArgScanner::new(argv),
        ),
        "routes" => cmd_scenario(
            Scenario::cli_default(ScenarioKind::Routes),
            ArgScanner::new(argv),
        ),
        "survivability" => cmd_scenario(
            Scenario::cli_default(ScenarioKind::Survivability),
            ArgScanner::new(argv),
        ),
        "topology" => cmd_topology(argv),
        "sweep" => cmd_sweep(ArgScanner::new(argv), &mut replica_telemetry),
        "serve" => cmd_serve(ArgScanner::new(argv)),
        "loadgen" => cmd_loadgen(ArgScanner::new(argv)),
        "artifact" => cmd_artifact(argv),
        "fetch" => cmd_fetch(argv),
        "profile" => cmd_profile(ArgScanner::new(argv), handle.as_ref()),
        "drill" => cmd_drill(ArgScanner::new(argv)),
        "risk" => cmd_risk(ArgScanner::new(argv)),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(DcnrError::Usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    };

    // Telemetry epilogue: fold replica snapshots into the main
    // thread's and write the requested files (even after a failed
    // command — the telemetry often explains the failure).
    if let Some(handle) = &handle {
        let (mut metrics, mut trace) = handle.snapshots();
        if let Some((m, t)) = &replica_telemetry {
            metrics.merge(m);
            trace.merge(t);
        }
        let mut write = |out: Result<(), DcnrError>| {
            if let Err(error) = out {
                if result.is_ok() {
                    result = Err(error);
                } else {
                    logger::error(format!("error: {error}"));
                }
            }
        };
        if let Some(path) = &global.metrics {
            write(telemetry_io::write_metrics_file(path, &metrics));
        }
        if let Some(path) = &global.trace {
            write(telemetry_io::write_trace_file(path, &trace));
        }
    }

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            logger::error(format!("error: {error}"));
            ExitCode::from(error.exit_code())
        }
    }
}

/// Shared driver for `intra` / `backbone` / `chaos`: flags → scenario →
/// engine → printed report.
fn cmd_scenario(base: Scenario, mut args: ArgScanner) -> Result<(), DcnrError> {
    let scenario = apply_scenario_flags(&mut args, base)?;
    args.finish()?;
    logger::info(format!(
        "running {} scenario (seed {:#x}, scale {}, {} edges, {} vendors)...",
        scenario.kind,
        scenario.seed,
        scenario.scale,
        scenario.backbone.edges,
        scenario.backbone.vendors
    ));
    let out = RunContext::new(scenario).try_execute()?;
    print!("{}", out.rendered);
    if out.passed {
        Ok(())
    } else {
        Err(DcnrError::Failed(
            "paper statistics drifted outside tolerance under injected faults".into(),
        ))
    }
}

fn cmd_sweep(
    mut args: ArgScanner,
    replica_telemetry: &mut Option<(MetricsSnapshot, TraceSnapshot)>,
) -> Result<(), DcnrError> {
    let parsed = parse_sweep_args(&mut args)?;
    let jobs = parsed
        .jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));

    let (config, checkpoint_dir) = match &parsed.resume {
        Some(dir) => {
            // The sweep definition comes from the manifest; any stray
            // scenario flag is rejected by finish() below.
            args.finish()?;
            let manifest =
                checkpoint::read_manifest(dir)?.ok_or_else(|| DcnrError::Checkpoint {
                    path: dir.display().to_string(),
                    message: "no manifest.json here; nothing to resume".into(),
                })?;
            (manifest.to_config(jobs)?, Some(dir.clone()))
        }
        None => {
            let kind = parsed.scenario.unwrap_or(ScenarioKind::Intra);
            let base = apply_scenario_flags(&mut args, Scenario::cli_default(kind))?;
            args.finish()?;
            let mut config = SweepConfig::new(base, parsed.seeds.unwrap_or(8), jobs);
            if let Some(r) = parsed.resamples {
                config.resamples = r;
            }
            if let Some(c) = parsed.confidence {
                config.confidence = c;
            }
            (config, parsed.checkpoint.clone())
        }
    };

    let sup = SupervisorConfig {
        deadline: parsed.deadline.map(Duration::from_secs_f64),
        retries: parsed.retries.unwrap_or(1),
        max_failures: parsed.max_failures.unwrap_or(0),
        checkpoint: checkpoint_dir,
        faults: FaultPlan::from_env()?,
    };

    logger::info(format!(
        "sweeping {} scenario: {} seeds on {} workers...",
        config.base.kind, config.seeds, jobs
    ));
    let started = Instant::now();
    let out = run_supervised(config, &sup)?;
    let elapsed = started.elapsed();
    logger::info(format!("sweep finished in {:.2}s", elapsed.as_secs_f64()));
    print!("{}", out.rendered);
    logger::info(out.supervision.trim_end_matches('\n'));
    if let (Some(m), Some(t)) = (out.replica_metrics.clone(), out.replica_trace.clone()) {
        *replica_telemetry = Some((m, t));
    }

    if let Some(path) = &parsed.bench_json {
        write_bench_json(path, config, &sup, elapsed.as_secs_f64(), &out.rendered)?;
    }
    out.gate(sup.max_failures)
}

/// Re-times the sweep single-threaded, checks byte-identity against the
/// parallel report, and records both wall clocks. Runs under the same
/// supervision policy — so with a checkpoint directory the serial rerun
/// is served from the shards the parallel run just wrote.
fn write_bench_json(
    path: &str,
    config: SweepConfig,
    sup: &SupervisorConfig,
    parallel_secs: f64,
    parallel_rendered: &str,
) -> Result<(), DcnrError> {
    logger::info("re-running the sweep on 1 worker for the benchmark baseline...");
    let started = Instant::now();
    let serial = run_supervised(SweepConfig { jobs: 1, ..config }, sup)?;
    let serial_secs = started.elapsed().as_secs_f64();
    let identical = serial.rendered == parallel_rendered;
    if !identical {
        return Err(DcnrError::Failed(
            "sweep reports differ between --jobs 1 and the parallel run".into(),
        ));
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let note = if config.jobs > host_cpus {
        ",\n  \"note\": \"jobs exceed host CPUs; oversubscription can erase the speedup\""
    } else {
        ""
    };
    let json = format!(
        "{{\n  \"scenario\": \"{}\",\n  \"seeds\": {},\n  \"jobs\": {},\n  \
         \"host_cpus\": {},\n  \"wall_secs_jobs_1\": {:.3},\n  \
         \"wall_secs_jobs_n\": {:.3},\n  \"speedup\": {:.3},\n  \
         \"identical_output\": {},\n  \"serial_cache_hits\": {}{note}\n}}\n",
        config.base.kind,
        config.seeds,
        config.jobs,
        host_cpus,
        serial_secs,
        parallel_secs,
        serial_secs / parallel_secs.max(1e-9),
        identical,
        serial.cache_hits()
    );
    std::fs::write(path, json).map_err(|e| DcnrError::Io {
        path: path.to_string(),
        message: format!("write: {e}"),
    })?;
    logger::info(format!(
        "wrote {path} (serial {serial_secs:.2}s, parallel {parallel_secs:.2}s)"
    ));
    Ok(())
}

/// `dcnr profile`: run one scenario with the phase timers on, print the
/// wall-clock breakdown per pipeline stage, and write it as JSON. The
/// table *layout* is deterministic (rows sorted by phase name); the
/// durations are wall-clock and vary run to run.
fn cmd_profile(
    mut args: ArgScanner,
    handle: Option<&dcnr_core::telemetry::TelemetryHandle>,
) -> Result<(), DcnrError> {
    let kind = match args.value::<String>("--scenario")? {
        Some(name) => ScenarioKind::parse(&name).ok_or_else(|| {
            DcnrError::Usage(format!(
                "unknown scenario {name:?} (intra, backbone, chaos, routes, or survivability)"
            ))
        })?,
        None => ScenarioKind::Intra,
    };
    let base = Scenario::cli_default(kind);
    let json_path = args
        .value::<String>("--json")?
        .unwrap_or_else(|| "BENCH_profile.json".into());
    let scenario = apply_scenario_flags(&mut args, base)?;
    args.finish()?;
    let handle = handle.expect("main installs a collector for the profile command");
    logger::info(format!(
        "profiling {} scenario (seed {:#x}, scale {})...",
        scenario.kind, scenario.seed, scenario.scale
    ));
    let _out = RunContext::new(scenario).try_execute()?;
    let (metrics, _) = handle.snapshots();
    let rows = phase_rows(&metrics);
    print!("{}", render_profile_table(&rows));
    let json = render_profile_json(&kind.to_string(), scenario.seed, scenario.scale, &rows);
    std::fs::write(&json_path, json).map_err(|e| DcnrError::Io {
        path: json_path.clone(),
        message: format!("write: {e}"),
    })?;
    logger::info(format!("wrote {json_path}"));
    Ok(())
}

/// `dcnr serve`: the blocking report server. Runs until SIGINT or (in
/// `--admin` mode) `GET /admin/shutdown`, then drains gracefully.
fn cmd_serve(mut args: ArgScanner) -> Result<(), DcnrError> {
    let opts = parse_serve_args(&mut args)?;
    args.finish()?;
    serve::run(&opts)
}

/// `dcnr loadgen`: the closed-loop load harness. Flags the parser does
/// not own (scenario flags) are passed through to the shared scenario
/// path, so `dcnr loadgen --scale 0.25` means the same thing it does on
/// every other subcommand.
fn cmd_loadgen(mut args: ArgScanner) -> Result<(), DcnrError> {
    let mut opts = parse_loadgen_args(&mut args)?;
    opts.scenario_args = args.into_rest();
    if let Some(ol) = &opts.open_loop {
        logger::info(format!(
            "open-loop overload against http://{} ({} arrivals, {:.1}x)...",
            opts.addr, ol.arrivals, ol.overload
        ));
        let report = loadgen::run_open_loop(&opts)?;
        print!("{}", report.rendered);
    } else {
        logger::info(format!(
            "driving http://{} with {} clients x {} requests...",
            opts.addr, opts.clients, opts.requests
        ));
        let report = loadgen::run(&opts)?;
        print!("{}", report.rendered);
    }
    if let Some(path) = &opts.bench_json {
        logger::info(format!("wrote {path}"));
    }
    Ok(())
}

/// `dcnr artifact ID`: render exactly one registry artifact for the
/// scenario — the byte-identical CLI twin of `GET /artifacts/ID`.
fn cmd_artifact(mut argv: Vec<String>) -> Result<(), DcnrError> {
    if argv.first().map(String::as_str) == Some("--list") {
        ArgScanner::new(argv.split_off(1)).finish()?;
        for a in artifacts::registry() {
            println!("{:<22} {}", a.id.key(), a.id.title());
            println!("{:<22} paper: {}", "", a.paper_baseline);
        }
        return Ok(());
    }
    if argv.is_empty() || argv[0].starts_with('-') {
        return Err(DcnrError::Usage(
            "usage: dcnr artifact ID [scenario flags] (IDs: table1, fig2, ..., fig18, \
             table4, routes.capacity, ...) or dcnr artifact --list"
                .into(),
        ));
    }
    let id = argv.remove(0);
    let Some(experiment) = Experiment::ALL.into_iter().find(|e| e.key() == id) else {
        let valid: Vec<&str> = Experiment::ALL.iter().map(|e| e.key()).collect();
        return Err(DcnrError::Usage(format!(
            "unknown artifact {id:?} (valid: {})",
            valid.join(", ")
        )));
    };
    let mut args = ArgScanner::new(argv);
    let base = Scenario::cli_default(artifacts::base_kind(experiment));
    let scenario = apply_scenario_flags(&mut args, base)?;
    args.finish()?;
    print!("{}", serve::render_artifact_text(&scenario, experiment)?);
    Ok(())
}

/// `dcnr topology --list`: enumerate the registered zoo topologies in
/// stable registry order, with each member's parameter schema and its
/// node/link counts when built at scale 1.
fn cmd_topology(mut argv: Vec<String>) -> Result<(), DcnrError> {
    if argv.first().map(String::as_str) != Some("--list") {
        return Err(DcnrError::Usage("usage: dcnr topology --list".into()));
    }
    ArgScanner::new(argv.split_off(1)).finish()?;
    for model in &dcnr_core::topology::zoo::ZOO {
        let topo = model.build(1.0);
        println!("{:<10} {}", model.id, model.summary);
        println!(
            "{:<10} at scale 1: {} nodes, {} links",
            "",
            topo.device_count(),
            topo.link_count()
        );
        for p in model.params {
            println!(
                "{:<10}   {:<18} = {:<6} ({})",
                "", p.name, p.at_scale_1, p.summary
            );
        }
    }
    Ok(())
}

/// `dcnr fetch ADDR TARGET`: one-shot GET for scripts and CI smoke
/// tests in environments without curl. Non-200 responses fail.
/// Transient failures (shed, transport, detected truncation or
/// corruption) retry with backoff under a deadline budget.
fn cmd_fetch(argv: Vec<String>) -> Result<(), DcnrError> {
    let mut args = ArgScanner::new(argv);
    let validate = args.flag("--validate");
    let timeout = Duration::from_secs(args.value::<u64>("--timeout-secs")?.unwrap_or(10));
    let retries = args.value::<u32>("--retries")?.unwrap_or(2);
    let deadline = Duration::from_millis(args.value::<u64>("--deadline-ms")?.unwrap_or(30_000));
    let rest = args.into_rest();
    let [addr, target] = rest.as_slice() else {
        return Err(DcnrError::Usage(
            "usage: dcnr fetch ADDR TARGET [--validate] [--timeout-secs T] \
             [--retries K] [--deadline-ms MS]"
                .into(),
        ));
    };
    let policy = dcnr_core::resilience::RetryPolicy {
        retries,
        attempt_timeout: timeout,
        deadline,
        ..Default::default()
    };
    let result = dcnr_core::resilient_get(addr, target, &policy, 0xFE7C);
    let Some(response) = result.response else {
        let detail = result.error.map(|e| format!(" ({e})")).unwrap_or_default();
        return Err(DcnrError::Failed(format!(
            "fetch http://{addr}{target}: {} after {} attempt{}{detail}",
            result.outcome.label(),
            result.attempts,
            if result.attempts == 1 { "" } else { "s" },
        )));
    };
    if result.attempts > 1 {
        logger::info(format!(
            "{target}: succeeded after {} attempts",
            result.attempts
        ));
    }
    if result.stale {
        logger::info(format!("{target}: response served stale (X-Dcnr-Stale)"));
    }
    let body = String::from_utf8_lossy(&response.body);
    if validate {
        dcnr_core::telemetry::prometheus::validate(&body)
            .map_err(|e| DcnrError::Failed(format!("{target}: invalid Prometheus text: {e}")))?;
        logger::info(format!("{target}: Prometheus text format validated"));
    }
    print!("{body}");
    Ok(())
}

fn cmd_drill(args: ArgScanner) -> Result<(), DcnrError> {
    args.finish()?;
    use dcnr_core::service::{disaster_drill, FaultInjectionDrill, ImpactModel, Placement};
    use dcnr_core::topology::Region;
    let region = Region::mixed_reference();
    let placement = Placement::default_mix(&region.topology);
    let model = ImpactModel::default();

    println!("fault-injection sweep (every device, one at a time):");
    let drill = FaultInjectionDrill::sweep(&region, &placement, &model);
    for r in drill.reports() {
        println!(
            "  {:<5} n={:<4} worst={}   mean capacity loss {:>6.3}%",
            r.device_type.to_string(),
            r.devices,
            r.worst_severity,
            r.mean_capacity_loss * 100.0
        );
    }
    println!("\ndisaster drills:");
    for dc in &region.datacenters {
        let r = disaster_drill(&region, &placement, &model, dc);
        println!(
            "  dc{}: {} racks lost / {} surviving, {:.1}% capacity lost",
            r.datacenter,
            r.racks_lost,
            r.racks_surviving,
            r.capacity_lost_fraction * 100.0
        );
    }
    Ok(())
}

fn cmd_risk(mut args: ArgScanner) -> Result<(), DcnrError> {
    let trials: u32 = args.value("--trials")?.unwrap_or(400_000);
    let seed: u64 = args.value("--seed")?.unwrap_or(0xB0_E5);
    args.finish()?;
    if trials == 0 {
        return Err(DcnrError::Usage("--trials must be positive".into()));
    }
    logger::info(format!(
        "simulating backbone and planning capacity ({trials} trials)..."
    ));
    let inter = InterDcStudy::run(dcnr_core::backbone::BackboneSimConfig {
        seed,
        ..Default::default()
    });
    let report = inter
        .risk_report(trials)
        .ok_or_else(|| DcnrError::Failed("no edge failures observed; cannot assess risk".into()))?;
    println!(
        "expected concurrently-failed edges : {:.3}",
        report.expected_failures
    );
    println!(
        "p99.99 concurrent edge failures    : {}",
        report.p9999_failures
    );
    println!(
        "P(all edges up)                    : {:.3}",
        report.p_all_up
    );
    println!(
        "capacity headroom rule             : {:.1}%",
        report.headroom_fraction * 100.0
    );
    Ok(())
}
