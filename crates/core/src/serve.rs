//! The `dcnr serve` application layer: routes, the rendered-artifact
//! cache, and live metrics on top of the `dcnr-server` substrate.
//!
//! Endpoints:
//!
//! | route                | serves                                        |
//! |----------------------|-----------------------------------------------|
//! | `/artifacts/{id}`    | one registry artifact for the scenario in the |
//! |                      | query string, through the LRU result cache    |
//! | `/sweeps/{dir}`      | the aggregated band report for an existing    |
//! |                      | checkpoint directory under `--sweep-root`     |
//! | `/metrics`           | Prometheus text: server + study metrics       |
//! | `/healthz`, `/readyz`| liveness / readiness (503 while draining)     |
//! | `/admin/shutdown`    | graceful drain (only with `--admin`)          |
//! | `/admin/sleep`       | test hook: hold a worker busy (only `--admin`)|
//!
//! Determinism contract: an `/artifacts/{id}` response is byte-identical
//! to `dcnr artifact {id}` with the same flags. Both paths build the
//! scenario from [`Scenario::cli_default`] for the artifact's study and
//! apply the **same** [`crate::cli::apply_scenario_flags`] (query pairs
//! are rewritten to `--flag=value` arguments), then render through
//! [`render_artifact_text`]. The cache is keyed like a checkpoint shard
//! — scenario kind + seed + artifact id, with the scenario's `Debug`
//! rendering as the same safety net [`crate::checkpoint::Manifest`]
//! uses — so a hit can never serve a response the miss path would not
//! have produced.

use crate::artifacts;
use crate::cli::{apply_scenario_flags, ArgScanner};
use crate::error::{panic_message, DcnrError};
use crate::experiments::Experiment;
use crate::scenario::{RunContext, Scenario};
use crate::sweep;
use dcnr_server::breaker::{BreakerConfig, CircuitBreaker};
use dcnr_server::chaos::ChaosState;
use dcnr_server::event::{EventServer, ReactorStats, ShardedLru, READY_BOUNDS};
use dcnr_server::http::{percent_decode, Request, Response};
use dcnr_server::pool::{AdmissionConfig, Handler, Server, ServerConfig, ServerStats};
use dcnr_sim::rng::derive_indexed_seed;
use dcnr_telemetry::logger;
use dcnr_telemetry::metrics::Key;
use dcnr_telemetry::{prometheus, Telemetry, TelemetryHandle};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which serving engine backs `dcnr serve`. Both speak the same wire
/// protocol through the same handler — the engine-parity integration
/// test `cmp`s their bytes — so the choice is purely operational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The blocking worker thread pool (the default): one thread per
    /// in-flight connection stage, kernel socket timeouts.
    #[default]
    Threads,
    /// The epoll reactor: N event-loop workers multiplexing every
    /// connection, timer-wheel deadlines, per-worker sharded caches.
    Events,
}

impl Engine {
    /// Every valid `--engine` id, for usage errors and docs.
    pub const VALID_IDS: &'static str = "threads, events";

    /// Resolves an `--engine` id; an unknown id is a usage error naming
    /// the menu (the `--topology` discipline).
    pub fn parse(id: &str) -> Result<Engine, DcnrError> {
        match id {
            "threads" => Ok(Engine::Threads),
            "events" => Ok(Engine::Events),
            other => Err(DcnrError::Usage(format!(
                "unknown engine {other:?} (valid engines: {})",
                Engine::VALID_IDS
            ))),
        }
    }

    /// The id this engine is selected by.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Threads => "threads",
            Engine::Events => "events",
        }
    }
}

/// Everything `dcnr serve` needs to start.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Which engine serves: the thread pool or the epoll reactor.
    pub engine: Engine,
    /// Worker thread count; `0` auto-detects
    /// `std::thread::available_parallelism()`.
    pub workers: usize,
    /// Accept-queue depth; connections beyond it shed with 503.
    pub queue_depth: usize,
    /// Rendered-artifact LRU cache capacity (entries).
    pub cache_entries: usize,
    /// Directory `/sweeps/{dir}` resolves checkpoint names under.
    pub sweep_root: PathBuf,
    /// Enable `/admin/shutdown` and `/admin/sleep` (test mode).
    pub admin: bool,
    /// Write the bound address here after binding (ephemeral-port
    /// discovery for scripts and CI).
    pub port_file: Option<PathBuf>,
    /// Transport fault injection (`--chaos-*`); `None` leaves the write
    /// path untouched, and an all-zero plan is byte-identical to `None`.
    pub chaos: Option<dcnr_server::chaos::FaultPlan>,
    /// Circuit-breaker knobs for the artifact render path.
    pub breaker: BreakerConfig,
    /// Deadline-aware admission control (`--sojourn-target-ms`,
    /// `--priority-depth`, `--adaptive-retry-after`); the all-off
    /// default is byte-invisible on the wire and on `/metrics`.
    pub admission: AdmissionConfig,
    /// Deterministic render-failure injection (`--render-fault-*`) for
    /// exercising the breaker and stale-serving paths.
    pub render_faults: RenderFaultPlan,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            engine: Engine::default(),
            workers: 4,
            queue_depth: 64,
            cache_entries: 64,
            sweep_root: PathBuf::from("."),
            admin: false,
            port_file: None,
            chaos: None,
            breaker: BreakerConfig::default(),
            admission: AdmissionConfig::default(),
            render_faults: RenderFaultPlan::default(),
        }
    }
}

/// Deterministic render-failure injection: render attempt `idx` (a
/// process-wide miss counter) fails iff it falls inside the window
/// `[skip, skip + limit)` (`limit == 0` means unbounded) *and* the
/// per-index chance draw for `seed` lands under `rate`. With `rate`
/// `1.0` the window is exact, which is what the breaker-lifecycle tests
/// use to script failure runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderFaultPlan {
    /// Probability a window attempt fails (`0.0` disables the hook).
    pub rate: f64,
    /// Render attempts to leave untouched before the window opens.
    pub skip: u64,
    /// Window length in attempts; `0` leaves it open forever.
    pub limit: u64,
    /// Chance-draw stream seed (`derive_indexed_seed(seed, _, idx)`).
    pub seed: u64,
}

impl Default for RenderFaultPlan {
    fn default() -> Self {
        Self {
            rate: 0.0,
            skip: 0,
            limit: 0,
            seed: 0xFA017,
        }
    }
}

impl RenderFaultPlan {
    /// Whether render attempt `idx` is scripted to fail.
    pub fn fires(&self, idx: u64) -> bool {
        if self.rate <= 0.0 || idx < self.skip {
            return false;
        }
        if self.limit != 0 && idx >= self.skip.saturating_add(self.limit) {
            return false;
        }
        if self.rate >= 1.0 {
            return true;
        }
        let draw = derive_indexed_seed(self.seed, "serve.render.fault", idx);
        ((draw >> 11) as f64 / (1u64 << 53) as f64) < self.rate
    }
}

/// Shared state behind the request handler.
struct ServeState {
    telemetry: TelemetryHandle,
    /// Rendered-artifact result cache. Sharded per worker on the events
    /// engine (hash of the cache key picks the shard); a single shard on
    /// the threads engine, which is observation-equivalent to the plain
    /// mutex-wrapped LRU it replaces.
    cache: ShardedLru<String, Arc<String>>,
    /// Last-known-good renders, retained past `cache` eviction so the
    /// degraded paths (breaker open, render failure, saturation) can
    /// serve something honest — always flagged with `X-Dcnr-Stale`.
    stale: ShardedLru<String, Arc<String>>,
    stats: Arc<ServerStats>,
    sweep_root: PathBuf,
    admin: bool,
    engine: Engine,
    workers: usize,
    queue_depth: usize,
    draining: AtomicBool,
    chaos: Option<Arc<ChaosState>>,
    admission: AdmissionConfig,
    breaker_config: BreakerConfig,
    breakers: Mutex<HashMap<&'static str, CircuitBreaker>>,
    render_faults: RenderFaultPlan,
    render_attempts: AtomicU64,
    /// Reactor counters, published once after the events engine binds
    /// (and only then exported on `/metrics`); never set on threads.
    reactor: std::sync::OnceLock<Arc<ReactorStats>>,
}

/// The engine actually serving, behind one seam.
enum EngineServer {
    Threads(Server),
    Events(EventServer),
}

impl EngineServer {
    fn local_addr(&self) -> SocketAddr {
        match self {
            EngineServer::Threads(s) => s.local_addr(),
            EngineServer::Events(s) => s.local_addr(),
        }
    }

    fn shutdown_and_join(self) {
        match self {
            EngineServer::Threads(s) => s.shutdown_and_join(),
            EngineServer::Events(s) => s.shutdown_and_join(),
        }
    }
}

/// A started server plus the state handles tests and the CLI loop need.
pub struct RunningServer {
    server: Option<EngineServer>,
    state: Arc<ServeState>,
    addr: SocketAddr,
}

impl RunningServer {
    /// The bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether `/admin/shutdown` has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// The live substrate counters (accepted/shed/handled/...).
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.state.stats
    }

    /// The resolved worker count (after `--workers 0` auto-detection).
    pub fn workers(&self) -> usize {
        self.state.workers
    }

    /// The engine serving this instance.
    pub fn engine(&self) -> Engine {
        self.state.engine
    }

    /// The live chaos state, when fault injection is enabled.
    pub fn chaos(&self) -> Option<&Arc<ChaosState>> {
        self.state.chaos.as_ref()
    }

    /// Drains and joins every server thread.
    pub fn shutdown_and_join(mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown_and_join();
        }
    }
}

/// Binds and starts the server; returns immediately. The CLI wraps this
/// in [`run`]; tests drive the returned handle directly.
pub fn start(opts: &ServeOptions) -> Result<RunningServer, DcnrError> {
    let stats = Arc::new(ServerStats::default());
    let workers = resolve_workers(opts.workers, opts.engine);
    let chaos = opts
        .chaos
        .clone()
        .map(|plan| Arc::new(ChaosState::new(plan)));
    if let Some(c) = &chaos {
        logger::info(format!("chaos enabled: {}", c.plan().describe()));
    }
    // One shard per reactor on the events engine so workers answering
    // different artifacts touch different locks; a single shard on the
    // threads engine keeps its behavior (and `/metrics`) unchanged.
    let shards = match opts.engine {
        Engine::Threads => 1,
        Engine::Events => workers,
    };
    let state = Arc::new(ServeState {
        telemetry: Telemetry::new_handle(),
        cache: ShardedLru::new(shards, opts.cache_entries.max(1)),
        stale: ShardedLru::new(shards, opts.cache_entries.max(1) * 8),
        stats: stats.clone(),
        sweep_root: opts.sweep_root.clone(),
        admin: opts.admin,
        engine: opts.engine,
        workers,
        queue_depth: opts.queue_depth.max(1),
        draining: AtomicBool::new(false),
        chaos: chaos.clone(),
        admission: opts.admission,
        breaker_config: opts.breaker,
        breakers: Mutex::new(HashMap::new()),
        render_faults: opts.render_faults,
        render_attempts: AtomicU64::new(0),
        reactor: std::sync::OnceLock::new(),
    });
    let handler: Handler = {
        let state = state.clone();
        Arc::new(move |req| handle(&state, req))
    };
    let config = ServerConfig {
        workers,
        queue_depth: opts.queue_depth.max(1),
        admission: opts.admission,
        chaos,
        ..ServerConfig::default()
    };
    let bind_err = |e: std::io::Error| DcnrError::Io {
        path: opts.addr.clone(),
        message: format!("bind: {e}"),
    };
    let server = match opts.engine {
        Engine::Threads => EngineServer::Threads(
            Server::bind(opts.addr.as_str(), config, stats, handler).map_err(bind_err)?,
        ),
        Engine::Events => {
            let server =
                EventServer::bind(opts.addr.as_str(), config, stats, handler).map_err(bind_err)?;
            let _ = state.reactor.set(server.reactor_stats());
            EngineServer::Events(server)
        }
    };
    let addr = server.local_addr();
    if let Some(path) = &opts.port_file {
        std::fs::write(path, format!("{addr}\n")).map_err(|e| DcnrError::Io {
            path: path.display().to_string(),
            message: format!("write port file: {e}"),
        })?;
    }
    Ok(RunningServer {
        server: Some(server),
        state,
        addr,
    })
}

/// Resolves a `--workers` value: `0` auto-detects the machine's
/// available parallelism (logged, and exported as the
/// `dcnr_server_workers` gauge); anything else is taken as given.
/// Engine-aware: the detected count means pool threads on `threads`
/// and reactor event loops on `events` — either way it is the
/// available parallelism, never below 1.
pub(crate) fn resolve_workers(requested: usize, engine: Engine) -> usize {
    if requested != 0 {
        return requested;
    }
    let detected = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(1);
    let noun = match engine {
        Engine::Threads => "worker thread",
        Engine::Events => "reactor worker",
    };
    logger::info(format!(
        "--workers 0: auto-detected {detected} {noun}{}",
        if detected == 1 { "" } else { "s" }
    ));
    detected
}

/// The blocking `dcnr serve` loop: start, wait for SIGINT or
/// `/admin/shutdown`, drain, join.
pub fn run(opts: &ServeOptions) -> Result<(), DcnrError> {
    dcnr_server::signal::install_sigint_latch();
    let server = start(opts)?;
    logger::info(format!(
        "serving on http://{} ({} engine, {} workers, queue depth {}, cache {} entries)",
        server.addr(),
        server.engine().name(),
        server.workers(),
        opts.queue_depth.max(1),
        opts.cache_entries.max(1),
    ));
    loop {
        if dcnr_server::signal::sigint_received() {
            logger::info("SIGINT received; draining...");
            break;
        }
        if server.shutdown_requested() {
            logger::info("/admin/shutdown received; draining...");
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    server.shutdown_and_join();
    logger::info("drained; all connections served and threads joined");
    Ok(())
}

/// The normalized route label a request is accounted under. Patterns,
/// not raw paths, so the metric cardinality stays bounded — and the
/// values deliberately contain `/` (and `{}`) to keep the Prometheus
/// renderer honest against its own validator.
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/readyz" => "/readyz",
        "/metrics" => "/metrics",
        "/admin/shutdown" => "/admin/shutdown",
        "/admin/sleep" => "/admin/sleep",
        p if p.starts_with("/artifacts/") => "/artifacts/{id}",
        p if p.starts_with("/sweeps/") => "/sweeps/{dir}",
        _ => "unmatched",
    }
}

/// Top-level handler: installs the server's telemetry on this worker
/// thread (study spans recorded while rendering land in `/metrics`),
/// dispatches, and accounts the request.
fn handle(state: &ServeState, req: &Request) -> Response {
    let _guard = dcnr_telemetry::installed(state.telemetry.clone());
    let route = route_label(&req.path);
    let started = Instant::now();
    let response = dispatch(state, req);
    let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    let status = response.status.to_string();
    dcnr_telemetry::counter_add(
        "dcnr_server_requests_total",
        &[("route", route), ("status", &status)],
        1,
    );
    dcnr_telemetry::observe_micros(
        "dcnr_server_request_duration_micros",
        &[("route", route)],
        micros,
    );
    response
}

fn dispatch(state: &ServeState, req: &Request) -> Response {
    match req.path.as_str() {
        "/healthz" => Response::ok("ok\n"),
        "/readyz" => {
            if state.draining.load(Ordering::SeqCst) {
                Response::text(503, "draining\n")
            } else {
                Response::ok("ready\n")
            }
        }
        "/metrics" => metrics_response(state),
        "/admin/shutdown" if state.admin => {
            state.draining.store(true, Ordering::SeqCst);
            Response::ok("draining\n")
        }
        "/admin/sleep" if state.admin => sleep_response(&req.query),
        path => {
            if let Some(id) = path.strip_prefix("/artifacts/") {
                artifact_response(state, id, &req.query)
            } else if let Some(name) = path.strip_prefix("/sweeps/") {
                sweep_response(state, name)
            } else {
                Response::not_found(path)
            }
        }
    }
}

/// Test hook: occupies a worker for `millis` so saturation tests can
/// fill the queue deterministically instead of racing real renders.
fn sleep_response(query: &str) -> Response {
    let millis = query
        .split('&')
        .find_map(|pair| pair.strip_prefix("millis="))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(50)
        .min(10_000);
    std::thread::sleep(Duration::from_millis(millis));
    Response::ok(format!("slept {millis} ms\n"))
}

/// Prometheus text of the server's own registry (request counters,
/// latency histograms, cache hits, study phase spans) with the live
/// substrate counters spliced in at scrape time.
fn metrics_response(state: &ServeState) -> Response {
    let (mut snapshot, _) = state.telemetry.snapshots();
    let key = |name: &str| Key::new(name, &[]);
    let stats = &state.stats;
    for (name, value) in [
        ("dcnr_server_connections_total", &stats.accepted),
        ("dcnr_server_shed_total", &stats.shed),
        ("dcnr_server_handled_total", &stats.handled),
        ("dcnr_server_read_errors_total", &stats.read_errors),
    ] {
        snapshot
            .counters
            .insert(key(name), value.load(Ordering::Relaxed));
    }
    let cache_entries = state.cache.len() as i64;
    for (name, value) in [
        (
            "dcnr_server_queue_depth",
            stats.queue_depth.load(Ordering::Relaxed),
        ),
        (
            "dcnr_server_queue_peak",
            stats.queue_peak.load(Ordering::Relaxed) as i64,
        ),
        ("dcnr_server_workers", state.workers as i64),
        ("dcnr_server_cache_entries", cache_entries),
        (
            "dcnr_server_draining",
            i64::from(state.draining.load(Ordering::SeqCst)),
        ),
    ] {
        snapshot.gauges.insert(key(name), value);
    }
    if let Some(chaos) = &state.chaos {
        for (fault, count) in chaos.stats.by_fault() {
            snapshot.counters.insert(
                Key::new("dcnr_server_chaos_injections_total", &[("fault", fault)]),
                count,
            );
        }
    }
    // Engine-specific series exist only on the events engine: the
    // default threads scrape must stay byte-identical to the pre-engine
    // server (the same discipline as the admission gating below).
    if state.engine == Engine::Events {
        for (shard, (hits, misses, evictions)) in state.cache.shard_snapshots().iter().enumerate() {
            let label = shard.to_string();
            for (name, value) in [
                ("dcnr_server_cache_shard_hits_total", *hits),
                ("dcnr_server_cache_shard_misses_total", *misses),
                ("dcnr_server_cache_shard_evictions_total", *evictions),
            ] {
                snapshot
                    .counters
                    .insert(Key::new(name, &[("shard", &label)]), value);
            }
        }
        if let Some(reactor) = state.reactor.get() {
            snapshot
                .counters
                .insert(key("dcnr_server_reactor_wakeups_total"), reactor.wakeups());
            let (counts, sum, count) = reactor.ready_histogram();
            snapshot.histograms.insert(
                key("dcnr_server_reactor_ready_events"),
                dcnr_telemetry::metrics::HistogramSnapshot {
                    bounds: READY_BOUNDS.to_vec(),
                    counts,
                    sum,
                    count,
                },
            );
        }
    }
    // Admission series exist only when admission control is on: with it
    // off the scrape's series names must match the pre-admission server
    // exactly (the same discipline as the zero-rate chaos shim).
    if state.admission.enabled() {
        for (cause, value) in [
            ("full", &stats.dropped_full),
            ("priority", &stats.dropped_priority),
            ("sojourn", &stats.dropped_sojourn),
        ] {
            snapshot.counters.insert(
                Key::new("dcnr_server_admission_dropped_total", &[("cause", cause)]),
                value.load(Ordering::Relaxed),
            );
        }
        let (counts, sum, count) = stats.sojourn_histogram();
        snapshot.histograms.insert(
            key("dcnr_server_queue_sojourn_micros"),
            dcnr_telemetry::metrics::HistogramSnapshot {
                bounds: dcnr_server::SOJOURN_BOUNDS_MICROS.to_vec(),
                counts,
                sum,
                count,
            },
        );
    }
    for (artifact, breaker) in lock_breakers(state).iter() {
        snapshot.gauges.insert(
            Key::new("dcnr_server_breaker_state", &[("artifact", artifact)]),
            breaker.state().code(),
        );
        let t = breaker.transitions();
        for (to, count) in [
            ("open", t.to_open),
            ("half_open", t.to_half_open),
            ("closed", t.to_closed),
        ] {
            snapshot.counters.insert(
                Key::new(
                    "dcnr_server_breaker_transitions_total",
                    &[("artifact", artifact), ("to", to)],
                ),
                count,
            );
        }
    }
    let mut response = Response::ok(prometheus::render(&snapshot));
    response.content_type = "text/plain; version=0.0.4";
    response
}

fn lock_breakers(
    state: &ServeState,
) -> std::sync::MutexGuard<'_, HashMap<&'static str, CircuitBreaker>> {
    state
        .breakers
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The accept-queue depth at which cache misses brown out: renders are
/// the expensive path, so once the queue is three-quarters full the
/// server stops accepting *new* render work (stale or 503) and spends
/// its workers on cheap routes and cache hits until the queue drains.
fn brownout_threshold(queue_depth: usize) -> usize {
    (queue_depth * 3 / 4).max(2)
}

/// A last-known-good rendering for `key`, flagged stale with the
/// degradation `cause`, if the stale store still holds one.
fn stale_response(
    state: &ServeState,
    key: &str,
    artifact: &'static str,
    cause: &str,
) -> Option<Response> {
    let body = state.stale.get(key)?;
    dcnr_telemetry::counter_add(
        "dcnr_server_stale_total",
        &[("artifact", artifact), ("cause", cause)],
        1,
    );
    let mut response = Response::ok(body.as_str());
    response
        .extra_headers
        .push(("X-Dcnr-Stale".into(), cause.to_string()));
    Some(response)
}

/// A `503` with a `Retry-After` of at least one second.
fn unavailable_for(after: Duration, reason: &str) -> Response {
    let mut response = Response::text(503, format!("{reason}; retry later\n"));
    response
        .extra_headers
        .push(("Retry-After".into(), after.as_secs().max(1).to_string()));
    response
}

fn artifact_response(state: &ServeState, id: &str, query: &str) -> Response {
    let Some(experiment) = Experiment::ALL.into_iter().find(|e| e.key() == id) else {
        return Response::not_found(&format!("artifact {id:?} (valid ids: table1, fig2, ...)"));
    };
    let scenario = match scenario_for_artifact(experiment, query) {
        Ok(s) => s,
        Err(e) => return Response::bad_request(e),
    };
    let artifact_key = experiment.key();
    let key = cache_key(&scenario, artifact_key);
    if let Some(body) = state.cache.get(&key) {
        dcnr_telemetry::counter_add(
            "dcnr_server_cache_hits_total",
            &[("artifact", artifact_key)],
            1,
        );
        return Response::ok(body.as_str());
    }
    dcnr_telemetry::counter_add(
        "dcnr_server_cache_misses_total",
        &[("artifact", artifact_key)],
        1,
    );

    // Brownout: a saturated accept queue means renders cannot keep up;
    // serve stale if we can, shed the miss if we cannot.
    let depth = state.stats.queue_depth.load(Ordering::Relaxed).max(0) as usize;
    if depth >= brownout_threshold(state.queue_depth) {
        dcnr_telemetry::counter_add(
            "dcnr_server_brownout_total",
            &[("artifact", artifact_key)],
            1,
        );
        return stale_response(state, &key, artifact_key, "saturated")
            .unwrap_or_else(|| unavailable_for(Duration::from_secs(1), "render queue saturated"));
    }

    // Circuit breaker around the render path: while open, misses are
    // answered stale or shed instead of burning a worker on a path
    // that keeps failing; a half-open probe readmits one render after
    // the cooldown.
    let now = Instant::now();
    let admitted = lock_breakers(state)
        .entry(artifact_key)
        .or_insert_with(|| CircuitBreaker::new(state.breaker_config))
        .try_acquire(now);
    if !admitted {
        dcnr_telemetry::counter_add(
            "dcnr_server_breaker_rejected_total",
            &[("artifact", artifact_key)],
            1,
        );
        if let Some(response) = stale_response(state, &key, artifact_key, "breaker-open") {
            return response;
        }
        let after = lock_breakers(state)
            .get(artifact_key)
            .map(|b| b.retry_after(now))
            .unwrap_or_default();
        return unavailable_for(after, "artifact render circuit open");
    }

    // Deterministic render-fault hook (tests and the chaos harness).
    let idx = state.render_attempts.fetch_add(1, Ordering::Relaxed);
    let rendered = if state.render_faults.fires(idx) {
        dcnr_telemetry::counter_add(
            "dcnr_server_render_faults_total",
            &[("artifact", artifact_key)],
            1,
        );
        Err(DcnrError::Io {
            path: format!("render[{idx}]"),
            message: "injected render fault".into(),
        })
    } else {
        render_artifact_text(&scenario, experiment)
    };

    match rendered {
        Ok(text) => {
            lock_breakers(state)
                .entry(artifact_key)
                .or_insert_with(|| CircuitBreaker::new(state.breaker_config))
                .record_success();
            let body = Arc::new(text.clone());
            state.cache.insert(key.clone(), body.clone());
            state.stale.insert(key, body);
            Response::ok(text)
        }
        Err(e @ (DcnrError::Config(_) | DcnrError::Usage(_))) => {
            // The request was wrong, not the render path — the probe
            // (if any) completes successfully for breaker purposes.
            lock_breakers(state)
                .entry(artifact_key)
                .or_insert_with(|| CircuitBreaker::new(state.breaker_config))
                .record_success();
            Response::bad_request(e)
        }
        Err(e) => {
            lock_breakers(state)
                .entry(artifact_key)
                .or_insert_with(|| CircuitBreaker::new(state.breaker_config))
                .record_failure(Instant::now());
            dcnr_telemetry::counter_add(
                "dcnr_server_render_failures_total",
                &[("artifact", artifact_key)],
                1,
            );
            stale_response(state, &key, artifact_key, "render-failed")
                .unwrap_or_else(|| Response::internal_error(e))
        }
    }
}

fn sweep_response(state: &ServeState, name: &str) -> Response {
    // The path component is already percent-decoded; a traversal-free
    // plain name is all the server will resolve under --sweep-root.
    if name.is_empty() || name == "." || name == ".." || name.contains('/') || name.contains('\\') {
        return Response::bad_request("sweep name must be a plain directory name");
    }
    match sweep::report_from_checkpoint(&state.sweep_root.join(name)) {
        Ok(text) => Response::ok(text),
        Err(e @ (DcnrError::Checkpoint { .. } | DcnrError::Io { .. })) => {
            Response::not_found(&format!("sweep {name:?}: {e}"))
        }
        Err(e) => Response::internal_error(e),
    }
}

/// The scenario an `/artifacts/{id}` query resolves to: the CLI default
/// for the artifact's study, adjusted by the query string through the
/// same flag path the CLI uses.
pub fn scenario_for_artifact(e: Experiment, query: &str) -> Result<Scenario, DcnrError> {
    scenario_from_query(Scenario::cli_default(artifacts::base_kind(e)), query)
}

/// Rewrites query pairs (`seed=7&no-automation`) into the CLI's flag
/// form (`--seed=7 --no-automation`) and applies them via
/// [`apply_scenario_flags`] — one parser for both surfaces, so a flag
/// added there is automatically a query parameter here, and unknown
/// parameters fail with the same named usage error.
pub fn scenario_from_query(base: Scenario, query: &str) -> Result<Scenario, DcnrError> {
    let mut argv = Vec::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = match pair.split_once('=') {
            Some((k, v)) => (k, Some(v)),
            None => (pair, None),
        };
        let k = percent_decode(k).map_err(|e| DcnrError::Usage(format!("query: {e}")))?;
        match v {
            Some(v) => {
                let v = percent_decode(v).map_err(|e| DcnrError::Usage(format!("query: {e}")))?;
                argv.push(format!("--{k}={v}"));
            }
            None => argv.push(format!("--{k}")),
        }
    }
    let mut scan = ArgScanner::new(argv);
    let scenario = apply_scenario_flags(&mut scan, base)?;
    scan.finish()
        .map_err(|e| DcnrError::Usage(format!("query string: {e}")))?;
    Ok(scenario)
}

/// The query string that reproduces `scenario` against a default base —
/// the inverse of [`scenario_from_query`] for the knobs `dcnr loadgen`
/// varies. Always names seed/scale/edges/vendors explicitly so a cached
/// response can never be confused across seeds.
pub fn scenario_query(s: &Scenario) -> String {
    let mut q = format!(
        "seed={}&scale={}&edges={}&vendors={}",
        s.seed, s.scale, s.backbone.edges, s.backbone.vendors
    );
    if !s.hazard.automation_enabled {
        q.push_str("&no-automation");
    }
    if !s.hazard.drain_policy_enabled {
        q.push_str("&no-drain");
    }
    q
}

/// The result-cache key for (`scenario`, `artifact`): kind + master
/// seed + artifact id, plus the scenario's `Debug` rendering as the
/// exact-match safety net the checkpoint manifest uses — any scenario
/// knob, present or future, distinguishes cache entries.
pub fn cache_key(scenario: &Scenario, artifact: &str) -> String {
    format!(
        "{}|{:#018x}|{}|{:?}",
        scenario.kind, scenario.seed, artifact, scenario
    )
}

/// Renders one artifact for `scenario`: validate, run the (lazily
/// cached) study, render the block — with a study panic converted to a
/// typed error at this boundary, exactly like `RunContext::try_execute`.
/// Both `dcnr artifact` and the server's miss path call this, which is
/// what makes their bytes identical.
pub fn render_artifact_text(scenario: &Scenario, e: Experiment) -> Result<String, DcnrError> {
    scenario.validate()?;
    let ctx = RunContext::new(*scenario);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        artifacts::render_block(&ctx.artifact(e))
    }))
    .map_err(|payload| DcnrError::Panic {
        context: format!(
            "artifact {} ({} scenario seed {:#x})",
            e.key(),
            scenario.kind,
            scenario.seed
        ),
        message: panic_message(payload.as_ref()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;

    fn small_query() -> &'static str {
        "seed=11&scale=0.25&edges=40&vendors=16"
    }

    #[test]
    fn query_round_trips_through_the_cli_flag_parser() {
        let s = scenario_from_query(Scenario::cli_default(ScenarioKind::Backbone), small_query())
            .unwrap();
        assert_eq!(s.seed, 11);
        assert_eq!(s.scale, 0.25);
        assert_eq!(s.backbone.edges, 40);
        assert_eq!(
            scenario_from_query(
                Scenario::cli_default(ScenarioKind::Backbone),
                &scenario_query(&s)
            )
            .unwrap()
            .seed,
            11,
            "scenario_query must be parseable by scenario_from_query"
        );
    }

    #[test]
    fn query_errors_are_usage_errors_naming_the_parameter() {
        let base = Scenario::cli_default(ScenarioKind::Intra);
        let err = scenario_from_query(base, "seed=banana").unwrap_err();
        assert_eq!(err.kind(), "usage");
        assert!(err.to_string().contains("--seed"), "{err}");
        let err = scenario_from_query(base, "bogus=1").unwrap_err();
        assert_eq!(err.kind(), "usage");
        let err = scenario_from_query(base, "scale=-1").unwrap_err();
        assert_eq!(err.kind(), "config", "validation failures stay config");
    }

    #[test]
    fn cache_key_distinguishes_every_knob() {
        let a = Scenario::cli_default(ScenarioKind::Backbone);
        let b = a.with_seed(a.seed + 1);
        let mut c = a;
        c.backbone.edges += 1;
        assert_ne!(cache_key(&a, "fig15"), cache_key(&b, "fig15"));
        assert_ne!(cache_key(&a, "fig15"), cache_key(&a, "fig16"));
        assert_ne!(cache_key(&a, "fig15"), cache_key(&c, "fig15"));
        assert_eq!(
            cache_key(&a, "fig15"),
            cache_key(&a.with_seed(a.seed), "fig15")
        );
    }

    #[test]
    fn render_artifact_text_matches_the_full_report_block() {
        let scenario =
            scenario_from_query(Scenario::cli_default(ScenarioKind::Backbone), small_query())
                .unwrap();
        let text = render_artifact_text(&scenario, Experiment::Fig15).unwrap();
        let full = RunContext::new(scenario).execute();
        assert!(
            full.rendered.contains(&text),
            "single-artifact rendering must be a byte-exact slice of the scenario report"
        );
    }

    #[test]
    fn render_artifact_text_rejects_invalid_scenarios() {
        let mut s = Scenario::cli_default(ScenarioKind::Backbone);
        s.scale = -1.0;
        assert_eq!(
            render_artifact_text(&s, Experiment::Fig15)
                .unwrap_err()
                .kind(),
            "config"
        );
    }

    #[test]
    fn render_fault_windows_are_exact_at_rate_one() {
        let plan = RenderFaultPlan {
            rate: 1.0,
            skip: 2,
            limit: 3,
            ..RenderFaultPlan::default()
        };
        let fired: Vec<u64> = (0..10).filter(|&i| plan.fires(i)).collect();
        assert_eq!(fired, vec![2, 3, 4]);
        // limit 0 keeps the window open forever.
        let open = RenderFaultPlan {
            rate: 1.0,
            skip: 1,
            limit: 0,
            ..RenderFaultPlan::default()
        };
        assert!(!open.fires(0));
        assert!(open.fires(1) && open.fires(1_000_000));
        // rate 0 never fires, regardless of window.
        assert!(!RenderFaultPlan::default().fires(0));
        // Fractional rates are deterministic per (seed, idx) and
        // roughly proportional over a large window.
        let half = RenderFaultPlan {
            rate: 0.5,
            skip: 0,
            limit: 0,
            seed: 9,
        };
        let hits = (0..1000).filter(|&i| half.fires(i)).count();
        assert_eq!(hits, (0..1000).filter(|&i| half.fires(i)).count());
        assert!((350..=650).contains(&hits), "rate 0.5 fired {hits}/1000");
    }

    #[test]
    fn brownout_threshold_is_three_quarters_with_a_floor() {
        assert_eq!(brownout_threshold(64), 48);
        assert_eq!(brownout_threshold(4), 3);
        assert_eq!(brownout_threshold(1), 2, "tiny queues keep the floor");
    }

    #[test]
    fn engine_ids_parse_and_unknown_ids_name_the_menu() {
        assert_eq!(Engine::parse("threads").unwrap(), Engine::Threads);
        assert_eq!(Engine::parse("events").unwrap(), Engine::Events);
        assert_eq!(Engine::default(), Engine::Threads);
        let err = Engine::parse("fibers").unwrap_err();
        assert_eq!(err.kind(), "usage");
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(
            msg.contains("fibers") && msg.contains(Engine::VALID_IDS),
            "{msg}"
        );
    }

    #[test]
    fn worker_auto_detection_is_engine_aware_and_never_zero() {
        // Explicit counts pass through untouched on both engines.
        assert_eq!(resolve_workers(3, Engine::Threads), 3);
        assert_eq!(resolve_workers(3, Engine::Events), 3);
        // Zero auto-detects: whatever the machine reports, the result
        // is at least one pool thread / reactor worker.
        for engine in [Engine::Threads, Engine::Events] {
            assert!(resolve_workers(0, engine) >= 1, "{engine:?}");
        }
        // Both engines detect the same parallelism; only the noun in
        // the log differs.
        assert_eq!(
            resolve_workers(0, Engine::Threads),
            resolve_workers(0, Engine::Events)
        );
    }

    #[test]
    fn route_labels_stay_bounded() {
        assert_eq!(route_label("/artifacts/fig15"), "/artifacts/{id}");
        assert_eq!(route_label("/sweeps/nightly"), "/sweeps/{dir}");
        assert_eq!(route_label("/healthz"), "/healthz");
        assert_eq!(route_label("/anything/else"), "unmatched");
    }
}
