//! Per-replica supervision for the sweep engine.
//!
//! The paper's measurement apparatus survives seven years of partial
//! data; this module gives the sweep runner the same property. Every
//! replica attempt runs on its **own detached thread** behind a
//! [`std::panic::catch_unwind`] boundary and reports back over an mpsc
//! channel — there is no shared mutable slot a panicking worker could
//! poison. The supervisor:
//!
//! * enforces an optional **wall-clock watchdog deadline** per attempt
//!   (a replica that blows it is abandoned and recorded as
//!   [`DcnrError::Deadline`]; its thread keeps running detached and is
//!   ignored if it ever reports);
//! * **retries** panicked replicas a bounded number of times, each
//!   retry on a fresh seed derived from the replica's planned seed
//!   (`derive_indexed_seed(planned, "sweep.retry", attempt)`), so a
//!   seed-dependent crash gets a genuinely different draw;
//! * **quarantines** (records and skips) replicas whose attempts are
//!   exhausted, letting aggregation proceed over the survivors.
//!
//! Determinism: a replica's result depends only on the seed its
//! successful attempt ran under — never on scheduling, worker count, or
//! failures elsewhere — so survivors are byte-identical with or without
//! failures in other replicas.
//!
//! Fault injection for tests rides the same [`FaultPlan`] type that the
//! `DCNR_FAULT_REPLICA` environment hook parses into; library tests
//! construct plans directly so no process-global state is involved.

use crate::checkpoint::{self, ReplicaRecord};
use crate::error::{panic_message, DcnrError};
use crate::scenario::{RunContext, Scenario};
use dcnr_sim::derive_indexed_seed;
use dcnr_telemetry::metrics::MetricsSnapshot;
use dcnr_telemetry::trace::TraceSnapshot;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Environment variable parsed by [`FaultPlan::from_env`]. Test-only:
/// it exists so integration tests and the CI smoke test can force a
/// replica to panic or hang through the real binary.
pub const FAULT_ENV: &str = "DCNR_FAULT_REPLICA";

/// What an injected fault does to a replica attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The attempt panics before executing its study.
    Panic,
    /// The attempt sleeps forever (until the watchdog abandons it).
    Hang,
}

/// One injected fault: which replica, what happens, and whether it
/// fires on every attempt or only the first (so retries can succeed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Replica index the fault targets.
    pub replica: usize,
    /// What the fault does.
    pub mode: FaultMode,
    /// `true`: only attempt 0 faults (transient); `false`: every
    /// attempt faults (deterministic).
    pub once: bool,
}

/// A set of injected faults (empty in production).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// A plan from explicit specs (what library tests use).
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        Self { specs }
    }

    /// Parses `idx[:panic|hang|panic-once][,...]` — the
    /// [`FAULT_ENV`] syntax. The default mode is `panic`.
    pub fn parse(text: &str) -> Result<Self, DcnrError> {
        let mut specs = Vec::new();
        for entry in text.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let (idx, mode) = match entry.split_once(':') {
                None => (entry, "panic"),
                Some((idx, mode)) => (idx, mode),
            };
            let replica: usize = idx.parse().map_err(|_| {
                DcnrError::Usage(format!(
                    "{FAULT_ENV}: replica index must be a number, got {idx:?}"
                ))
            })?;
            let (mode, once) = match mode {
                "panic" => (FaultMode::Panic, false),
                "panic-once" => (FaultMode::Panic, true),
                "hang" => (FaultMode::Hang, false),
                other => {
                    return Err(DcnrError::Usage(format!(
                        "{FAULT_ENV}: unknown fault mode {other:?} \
                         (panic, panic-once, or hang)"
                    )))
                }
            };
            specs.push(FaultSpec {
                replica,
                mode,
                once,
            });
        }
        Ok(Self { specs })
    }

    /// The plan named by [`FAULT_ENV`], or the empty plan when unset.
    pub fn from_env() -> Result<Self, DcnrError> {
        match std::env::var(FAULT_ENV) {
            Ok(text) if !text.is_empty() => Self::parse(&text),
            _ => Ok(Self::none()),
        }
    }

    /// The fault armed for `(replica, attempt)`, if any.
    fn armed(&self, replica: usize, attempt: u32) -> Option<FaultMode> {
        self.specs
            .iter()
            .find(|s| s.replica == replica && (!s.once || attempt == 0))
            .map(|s| s.mode)
    }
}

/// Supervision policy for one sweep.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Wall-clock deadline per replica attempt (`None`: no watchdog).
    pub deadline: Option<Duration>,
    /// Extra attempts after the first for a panicked replica. Retries
    /// run under a fresh derived seed; deadline kills are never
    /// retried (a hang already cost one full deadline).
    pub retries: u32,
    /// How many failed replicas a run may carry and still exit zero
    /// (checked by [`crate::sweep::SweepOutcome::gate`]).
    pub max_failures: u32,
    /// Checkpoint/cache directory: completed replicas are persisted as
    /// JSON shards and reloaded instead of re-executed.
    pub checkpoint: Option<std::path::PathBuf>,
    /// Injected faults (tests only; empty in production).
    pub faults: FaultPlan,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            deadline: None,
            retries: 1,
            max_failures: 0,
            checkpoint: None,
            faults: FaultPlan::none(),
        }
    }
}

/// How one replica ended up.
#[derive(Debug, Clone)]
pub enum ReplicaStatus {
    /// The replica produced a result.
    Completed {
        /// Its own acceptance verdict.
        passed: bool,
        /// Whether the result was loaded from a checkpoint shard.
        cached: bool,
        /// Which attempt succeeded (0 = first run).
        attempt: u32,
    },
    /// Every allowed attempt panicked (or its worker failed to spawn);
    /// the replica is recorded and skipped.
    Quarantined {
        /// The last attempt's error.
        error: DcnrError,
    },
    /// The watchdog abandoned the replica past its deadline.
    DeadlineKilled {
        /// The deadline error ([`DcnrError::Deadline`]).
        error: DcnrError,
    },
}

/// One replica's supervision record.
#[derive(Debug, Clone)]
pub struct ReplicaOutcome {
    /// Replica index.
    pub replica: usize,
    /// The seed the sweep planned for it (attempt 0's seed).
    pub planned_seed: u64,
    /// How many retries were spent.
    pub retries: u32,
    /// Why a stale/invalid shard was ignored, when one was.
    pub cache_note: Option<String>,
    /// The final status.
    pub status: ReplicaStatus,
}

impl ReplicaOutcome {
    /// Whether the replica contributed no result.
    pub fn failed(&self) -> bool {
        !matches!(self.status, ReplicaStatus::Completed { .. })
    }

    /// Whether the result came from a checkpoint shard.
    pub fn cached(&self) -> bool {
        matches!(self.status, ReplicaStatus::Completed { cached: true, .. })
    }
}

/// The seed attempt `attempt` of a replica runs under: the planned seed
/// for the first attempt, a fresh derived seed for each retry.
pub fn effective_seed(planned: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        planned
    } else {
        derive_indexed_seed(planned, "sweep.retry", u64::from(attempt))
    }
}

/// Per-replica telemetry captured by a successful attempt, when the
/// sweep runs with a collector installed.
pub(crate) type ReplicaTelemetry = (MetricsSnapshot, TraceSnapshot);

struct AttemptReport {
    replica: usize,
    attempt: u32,
    outcome: Result<(ReplicaRecord, Option<ReplicaTelemetry>), String>,
}

#[derive(Clone, Copy)]
struct InFlight {
    attempt: u32,
    seed: u64,
    started: Instant,
}

fn spawn_attempt(
    base: Scenario,
    replica: usize,
    attempt: u32,
    seed: u64,
    fault: Option<FaultMode>,
    collect_telemetry: bool,
    tx: mpsc::Sender<AttemptReport>,
) -> Result<(), DcnrError> {
    std::thread::Builder::new()
        .name(format!("dcnr-replica-{replica}"))
        .spawn(move || {
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                match fault {
                    Some(FaultMode::Hang) => loop {
                        // Hang until the watchdog abandons us (or the
                        // process exits).
                        std::thread::sleep(Duration::from_secs(3600));
                    },
                    Some(FaultMode::Panic) => {
                        panic!("injected fault: forced panic in replica {replica}")
                    }
                    None => {}
                }
                // Each attempt gets its own collector (replica threads
                // never share one), so snapshots merge exactly no
                // matter how attempts interleave across workers.
                let handle = collect_telemetry.then(dcnr_telemetry::Telemetry::new_handle);
                let _guard = handle.clone().map(dcnr_telemetry::installed);
                let out = RunContext::new(base.with_seed(seed)).execute();
                let telemetry = handle.map(|h| h.snapshots());
                let record = ReplicaRecord {
                    replica,
                    attempt,
                    seed,
                    passed: out.passed,
                    comparisons: out.comparisons,
                };
                (record, telemetry)
            }))
            .map_err(|payload| panic_message(payload.as_ref()));
            // The supervisor may have abandoned us (deadline) and hung
            // up; a failed send is fine.
            let _ = tx.send(AttemptReport {
                replica,
                attempt,
                outcome,
            });
        })
        .map(|_| ())
        .map_err(|e| DcnrError::Io {
            path: format!("thread dcnr-replica-{replica}"),
            message: format!("spawn: {e}"),
        })
}

/// Runs every not-yet-cached replica under supervision and returns the
/// per-replica outcomes, the surviving records (one slot per planned
/// replica; `None` where the replica failed), and — when the calling
/// thread has a telemetry collector installed — each successful
/// attempt's telemetry snapshots (cached replicas contribute none; the
/// study was not re-run).
///
/// `cached` carries one `(record, note)` pair per replica: records
/// loaded from checkpoint shards (used as-is) and notes explaining
/// ignored shards (surfaced in the supervision report).
#[allow(clippy::type_complexity)]
pub(crate) fn supervise(
    base: &Scenario,
    replica_seeds: &[u64],
    jobs: usize,
    sup: &SupervisorConfig,
    cached: Vec<(Option<ReplicaRecord>, Option<String>)>,
) -> Result<
    (
        Vec<ReplicaOutcome>,
        Vec<Option<ReplicaRecord>>,
        Vec<Option<ReplicaTelemetry>>,
    ),
    DcnrError,
> {
    let collect_telemetry = dcnr_telemetry::active();
    let n = replica_seeds.len();
    let mut statuses: Vec<Option<ReplicaStatus>> = vec![None; n];
    let mut telemetries: Vec<Option<ReplicaTelemetry>> = vec![None; n];
    let mut records: Vec<Option<ReplicaRecord>> = Vec::with_capacity(n);
    let mut cache_notes: Vec<Option<String>> = Vec::with_capacity(n);
    for (i, (record, note)) in cached.into_iter().enumerate() {
        if let Some(rec) = &record {
            statuses[i] = Some(ReplicaStatus::Completed {
                passed: rec.passed,
                cached: true,
                attempt: rec.attempt,
            });
        }
        records.push(record);
        cache_notes.push(note);
    }
    let mut retries = vec![0u32; n];

    let (tx, rx) = mpsc::channel::<AttemptReport>();
    let mut queue: VecDeque<(usize, u32)> = (0..n)
        .filter(|&i| statuses[i].is_none())
        .map(|i| (i, 0))
        .collect();
    let mut inflight: Vec<Option<InFlight>> = vec![None; n];
    let mut inflight_count = 0usize;

    while statuses.iter().any(Option::is_none) {
        // Keep the pool full.
        while inflight_count < jobs {
            let Some((i, attempt)) = queue.pop_front() else {
                break;
            };
            let seed = effective_seed(replica_seeds[i], attempt);
            let fault = sup.faults.armed(i, attempt);
            match spawn_attempt(
                *base,
                i,
                attempt,
                seed,
                fault,
                collect_telemetry,
                tx.clone(),
            ) {
                Ok(()) => {
                    inflight[i] = Some(InFlight {
                        attempt,
                        seed,
                        started: Instant::now(),
                    });
                    inflight_count += 1;
                }
                Err(error) => {
                    statuses[i] = Some(ReplicaStatus::Quarantined { error });
                }
            }
        }
        if inflight_count == 0 {
            if queue.is_empty() {
                // Nothing running and nothing runnable: every pending
                // replica was resolved synchronously (spawn failures).
                break;
            }
            continue;
        }

        // Wait for the next report, bounded by the earliest deadline.
        let report = match sup.deadline {
            None => rx.recv().ok(),
            Some(deadline) => {
                let next_kill = inflight
                    .iter()
                    .flatten()
                    .map(|f| f.started + deadline)
                    .min()
                    .unwrap_or_else(Instant::now);
                let wait = next_kill.saturating_duration_since(Instant::now());
                rx.recv_timeout(wait).ok()
            }
        };

        match report {
            Some(report) => {
                let i = report.replica;
                // Ignore reports from abandoned attempts: the replica
                // was already deadline-killed and its slot cleared.
                let Some(fl) = inflight[i] else { continue };
                if fl.attempt != report.attempt {
                    continue;
                }
                inflight[i] = None;
                inflight_count -= 1;
                match report.outcome {
                    Ok((record, telemetry)) => {
                        if let Some(dir) = &sup.checkpoint {
                            let write = dcnr_telemetry::span("checkpoint.write");
                            checkpoint::write_shard(dir, &record)?;
                            write.finish();
                        }
                        statuses[i] = Some(ReplicaStatus::Completed {
                            passed: record.passed,
                            cached: false,
                            attempt: record.attempt,
                        });
                        telemetries[i] = telemetry;
                        records[i] = Some(record);
                    }
                    Err(message) => {
                        let error = DcnrError::Panic {
                            context: format!(
                                "replica {i} (seed {:#x}, attempt {})",
                                fl.seed, fl.attempt
                            ),
                            message,
                        };
                        if fl.attempt < sup.retries {
                            retries[i] += 1;
                            queue.push_back((i, fl.attempt + 1));
                        } else {
                            statuses[i] = Some(ReplicaStatus::Quarantined { error });
                        }
                    }
                }
            }
            None => {
                // Watchdog sweep: abandon every attempt past deadline.
                let Some(deadline) = sup.deadline else {
                    continue;
                };
                let now = Instant::now();
                for i in 0..n {
                    let Some(fl) = inflight[i] else { continue };
                    if now.duration_since(fl.started) >= deadline {
                        inflight[i] = None;
                        inflight_count -= 1;
                        statuses[i] = Some(ReplicaStatus::DeadlineKilled {
                            error: DcnrError::Deadline {
                                replica: i,
                                seed: fl.seed,
                                secs: deadline.as_secs_f64(),
                            },
                        });
                    }
                }
            }
        }
    }

    let outcomes: Vec<ReplicaOutcome> = statuses
        .into_iter()
        .enumerate()
        .map(|(i, status)| ReplicaOutcome {
            replica: i,
            planned_seed: replica_seeds[i],
            retries: retries[i],
            cache_note: cache_notes[i].take(),
            status: status.unwrap_or(ReplicaStatus::Quarantined {
                error: DcnrError::Config(
                    "replica was never scheduled (supervisor invariant violated)".into(),
                ),
            }),
        })
        .collect();
    // Supervisor-level counters go to the *calling* thread's collector,
    // recorded from the final outcomes in replica-index order so the
    // totals are independent of worker count and scheduling.
    for o in &outcomes {
        dcnr_telemetry::counter_add("dcnr_sweep_retries_total", &[], u64::from(o.retries));
        match &o.status {
            ReplicaStatus::Completed { cached: true, .. } => {
                dcnr_telemetry::counter_add("dcnr_sweep_cache_hits_total", &[], 1);
            }
            ReplicaStatus::Completed { .. } => {}
            ReplicaStatus::Quarantined { .. } => {
                dcnr_telemetry::counter_add("dcnr_sweep_quarantined_total", &[], 1);
            }
            ReplicaStatus::DeadlineKilled { .. } => {
                dcnr_telemetry::counter_add("dcnr_sweep_deadline_kills_total", &[], 1);
            }
        }
    }
    Ok((outcomes, records, telemetries))
}

/// Renders the supervision report: one line per replica plus a summary.
/// Deliberately free of wall-clock measurements and worker counts, so
/// the report is deterministic for a given fault plan.
pub(crate) fn render_supervision(sup: &SupervisorConfig, outcomes: &[ReplicaOutcome]) -> String {
    let mut out = String::new();
    let deadline = match sup.deadline {
        Some(d) => format!("{}s", d.as_secs_f64()),
        None => "none".into(),
    };
    let _ = writeln!(
        out,
        "supervision: {} replicas, retries {}, deadline {}, max-failures {}, checkpoint {}",
        outcomes.len(),
        sup.retries,
        deadline,
        sup.max_failures,
        match &sup.checkpoint {
            Some(dir) => dir.display().to_string(),
            None => "off".into(),
        }
    );
    let mut completed = 0usize;
    let mut cached = 0usize;
    let mut quarantined = 0usize;
    let mut killed = 0usize;
    for o in outcomes {
        let line = match &o.status {
            ReplicaStatus::Completed {
                passed,
                cached: from_cache,
                attempt,
            } => {
                completed += 1;
                let verdict = if *passed {
                    "passed"
                } else {
                    "failed acceptance"
                };
                if *from_cache {
                    cached += 1;
                    format!("completed from checkpoint shard, {verdict}")
                } else if o.retries > 0 {
                    format!(
                        "completed on attempt {attempt} after {} retr{}, {verdict}",
                        o.retries,
                        if o.retries == 1 { "y" } else { "ies" }
                    )
                } else {
                    format!("completed, {verdict}")
                }
            }
            ReplicaStatus::Quarantined { error } => {
                quarantined += 1;
                format!("quarantined: {error}")
            }
            ReplicaStatus::DeadlineKilled { error } => {
                killed += 1;
                format!("deadline-killed: {error}")
            }
        };
        let _ = writeln!(
            out,
            "  replica {} (seed {:#x}): {line}",
            o.replica, o.planned_seed
        );
        if let Some(note) = &o.cache_note {
            let _ = writeln!(out, "    note: {note}");
        }
    }
    let _ = writeln!(
        out,
        "summary: {completed} completed ({cached} from cache), \
         {quarantined} quarantined, {killed} deadline-killed"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_parses_the_env_syntax() {
        let plan = FaultPlan::parse("1:panic,2:hang,3:panic-once,4").unwrap();
        assert_eq!(plan.armed(1, 0), Some(FaultMode::Panic));
        assert_eq!(plan.armed(1, 1), Some(FaultMode::Panic));
        assert_eq!(plan.armed(2, 0), Some(FaultMode::Hang));
        assert_eq!(plan.armed(3, 0), Some(FaultMode::Panic));
        assert_eq!(plan.armed(3, 1), None, "panic-once clears on retry");
        assert_eq!(plan.armed(4, 0), Some(FaultMode::Panic), "default mode");
        assert_eq!(plan.armed(0, 0), None);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn fault_plan_rejects_malformed_specs() {
        let err = FaultPlan::parse("x:panic").unwrap_err();
        assert_eq!(err.kind(), "usage");
        let err = FaultPlan::parse("1:explode").unwrap_err();
        assert!(err.to_string().contains("explode"), "{err}");
    }

    #[test]
    fn retry_seeds_differ_from_the_planned_seed() {
        let planned = 0x5EED;
        assert_eq!(effective_seed(planned, 0), planned);
        let r1 = effective_seed(planned, 1);
        let r2 = effective_seed(planned, 2);
        assert_ne!(r1, planned);
        assert_ne!(r2, planned);
        assert_ne!(r1, r2);
        // Stable: the same attempt always maps to the same seed.
        assert_eq!(r1, effective_seed(planned, 1));
    }

    #[test]
    fn default_policy_is_one_retry_no_deadline() {
        let sup = SupervisorConfig::default();
        assert_eq!(sup.retries, 1);
        assert_eq!(sup.max_failures, 0);
        assert!(sup.deadline.is_none());
        assert!(sup.faults.is_empty());
        assert!(sup.checkpoint.is_none());
    }
}
