//! The per-experiment index: every table and figure as a named
//! artifact identity with paper-vs-measured comparison rows.
//!
//! [`Experiment`] is pure metadata — the enum, paper order, and titles.
//! How an artifact is *rendered* lives in the [`crate::artifacts`]
//! registry, and what studies it needs is resolved by the scenario
//! engine ([`crate::scenario`]); this module no longer runs anything.

use crate::artifacts;
use crate::scenario::StudyKind;
use std::fmt;

/// One paper artifact (or ablation) to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Experiment {
    /// Table 1 — automated repair characteristics.
    Table1,
    /// Table 2 — root-cause distribution.
    Table2,
    /// Table 4 — edge reliability by continent.
    Table4,
    /// Fig. 2 — root causes by device type.
    Fig2,
    /// Fig. 3 — incident rate per device type per year.
    Fig3,
    /// Fig. 4 — SEV severity distribution by device (2017).
    Fig4,
    /// Fig. 5 — SEV rates over time by severity.
    Fig5,
    /// Fig. 6 — switches vs. employees.
    Fig6,
    /// Fig. 7 — incident fraction by device type per year.
    Fig7,
    /// Fig. 8 — incidents normalized to the 2017 total.
    Fig8,
    /// Fig. 9 — incidents by network design.
    Fig9,
    /// Fig. 10 — incidents per device by network design.
    Fig10,
    /// Fig. 11 — population breakdown by device type.
    Fig11,
    /// Fig. 12 — MTBI per device type.
    Fig12,
    /// Fig. 13 — p75 incident resolution time.
    Fig13,
    /// Fig. 14 — p75IRT vs. fleet size.
    Fig14,
    /// Fig. 15 — edge MTBF percentile curve and model.
    Fig15,
    /// Fig. 16 — edge MTTR percentile curve and model.
    Fig16,
    /// Fig. 17 — vendor MTBF percentile curve and model.
    Fig17,
    /// Fig. 18 — vendor MTTR percentile curve and model.
    Fig18,
    /// `routes.capacity` — ECMP capacity loss by device type.
    RoutesCapacity,
    /// `routes.severity_mix` — emergent SEV mix vs. Table 3's 82/13/5.
    RoutesSeverityMix,
    /// `routes.workload` — workload degradation under k failures.
    RoutesWorkload,
    /// `surv.ranking` — zoo survivability vs failed element fraction.
    SurvRanking,
    /// `surv.lifespan` — Monte-Carlo fleet lifespan curve.
    SurvLifespan,
}

impl Experiment {
    /// All experiments in paper order.
    pub const ALL: [Experiment; 25] = [
        Experiment::Table1,
        Experiment::Table2,
        Experiment::Fig2,
        Experiment::Fig3,
        Experiment::Fig4,
        Experiment::Fig5,
        Experiment::Fig6,
        Experiment::Fig7,
        Experiment::Fig8,
        Experiment::Fig9,
        Experiment::Fig10,
        Experiment::Fig11,
        Experiment::Fig12,
        Experiment::Fig13,
        Experiment::Fig14,
        Experiment::Fig15,
        Experiment::Fig16,
        Experiment::Fig17,
        Experiment::Fig18,
        Experiment::Table4,
        Experiment::RoutesCapacity,
        Experiment::RoutesSeverityMix,
        Experiment::RoutesWorkload,
        Experiment::SurvRanking,
        Experiment::SurvLifespan,
    ];

    /// Whether the experiment needs the intra-DC study (vs. backbone),
    /// as declared by its registry descriptor.
    pub fn is_intra(self) -> bool {
        artifacts::descriptor(self).study == StudyKind::Intra
    }

    /// Short stable key, used to qualify metric names when comparisons
    /// from many artifacts are flattened into one list (the backbone
    /// figures all emit "median (h)", "fit a", ... locally).
    pub fn key(self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Table2 => "table2",
            Experiment::Table4 => "table4",
            Experiment::Fig2 => "fig2",
            Experiment::Fig3 => "fig3",
            Experiment::Fig4 => "fig4",
            Experiment::Fig5 => "fig5",
            Experiment::Fig6 => "fig6",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::Fig11 => "fig11",
            Experiment::Fig12 => "fig12",
            Experiment::Fig13 => "fig13",
            Experiment::Fig14 => "fig14",
            Experiment::Fig15 => "fig15",
            Experiment::Fig16 => "fig16",
            Experiment::Fig17 => "fig17",
            Experiment::Fig18 => "fig18",
            Experiment::RoutesCapacity => "routes.capacity",
            Experiment::RoutesSeverityMix => "routes.severity_mix",
            Experiment::RoutesWorkload => "routes.workload",
            Experiment::SurvRanking => "surv.ranking",
            Experiment::SurvLifespan => "surv.lifespan",
        }
    }

    /// Short title.
    pub fn title(self) -> &'static str {
        match self {
            Experiment::Table1 => "Table 1: automated repair ratio/priority/wait/repair time",
            Experiment::Table2 => "Table 2: root causes of intra-DC incidents",
            Experiment::Table4 => "Table 4: edge reliability by continent",
            Experiment::Fig2 => "Fig. 2: root-cause distribution by device type",
            Experiment::Fig3 => "Fig. 3: incident rate per device type per year",
            Experiment::Fig4 => "Fig. 4: SEV levels by device type (2017)",
            Experiment::Fig5 => "Fig. 5: SEV rate per device over time",
            Experiment::Fig6 => "Fig. 6: switches vs employees",
            Experiment::Fig7 => "Fig. 7: fraction of incidents by device type",
            Experiment::Fig8 => "Fig. 8: incidents normalized to 2017 total",
            Experiment::Fig9 => "Fig. 9: incidents by network design",
            Experiment::Fig10 => "Fig. 10: incidents per device by network design",
            Experiment::Fig11 => "Fig. 11: population breakdown by device type",
            Experiment::Fig12 => "Fig. 12: mean time between incidents",
            Experiment::Fig13 => "Fig. 13: p75 incident resolution time",
            Experiment::Fig14 => "Fig. 14: p75IRT vs fleet size",
            Experiment::Fig15 => "Fig. 15: edge MTBF percentile curve",
            Experiment::Fig16 => "Fig. 16: edge MTTR percentile curve",
            Experiment::Fig17 => "Fig. 17: vendor MTBF percentile curve",
            Experiment::Fig18 => "Fig. 18: vendor MTTR percentile curve",
            Experiment::RoutesCapacity => "routes.capacity: ECMP capacity loss by device type",
            Experiment::RoutesSeverityMix => {
                "routes.severity_mix: emergent SEV mix vs Table 3 (82/13/5)"
            }
            Experiment::RoutesWorkload => {
                "routes.workload: degradation under k failures (cf. arXiv:1808.06115)"
            }
            Experiment::SurvRanking => {
                "surv.ranking: zoo survivability vs failed fraction (cf. arXiv:1510.02735)"
            }
            Experiment::SurvLifespan => {
                "surv.lifespan: Monte-Carlo fleet lifespan (cf. arXiv:1401.7528)"
            }
        }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// What is being compared.
    pub metric: String,
    /// The paper's reported value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

impl Comparison {
    /// Relative deviation `|measured - paper| / |paper|`.
    pub fn relative_error(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured - self.paper).abs() / self.paper.abs()
        }
    }
}

/// The result of running one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Which experiment ran.
    pub experiment: Experiment,
    /// The rendered artifact (the text the bench prints).
    pub rendered: String,
    /// Paper-vs-measured comparisons for EXPERIMENTS.md.
    pub comparisons: Vec<Comparison>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_metadata() {
        assert!(Experiment::Table1.is_intra());
        assert!(!Experiment::Fig15.is_intra());
        assert!(!Experiment::Table4.is_intra());
        assert!(!Experiment::RoutesCapacity.is_intra());
        assert!(!Experiment::SurvRanking.is_intra());
        assert_eq!(Experiment::ALL.len(), 25);
        assert!(Experiment::Fig12.title().contains("time between incidents"));
    }

    #[test]
    fn comparison_relative_error() {
        let c = Comparison {
            metric: "x".into(),
            paper: 2.0,
            measured: 2.2,
        };
        assert!((c.relative_error() - 0.1).abs() < 1e-12);
        let z = Comparison {
            metric: "z".into(),
            paper: 0.0,
            measured: 0.0,
        };
        assert_eq!(z.relative_error(), 0.0);
    }
}
