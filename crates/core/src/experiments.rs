//! The per-experiment index: every table and figure as a named,
//! runnable experiment with paper-vs-measured comparisons.
//!
//! `Experiment::all()` enumerates the paper's artifacts (Tables 1, 2, 4
//! and Figures 2–18) plus the three ablations from DESIGN.md. Each
//! experiment renders its artifact and emits [`Comparison`] rows that
//! EXPERIMENTS.md and the bench harness consume.

use crate::inter::InterDcStudy;
use crate::intra::IntraDcStudy;
use crate::report;
use dcnr_backbone::PaperModels;
use dcnr_faults::{calibration, RootCause};
use dcnr_sev::SevLevel;
use dcnr_topology::{DeviceType, NetworkDesign};
use std::fmt;

/// One paper artifact (or ablation) to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Experiment {
    /// Table 1 — automated repair characteristics.
    Table1,
    /// Table 2 — root-cause distribution.
    Table2,
    /// Table 4 — edge reliability by continent.
    Table4,
    /// Fig. 2 — root causes by device type.
    Fig2,
    /// Fig. 3 — incident rate per device type per year.
    Fig3,
    /// Fig. 4 — SEV severity distribution by device (2017).
    Fig4,
    /// Fig. 5 — SEV rates over time by severity.
    Fig5,
    /// Fig. 6 — switches vs. employees.
    Fig6,
    /// Fig. 7 — incident fraction by device type per year.
    Fig7,
    /// Fig. 8 — incidents normalized to the 2017 total.
    Fig8,
    /// Fig. 9 — incidents by network design.
    Fig9,
    /// Fig. 10 — incidents per device by network design.
    Fig10,
    /// Fig. 11 — population breakdown by device type.
    Fig11,
    /// Fig. 12 — MTBI per device type.
    Fig12,
    /// Fig. 13 — p75 incident resolution time.
    Fig13,
    /// Fig. 14 — p75IRT vs. fleet size.
    Fig14,
    /// Fig. 15 — edge MTBF percentile curve and model.
    Fig15,
    /// Fig. 16 — edge MTTR percentile curve and model.
    Fig16,
    /// Fig. 17 — vendor MTBF percentile curve and model.
    Fig17,
    /// Fig. 18 — vendor MTTR percentile curve and model.
    Fig18,
}

impl Experiment {
    /// All experiments in paper order.
    pub const ALL: [Experiment; 20] = [
        Experiment::Table1,
        Experiment::Table2,
        Experiment::Fig2,
        Experiment::Fig3,
        Experiment::Fig4,
        Experiment::Fig5,
        Experiment::Fig6,
        Experiment::Fig7,
        Experiment::Fig8,
        Experiment::Fig9,
        Experiment::Fig10,
        Experiment::Fig11,
        Experiment::Fig12,
        Experiment::Fig13,
        Experiment::Fig14,
        Experiment::Fig15,
        Experiment::Fig16,
        Experiment::Fig17,
        Experiment::Fig18,
        Experiment::Table4,
    ];

    /// Whether the experiment needs the intra-DC study (vs. backbone).
    pub fn is_intra(self) -> bool {
        !matches!(
            self,
            Experiment::Fig15
                | Experiment::Fig16
                | Experiment::Fig17
                | Experiment::Fig18
                | Experiment::Table4
        )
    }

    /// Short title.
    pub fn title(self) -> &'static str {
        match self {
            Experiment::Table1 => "Table 1: automated repair ratio/priority/wait/repair time",
            Experiment::Table2 => "Table 2: root causes of intra-DC incidents",
            Experiment::Table4 => "Table 4: edge reliability by continent",
            Experiment::Fig2 => "Fig. 2: root-cause distribution by device type",
            Experiment::Fig3 => "Fig. 3: incident rate per device type per year",
            Experiment::Fig4 => "Fig. 4: SEV levels by device type (2017)",
            Experiment::Fig5 => "Fig. 5: SEV rate per device over time",
            Experiment::Fig6 => "Fig. 6: switches vs employees",
            Experiment::Fig7 => "Fig. 7: fraction of incidents by device type",
            Experiment::Fig8 => "Fig. 8: incidents normalized to 2017 total",
            Experiment::Fig9 => "Fig. 9: incidents by network design",
            Experiment::Fig10 => "Fig. 10: incidents per device by network design",
            Experiment::Fig11 => "Fig. 11: population breakdown by device type",
            Experiment::Fig12 => "Fig. 12: mean time between incidents",
            Experiment::Fig13 => "Fig. 13: p75 incident resolution time",
            Experiment::Fig14 => "Fig. 14: p75IRT vs fleet size",
            Experiment::Fig15 => "Fig. 15: edge MTBF percentile curve",
            Experiment::Fig16 => "Fig. 16: edge MTTR percentile curve",
            Experiment::Fig17 => "Fig. 17: vendor MTBF percentile curve",
            Experiment::Fig18 => "Fig. 18: vendor MTTR percentile curve",
        }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// What is being compared.
    pub metric: String,
    /// The paper's reported value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

impl Comparison {
    /// Relative deviation `|measured - paper| / |paper|`.
    pub fn relative_error(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured - self.paper).abs() / self.paper.abs()
        }
    }
}

/// The result of running one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Which experiment ran.
    pub experiment: Experiment,
    /// The rendered artifact (the text the bench prints).
    pub rendered: String,
    /// Paper-vs-measured comparisons for EXPERIMENTS.md.
    pub comparisons: Vec<Comparison>,
}

impl Experiment {
    /// Runs the experiment against pre-computed studies.
    pub fn run(self, intra: &IntraDcStudy, inter: &InterDcStudy) -> ExperimentOutcome {
        match self {
            Experiment::Table1 => table1(intra),
            Experiment::Table2 => table2(intra),
            Experiment::Table4 => table4(inter),
            Experiment::Fig2 => fig2(intra),
            Experiment::Fig3 => fig3(intra),
            Experiment::Fig4 => fig4(intra),
            Experiment::Fig5 => fig5(intra),
            Experiment::Fig6 => fig6(intra),
            Experiment::Fig7 => fig7(intra),
            Experiment::Fig8 => fig8(intra),
            Experiment::Fig9 => fig9(intra),
            Experiment::Fig10 => fig10(intra),
            Experiment::Fig11 => fig11(intra),
            Experiment::Fig12 => fig12(intra),
            Experiment::Fig13 => fig13(intra),
            Experiment::Fig14 => fig14(intra),
            Experiment::Fig15 => backbone_dist(self, inter),
            Experiment::Fig16 => backbone_dist(self, inter),
            Experiment::Fig17 => backbone_dist(self, inter),
            Experiment::Fig18 => backbone_dist(self, inter),
        }
    }
}

fn cmp(metric: impl Into<String>, paper: f64, measured: f64) -> Comparison {
    Comparison {
        metric: metric.into(),
        paper,
        measured,
    }
}

fn table1(s: &IntraDcStudy) -> ExperimentOutcome {
    let report = s.table1_automated_repair();
    let mut comparisons = Vec::new();
    let anchors = [
        (DeviceType::Core, 0.75, 0.0, 240.0, 30.1),
        (DeviceType::Fsw, 0.995, 2.25, 3.0 * 86_400.0, 4.45),
        (DeviceType::Rsw, 0.997, 2.22, 86_400.0, 2.91),
    ];
    for (t, ratio, prio, wait, exec) in anchors {
        if let Some(row) = report.row(t) {
            comparisons.push(cmp(format!("{t} repair ratio"), ratio, row.repair_ratio()));
            comparisons.push(cmp(format!("{t} avg priority"), prio, row.avg_priority));
            comparisons.push(cmp(format!("{t} avg wait (s)"), wait, row.avg_wait_secs));
            comparisons.push(cmp(format!("{t} avg repair (s)"), exec, row.avg_exec_secs));
        }
    }
    ExperimentOutcome {
        experiment: Experiment::Table1,
        rendered: report::render_table1(&report),
        comparisons,
    }
}

fn table2(s: &IntraDcStudy) -> ExperimentOutcome {
    let shares = s.table2_root_causes();
    let comparisons = RootCause::ALL
        .iter()
        .map(|&c| {
            cmp(
                format!("{c} share"),
                c.paper_share() / 0.99, // paper column sums to 0.99
                shares.get(&c).copied().unwrap_or(0.0),
            )
        })
        .collect();
    ExperimentOutcome {
        experiment: Experiment::Table2,
        rendered: report::render_table2(&shares),
        comparisons,
    }
}

fn fig2(s: &IntraDcStudy) -> ExperimentOutcome {
    let data = s.fig2_root_cause_by_device();
    let mut rendered = String::from("Fig. 2: per-root-cause device mix\n");
    let mut comparisons = Vec::new();
    for (cause, mix) in &data {
        rendered.push_str(&format!("{cause:<20}"));
        for t in DeviceType::INTRA_DC {
            rendered.push_str(&format!(
                " {}={:.2}",
                t,
                mix.get(&t).copied().unwrap_or(0.0)
            ));
        }
        rendered.push('\n');
    }
    // §5.1: ESWs record no bug-rooted SEVs.
    let esw_bug = data
        .get(&RootCause::Bug)
        .and_then(|m| m.get(&DeviceType::Esw))
        .copied()
        .unwrap_or(0.0);
    comparisons.push(cmp("ESW share of bug SEVs", 0.0, esw_bug));
    ExperimentOutcome {
        experiment: Experiment::Fig2,
        rendered,
        comparisons,
    }
}

fn fig3(s: &IntraDcStudy) -> ExperimentOutcome {
    let rates = s.fig3_incident_rate();
    let rendered =
        report::render_type_year_table("Fig. 3: incidents per device per year", &rates, 4);
    let comparisons = vec![
        cmp("CSA rate 2013", 1.7, rates[&DeviceType::Csa].get(2013)),
        cmp("CSA rate 2014", 1.5, rates[&DeviceType::Csa].get(2014)),
        cmp(
            "Core rate 2017",
            8760.0 / calibration::MTBI_CORE_2017_HOURS,
            rates[&DeviceType::Core].get(2017),
        ),
        cmp(
            "RSW rate 2017",
            8760.0 / calibration::MTBI_RSW_2017_HOURS,
            rates[&DeviceType::Rsw].get(2017),
        ),
    ];
    ExperimentOutcome {
        experiment: Experiment::Fig3,
        rendered,
        comparisons,
    }
}

fn fig4(s: &IntraDcStudy) -> ExperimentOutcome {
    let data = s.fig4_severity_by_device();
    let mut rendered = String::from("Fig. 4: 2017 SEV levels by device type\n");
    for (level, (share, mix)) in &data {
        rendered.push_str(&format!("{level} (N={:.0}%)", share * 100.0));
        for t in DeviceType::INTRA_DC {
            rendered.push_str(&format!(
                " {}={:.2}",
                t,
                mix.get(&t).copied().unwrap_or(0.0)
            ));
        }
        rendered.push('\n');
    }
    let share = |l: SevLevel| data.get(&l).map(|(s, _)| *s).unwrap_or(0.0);
    let comparisons = vec![
        cmp("SEV3 share 2017", 0.82, share(SevLevel::Sev3)),
        cmp("SEV2 share 2017", 0.13, share(SevLevel::Sev2)),
        cmp("SEV1 share 2017", 0.05, share(SevLevel::Sev1)),
    ];
    ExperimentOutcome {
        experiment: Experiment::Fig4,
        rendered,
        comparisons,
    }
}

fn fig5(s: &IntraDcStudy) -> ExperimentOutcome {
    let data = s.fig5_sev_rates();
    let mut rendered = String::from("Fig. 5: SEVs per device by severity\n");
    for (level, series) in &data {
        rendered.push_str(&format!("{level:<6}"));
        for (y, v) in series.points() {
            rendered.push_str(&format!(" {y}:{v:.2e}"));
        }
        rendered.push('\n');
    }
    // The inflection claim: SEV3 rate peaks mid-study, not in 2017.
    let sev3 = &data[&SevLevel::Sev3];
    let peak = sev3
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::MIN, f64::max);
    let comparisons = vec![cmp(
        "SEV3 2017 rate / peak rate < 1",
        0.5,
        sev3.get(2017) / peak,
    )];
    ExperimentOutcome {
        experiment: Experiment::Fig5,
        rendered,
        comparisons,
    }
}

fn fig6(s: &IntraDcStudy) -> ExperimentOutcome {
    let (pts, r) = s.fig6_switches_vs_employees();
    let rendered = report::render_scatter("Fig. 6: normalized switches vs employees", &pts, r);
    let comparisons = vec![cmp("switches-vs-employees Pearson r", 1.0, r)];
    ExperimentOutcome {
        experiment: Experiment::Fig6,
        rendered,
        comparisons,
    }
}

fn fig7(s: &IntraDcStudy) -> ExperimentOutcome {
    let data = s.fig7_incident_fractions();
    let rendered =
        report::render_type_year_table("Fig. 7: fraction of incidents by device type", &data, 3);
    let comparisons = vec![
        cmp(
            "Core fraction 2017",
            calibration::SHARE_CORE_2017,
            data[&DeviceType::Core].get(2017),
        ),
        cmp(
            "RSW fraction 2017",
            calibration::SHARE_RSW_2017,
            data[&DeviceType::Rsw].get(2017),
        ),
        cmp("FSW fraction 2017", 0.08, data[&DeviceType::Fsw].get(2017)),
        cmp("ESW fraction 2017", 0.03, data[&DeviceType::Esw].get(2017)),
        cmp("SSW fraction 2017", 0.02, data[&DeviceType::Ssw].get(2017)),
    ];
    ExperimentOutcome {
        experiment: Experiment::Fig7,
        rendered,
        comparisons,
    }
}

fn fig8(s: &IntraDcStudy) -> ExperimentOutcome {
    let data = s.fig8_normalized_incidents();
    let rendered = report::render_type_year_table(
        "Fig. 8: incidents normalized to the 2017 SEV total",
        &data,
        3,
    );
    // 9.4× growth of the total.
    let total_2011: f64 = data.values().map(|s| s.get(2011)).sum();
    let total_2017: f64 = data.values().map(|s| s.get(2017)).sum();
    let comparisons = vec![cmp(
        "total SEV growth 2011→2017",
        calibration::SEV_GROWTH_2011_2017,
        if total_2011 > 0.0 {
            total_2017 / total_2011
        } else {
            0.0
        },
    )];
    ExperimentOutcome {
        experiment: Experiment::Fig8,
        rendered,
        comparisons,
    }
}

fn fig9(s: &IntraDcStudy) -> ExperimentOutcome {
    let data = s.fig9_design_incidents();
    let mut rendered = String::from("Fig. 9: incidents by network design (2017 baseline)\n");
    for (d, series) in &data {
        rendered.push_str(&format!("{d:<8}"));
        for (y, v) in series.points() {
            rendered.push_str(&format!(" {y}:{v:.3}"));
        }
        rendered.push('\n');
    }
    let fabric = data[&NetworkDesign::Fabric].get(2017);
    let cluster = data[&NetworkDesign::Cluster].get(2017);
    let comparisons = vec![cmp(
        "fabric/cluster incidents 2017",
        0.5,
        if cluster > 0.0 { fabric / cluster } else { 0.0 },
    )];
    ExperimentOutcome {
        experiment: Experiment::Fig9,
        rendered,
        comparisons,
    }
}

fn fig10(s: &IntraDcStudy) -> ExperimentOutcome {
    let data = s.fig10_design_rate();
    let mut rendered = String::from("Fig. 10: incidents per device by network design\n");
    for (d, series) in &data {
        rendered.push_str(&format!("{d:<8}"));
        for (y, v) in series.points() {
            rendered.push_str(&format!(" {y}:{v:.4}"));
        }
        rendered.push('\n');
    }
    let cluster_2017 = data[&NetworkDesign::Cluster].get(2017);
    let fabric_2017 = data[&NetworkDesign::Fabric].get(2017);
    let comparisons = vec![cmp(
        "cluster/fabric per-device rate 2017",
        3.2,
        if fabric_2017 > 0.0 {
            cluster_2017 / fabric_2017
        } else {
            0.0
        },
    )];
    ExperimentOutcome {
        experiment: Experiment::Fig10,
        rendered,
        comparisons,
    }
}

fn fig11(s: &IntraDcStudy) -> ExperimentOutcome {
    let data = s.fig11_population_fractions();
    let rendered =
        report::render_type_year_table("Fig. 11: population fraction by device type", &data, 4);
    let comparisons = vec![
        cmp(
            "RSW population fraction 2017",
            0.9,
            data[&DeviceType::Rsw].get(2017),
        ),
        cmp(
            "FSW fraction 2014 (pre-fabric)",
            0.0,
            data[&DeviceType::Fsw].get(2014),
        ),
    ];
    ExperimentOutcome {
        experiment: Experiment::Fig11,
        rendered,
        comparisons,
    }
}

fn fig12(s: &IntraDcStudy) -> ExperimentOutcome {
    let data = s.fig12_mtbi();
    let rendered = report::render_sparse_year_table(
        "Fig. 12: MTBI (device-hours)",
        &data,
        s.first_year(),
        s.last_year(),
    );
    let at = |t: DeviceType, y: i32| {
        data.get(&t)
            .and_then(|pts| pts.iter().find(|&&(py, _)| py == y))
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    let (fabric, cluster) = s.design_mtbi(2017);
    let mut comparisons = vec![
        cmp(
            "Core MTBI 2017 (h)",
            calibration::MTBI_CORE_2017_HOURS,
            at(DeviceType::Core, 2017),
        ),
        cmp(
            "RSW MTBI 2017 (h)",
            calibration::MTBI_RSW_2017_HOURS,
            at(DeviceType::Rsw, 2017),
        ),
    ];
    if let (Some(f), Some(c)) = (fabric, cluster) {
        comparisons.push(cmp("fabric/cluster MTBI 2017", 3.2, f / c));
        comparisons.push(cmp(
            "fabric MTBI 2017 (h)",
            calibration::MTBI_FABRIC_2017_HOURS,
            f,
        ));
        comparisons.push(cmp(
            "cluster MTBI 2017 (h)",
            calibration::MTBI_CLUSTER_2017_HOURS,
            c,
        ));
    }
    ExperimentOutcome {
        experiment: Experiment::Fig12,
        rendered,
        comparisons,
    }
}

fn fig13(s: &IntraDcStudy) -> ExperimentOutcome {
    let data = s.fig13_p75irt();
    let rendered = report::render_sparse_year_table(
        "Fig. 13: p75 incident resolution time (h)",
        &data,
        s.first_year(),
        s.last_year(),
    );
    // The paper's qualitative claim: p75IRT increased across types.
    let rsw = data.get(&DeviceType::Rsw).cloned().unwrap_or_default();
    let growth = match (rsw.first(), rsw.last()) {
        (Some(&(_, a)), Some(&(_, b))) if a > 0.0 => b / a,
        _ => 0.0,
    };
    let comparisons = vec![cmp("RSW p75IRT growth 2011→2017 (>1)", 30.0, growth)];
    ExperimentOutcome {
        experiment: Experiment::Fig13,
        rendered,
        comparisons,
    }
}

fn fig14(s: &IntraDcStudy) -> ExperimentOutcome {
    let (pts, r) = s.fig14_irt_vs_fleet();
    let rendered = report::render_scatter("Fig. 14: p75IRT vs normalized fleet size", &pts, r);
    let comparisons = vec![cmp("p75IRT-vs-fleet Pearson r (positive)", 1.0, r)];
    ExperimentOutcome {
        experiment: Experiment::Fig14,
        rendered,
        comparisons,
    }
}

fn backbone_dist(which: Experiment, s: &InterDcStudy) -> ExperimentOutcome {
    let m = s.metrics();
    let (dist, model, stats_fn): (_, _, dcnr_backbone::models::ReportedStats) = match which {
        Experiment::Fig15 => (
            &m.edge_mtbf,
            PaperModels::edge_mtbf(),
            PaperModels::edge_mtbf_stats(),
        ),
        Experiment::Fig16 => (
            &m.edge_mttr,
            PaperModels::edge_mttr(),
            PaperModels::edge_mttr_stats(),
        ),
        Experiment::Fig17 => (
            &m.vendor_mtbf,
            PaperModels::vendor_mtbf(),
            PaperModels::vendor_mtbf_stats(),
        ),
        Experiment::Fig18 => (
            &m.vendor_mttr,
            PaperModels::vendor_mttr(),
            PaperModels::vendor_mttr_stats(),
        ),
        _ => unreachable!("backbone_dist only handles Figs. 15-18"),
    };
    let rendered = report::render_fitted_distribution(which.title(), dist, &model);
    let summary = dist.summary();
    let mut comparisons = vec![
        cmp("median (h)", stats_fn.median, summary.median()),
        cmp("p90 (h)", stats_fn.p90, summary.p90()),
    ];
    if let Some(fit) = &dist.fit {
        comparisons.push(cmp("fit a", model.a, fit.a));
        comparisons.push(cmp("fit b", model.b, fit.b));
        if let Some(r2) = model.paper_r2 {
            comparisons.push(cmp("fit R²", r2, fit.r2));
        }
    }
    ExperimentOutcome {
        experiment: which,
        rendered,
        comparisons,
    }
}

fn table4(s: &InterDcStudy) -> ExperimentOutcome {
    let rows = &s.metrics().continents;
    let rendered = report::render_table4(rows);
    let mut comparisons = Vec::new();
    for row in rows {
        comparisons.push(cmp(
            format!("{} edge share", row.continent),
            row.continent.edge_share(),
            row.distribution,
        ));
        comparisons.push(cmp(
            format!("{} MTBF (h)", row.continent),
            row.continent.mtbf_hours(),
            row.mtbf_hours,
        ));
        comparisons.push(cmp(
            format!("{} MTTR (h)", row.continent),
            row.continent.mttr_hours(),
            row.mttr_hours,
        ));
    }
    ExperimentOutcome {
        experiment: Experiment::Table4,
        rendered,
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intra::StudyConfig;
    use dcnr_backbone::topo::BackboneParams;
    use dcnr_backbone::BackboneSimConfig;

    fn studies() -> (IntraDcStudy, InterDcStudy) {
        let intra = IntraDcStudy::run(StudyConfig {
            scale: 2.0,
            seed: 3,
            ..Default::default()
        });
        let inter = InterDcStudy::run(BackboneSimConfig {
            params: BackboneParams {
                edges: 60,
                vendors: 25,
                min_links_per_edge: 3,
            },
            seed: 3,
            ..Default::default()
        });
        (intra, inter)
    }

    #[test]
    fn all_experiments_run_and_render() {
        let (intra, inter) = studies();
        for e in Experiment::ALL {
            let out = e.run(&intra, &inter);
            assert!(!out.rendered.is_empty(), "{e} rendered nothing");
            assert!(!out.comparisons.is_empty(), "{e} produced no comparisons");
            for c in &out.comparisons {
                assert!(c.measured.is_finite(), "{e}: {} not finite", c.metric);
            }
        }
    }

    #[test]
    fn headline_comparisons_within_tolerance() {
        let (intra, inter) = studies();
        // Table 1 repair ratios: tight.
        let t1 = Experiment::Table1.run(&intra, &inter);
        for c in t1
            .comparisons
            .iter()
            .filter(|c| c.metric.contains("repair ratio"))
        {
            assert!(c.relative_error() < 0.05, "{}: {c:?}", c.metric);
        }
        // Fig. 7 2017 shares: within 6 points absolute.
        let f7 = Experiment::Fig7.run(&intra, &inter);
        for c in &f7.comparisons {
            assert!((c.measured - c.paper).abs() < 0.06, "{}: {c:?}", c.metric);
        }
        // Fig. 15 fit parameters: same regime.
        let f15 = Experiment::Fig15.run(&intra, &inter);
        let b = f15
            .comparisons
            .iter()
            .find(|c| c.metric == "fit b")
            .expect("fit b");
        assert!(b.relative_error() < 0.6, "{b:?}");
    }

    #[test]
    fn experiment_metadata() {
        assert!(Experiment::Table1.is_intra());
        assert!(!Experiment::Fig15.is_intra());
        assert!(!Experiment::Table4.is_intra());
        assert_eq!(Experiment::ALL.len(), 20);
        assert!(Experiment::Fig12.title().contains("time between incidents"));
    }

    #[test]
    fn comparison_relative_error() {
        let c = Comparison {
            metric: "x".into(),
            paper: 2.0,
            measured: 2.2,
        };
        assert!((c.relative_error() - 0.1).abs() < 1e-12);
        let z = Comparison {
            metric: "z".into(),
            paper: 0.0,
            measured: 0.0,
        };
        assert_eq!(z.relative_error(), 0.0);
    }
}
