//! The survivability study behind the `surv.*` artifacts.
//!
//! Two questions the paper's measured tables cannot answer — because
//! Facebook only operates two designs — are what the topology zoo
//! ([`dcnr_topology::zoo`]) exists to ask:
//!
//! * **Which design survives which element class?** Following Couto et
//!   al. (arXiv:1510.02735), we sweep failure *fractions* of each
//!   element class — links, switches, servers — across every zoo
//!   member and measure reachable-server-pair survivability and
//!   surviving ECMP capacity. The headline is the *ranking flip*:
//!   server-centric designs (DCell, BCube) out-survive switch-centric
//!   ones (fat-tree, fabric) under switch failures, and the ranking
//!   inverts under server failures, where a fat-tree's surviving
//!   servers never lose each other.
//! * **How does a fleet age?** Following Farrahi Moghaddam et al.
//!   (arXiv:1401.7528), we draw seeded exponential lifetimes for every
//!   element of the `--topology`-selected member, replay the deaths in
//!   age order against one incrementally-updated
//!   [`ForwardingState`], and read capacity off a fixed age grid —
//!   Monte-Carlo lifespan curves whose cross-seed bands come from the
//!   supervised multi-seed sweep runner.
//!
//! Determinism: every sample stream derives from the scenario seed via
//! `derive_indexed_seed`; no wall-clock anywhere, so artifact bytes are
//! identical across `--jobs 1` vs `--jobs N` and CLI vs HTTP.
//!
//! Allocation discipline: one [`ForwardingState`] and one
//! [`FailureSet`] per topology, reused across every trial and fraction
//! step (failure fractions are *prefix-nested* per trial, so each step
//! is an incremental `apply`, the same scratch-reuse idiom as
//! [`dcnr_topology::BlastScratch`]). The spans
//! `surv.ranking.sweep` and `surv.lifespan.replay` make the reuse
//! visible in `dcnr profile --scenario survivability`.

use dcnr_sim::{derive_indexed_seed, stream_rng};
use dcnr_topology::zoo::{self, TopologyModel};
use dcnr_topology::{DeviceId, DeviceType, FailureSet, ForwardingState, LinkId, Topology};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for one survivability study run.
#[derive(Debug, Clone, Copy)]
pub struct SurvivabilityConfig {
    /// Zoo scale multiplier applied to every member.
    pub scale: f64,
    /// Master seed for every derived sampling stream.
    pub seed: u64,
    /// Zoo member id the lifespan replay runs on.
    pub topology: &'static str,
}

impl Default for SurvivabilityConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            seed: 0x5012_0735,
            topology: "fat-tree",
        }
    }
}

/// The element classes the ranking sweep ablates, in render order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementClass {
    /// Individual links (fiber/cable cuts).
    Link,
    /// Switches — every non-server device.
    Switch,
    /// Servers (only meaningful for zoo members that wire servers as
    /// forwarding nodes; all of them do).
    Server,
}

impl ElementClass {
    /// All classes, in render order.
    pub const ALL: [ElementClass; 3] = [Self::Link, Self::Switch, Self::Server];

    /// The render label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Link => "link",
            Self::Switch => "switch",
            Self::Server => "server",
        }
    }
}

/// Failed fractions the ranking sweep samples, ascending (a prefix of
/// the per-trial shuffle, so steps nest).
pub const FRACTIONS: [f64; 5] = [0.05, 0.1, 0.2, 0.3, 0.5];

/// Seeded trials averaged per (member, class, fraction) cell.
const TRIALS: usize = 8;

/// One cell of the survivability surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurvPoint {
    /// Failed fraction of the element class.
    pub fraction: f64,
    /// Mean reachable-live-server-pair fraction over trials.
    pub pair_survivability: f64,
    /// Mean surviving ECMP capacity fraction over trials.
    pub capacity: f64,
}

/// The survivability curves of one zoo member for one element class.
#[derive(Debug, Clone)]
pub struct MemberCurve {
    /// The zoo member id.
    pub member: &'static str,
    /// The ablated element class.
    pub class: ElementClass,
    /// One point per entry of [`FRACTIONS`].
    pub points: Vec<SurvPoint>,
}

impl MemberCurve {
    /// Pair survivability at the given swept fraction (exact match).
    pub fn at(&self, fraction: f64) -> f64 {
        self.points
            .iter()
            .find(|p| p.fraction == fraction)
            .map(|p| p.pair_survivability)
            .unwrap_or(0.0)
    }
}

/// One point of the Monte-Carlo lifespan curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgePoint {
    /// Fleet age in years.
    pub age_years: f64,
    /// Mean surviving capacity fraction across draws.
    pub mean_capacity: f64,
    /// Lowest capacity across draws (the in-run band floor).
    pub min_capacity: f64,
    /// Highest capacity across draws (the in-run band ceiling).
    pub max_capacity: f64,
}

/// Nominal element MTBFs for the lifespan draws, in years. These are
/// model inputs (cf. arXiv:1401.7528 §III), not measured values.
pub const MTBF_SWITCH_YEARS: f64 = 5.0;
/// Server MTBF (years).
pub const MTBF_SERVER_YEARS: f64 = 3.0;
/// Link MTBF (years).
pub const MTBF_LINK_YEARS: f64 = 8.0;

/// Age grid the lifespan replay samples (years).
pub const AGE_GRID_YEARS: f64 = 10.0;
/// Grid points including age 0.
pub const AGE_STEPS: usize = 21;
/// Independent lifetime draws averaged per run (cross-seed bands come
/// from the sweep runner on top).
const DRAWS: usize = 4;

/// A completed survivability study: everything `surv.*` reads.
pub struct SurvivabilityStudy {
    config: SurvivabilityConfig,
    curves: Vec<MemberCurve>,
    lifespan: Vec<AgePoint>,
    lifespan_devices: usize,
    lifespan_links: usize,
    samples: usize,
}

/// Per-topology scratch reused across every trial and fraction step:
/// the forwarding state, the failure set, and the element orderings.
struct SweepScratch<'t> {
    topo: &'t Topology,
    forwarding: ForwardingState,
    failed: FailureSet,
    servers: Vec<DeviceId>,
    healthy_paths: f64,
}

impl<'t> SweepScratch<'t> {
    fn new(topo: &'t Topology) -> Self {
        let forwarding = ForwardingState::new(topo);
        let servers: Vec<DeviceId> = topo
            .devices_of_type(DeviceType::Server)
            .map(|d| d.id)
            .collect();
        let healthy_paths: f64 = servers
            .iter()
            .map(|&s| forwarding.healthy_core_paths(s) as f64)
            .sum();
        Self {
            failed: FailureSet::new(topo),
            forwarding,
            topo,
            servers,
            healthy_paths,
        }
    }

    /// Reachable-live-server ordered-pair fraction and surviving ECMP
    /// capacity fraction under the currently-applied failure set.
    fn measure(&self) -> (f64, f64) {
        let total = self.servers.len();
        if total < 2 {
            return (0.0, 0.0);
        }
        // Group live servers by component via O(1) `reachable` against
        // a small set of representatives (no per-sample allocation
        // beyond the tiny rep vec).
        let mut reps: Vec<(DeviceId, u64)> = Vec::new();
        for &s in &self.servers {
            if !self.forwarding.is_live(s) {
                continue;
            }
            match reps
                .iter_mut()
                .find(|(r, _)| self.forwarding.reachable(s, *r))
            {
                Some((_, count)) => *count += 1,
                None => reps.push((s, 1)),
            }
        }
        let surviving_pairs: u64 = reps.iter().map(|&(_, c)| c * (c - 1)).sum();
        let total_pairs = (total * (total - 1)) as f64;
        let capacity: f64 = self
            .servers
            .iter()
            .filter(|&&s| self.forwarding.is_live(s))
            .map(|&s| self.forwarding.core_paths(s) as f64)
            .sum();
        (
            surviving_pairs as f64 / total_pairs,
            if self.healthy_paths > 0.0 {
                capacity / self.healthy_paths
            } else {
                0.0
            },
        )
    }
}

/// The elements of one class, in deterministic topology order.
fn class_elements(topo: &Topology, class: ElementClass) -> (Vec<DeviceId>, Vec<LinkId>) {
    match class {
        ElementClass::Link => (Vec::new(), topo.links().iter().map(|l| l.id).collect()),
        ElementClass::Switch => (
            topo.devices()
                .iter()
                .filter(|d| d.device_type != DeviceType::Server)
                .map(|d| d.id)
                .collect(),
            Vec::new(),
        ),
        ElementClass::Server => (
            topo.devices_of_type(DeviceType::Server)
                .map(|d| d.id)
                .collect(),
            Vec::new(),
        ),
    }
}

/// Sweeps one (member, class) curve: per trial, shuffle the class's
/// elements once, then walk the ascending fraction grid failing the
/// shuffle *prefix* — each step an incremental `apply` on the shared
/// forwarding state.
fn sweep_curve(
    scratch: &mut SweepScratch<'_>,
    member: &'static TopologyModel,
    class: ElementClass,
    seed: u64,
    samples: &mut usize,
) -> MemberCurve {
    let (mut devices, mut links) = class_elements(scratch.topo, class);
    let n = devices.len() + links.len();
    let mut acc = vec![(0.0f64, 0.0f64); FRACTIONS.len()];
    for trial in 0..TRIALS {
        let mut rng = stream_rng(
            derive_indexed_seed(seed, member.id, (class as u64) * 100 + trial as u64),
            "surv.ranking.trial",
        );
        devices.shuffle(&mut rng);
        links.shuffle(&mut rng);
        scratch.failed.clear();
        scratch.forwarding.apply(scratch.topo, &scratch.failed);
        let mut cut = 0usize;
        for (fi, &fraction) in FRACTIONS.iter().enumerate() {
            let want = ((n as f64 * fraction).round() as usize).min(n);
            while cut < want {
                if cut < devices.len() {
                    scratch.failed.fail(devices[cut]);
                } else {
                    scratch.failed.fail_link(links[cut - devices.len()]);
                }
                cut += 1;
            }
            scratch.forwarding.apply(scratch.topo, &scratch.failed);
            let (pairs, capacity) = scratch.measure();
            acc[fi].0 += pairs;
            acc[fi].1 += capacity;
            *samples += 1;
        }
    }
    // Leave the scratch healthy for the next class.
    scratch.failed.clear();
    scratch.forwarding.apply(scratch.topo, &scratch.failed);
    MemberCurve {
        member: member.id,
        class,
        points: FRACTIONS
            .iter()
            .zip(&acc)
            .map(|(&fraction, &(p, c))| SurvPoint {
                fraction,
                pair_survivability: p / TRIALS as f64,
                capacity: c / TRIALS as f64,
            })
            .collect(),
    }
}

/// Draws seeded exponential lifetimes for every device and link of
/// `topo`, replays the deaths in age order against one incremental
/// forwarding state, and samples capacity on the fixed age grid.
fn lifespan_replay(topo: &Topology, seed: u64) -> Vec<AgePoint> {
    let mut scratch = SweepScratch::new(topo);
    let mut grid = vec![
        AgePoint {
            age_years: 0.0,
            mean_capacity: 0.0,
            min_capacity: f64::INFINITY,
            max_capacity: f64::NEG_INFINITY,
        };
        AGE_STEPS
    ];
    for (i, g) in grid.iter_mut().enumerate() {
        g.age_years = AGE_GRID_YEARS * i as f64 / (AGE_STEPS - 1) as f64;
    }
    // (death age, device index or link index offset past devices)
    let mut deaths: Vec<(f64, usize)> = Vec::with_capacity(topo.device_count() + topo.link_count());
    for draw in 0..DRAWS {
        let mut rng = stream_rng(
            derive_indexed_seed(seed, "surv.lifespan", draw as u64),
            "surv.lifespan.draw",
        );
        deaths.clear();
        for (i, d) in topo.devices().iter().enumerate() {
            let mtbf = if d.device_type == DeviceType::Server {
                MTBF_SERVER_YEARS
            } else {
                MTBF_SWITCH_YEARS
            };
            deaths.push((exponential(&mut rng, mtbf), i));
        }
        for i in 0..topo.link_count() {
            deaths.push((
                exponential(&mut rng, MTBF_LINK_YEARS),
                topo.device_count() + i,
            ));
        }
        deaths.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scratch.failed.clear();
        scratch.forwarding.apply(topo, &scratch.failed);
        let mut next = 0usize;
        for g in grid.iter_mut() {
            while next < deaths.len() && deaths[next].0 <= g.age_years {
                let idx = deaths[next].1;
                if idx < topo.device_count() {
                    scratch.failed.fail(topo.devices()[idx].id);
                } else {
                    scratch
                        .failed
                        .fail_link(topo.links()[idx - topo.device_count()].id);
                }
                next += 1;
            }
            scratch.forwarding.apply(topo, &scratch.failed);
            let (_, capacity) = scratch.measure();
            g.mean_capacity += capacity;
            g.min_capacity = g.min_capacity.min(capacity);
            g.max_capacity = g.max_capacity.max(capacity);
        }
    }
    for g in grid.iter_mut() {
        g.mean_capacity /= DRAWS as f64;
    }
    grid
}

fn exponential(rng: &mut impl Rng, mtbf_years: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() * mtbf_years
}

impl SurvivabilityStudy {
    /// Runs the full study: the ranking sweep across every zoo member,
    /// then the lifespan replay on the selected member.
    pub fn run(config: SurvivabilityConfig) -> Self {
        let member = zoo::find(config.topology)
            .expect("scenario validation rejects unknown topology ids before the study runs");
        let mut curves = Vec::with_capacity(zoo::ZOO.len() * ElementClass::ALL.len());
        let mut samples = 0usize;
        let sweep_span = dcnr_telemetry::span("surv.ranking.sweep");
        for m in &zoo::ZOO {
            let topo = m.build(config.scale);
            let mut scratch = SweepScratch::new(&topo);
            for class in ElementClass::ALL {
                curves.push(sweep_curve(
                    &mut scratch,
                    m,
                    class,
                    config.seed,
                    &mut samples,
                ));
            }
        }
        sweep_span.finish();

        let replay_span = dcnr_telemetry::span("surv.lifespan.replay");
        let topo = member.build(config.scale);
        let lifespan = lifespan_replay(&topo, config.seed);
        replay_span.finish();

        if dcnr_telemetry::active() {
            dcnr_telemetry::counter_add("dcnr_surv_samples_total", &[], samples as u64);
        }

        Self {
            config,
            curves,
            lifespan,
            lifespan_devices: topo.device_count(),
            lifespan_links: topo.link_count(),
            samples,
        }
    }

    /// The study's configuration.
    pub fn config(&self) -> &SurvivabilityConfig {
        &self.config
    }

    /// Every (member, class) curve, members in zoo order, classes in
    /// [`ElementClass::ALL`] order.
    pub fn curves(&self) -> &[MemberCurve] {
        &self.curves
    }

    /// The curve for one (member, class) cell.
    pub fn curve(&self, member: &str, class: ElementClass) -> Option<&MemberCurve> {
        self.curves
            .iter()
            .find(|c| c.member == member && c.class == class)
    }

    /// The Monte-Carlo lifespan curve of the selected member.
    pub fn lifespan(&self) -> &[AgePoint] {
        &self.lifespan
    }

    /// Devices in the lifespan topology.
    pub fn lifespan_devices(&self) -> usize {
        self.lifespan_devices
    }

    /// Links in the lifespan topology.
    pub fn lifespan_links(&self) -> usize {
        self.lifespan_links
    }

    /// Total (member, class, fraction, trial) samples measured.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Zoo members ranked best-first by pair survivability under
    /// `class` failures at the given swept fraction.
    pub fn ranking(&self, class: ElementClass, fraction: f64) -> Vec<(&'static str, f64)> {
        let mut rows: Vec<(&'static str, f64)> = self
            .curves
            .iter()
            .filter(|c| c.class == class)
            .map(|c| (c.member, c.at(fraction)))
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }

    /// First grid age (years) at which mean capacity drops below
    /// `threshold`, or the grid end if it never does.
    pub fn age_to_capacity(&self, threshold: f64) -> f64 {
        self.lifespan
            .iter()
            .find(|g| g.mean_capacity < threshold)
            .map(|g| g.age_years)
            .unwrap_or(AGE_GRID_YEARS)
    }

    /// Whether the Couto-style ranking flip is present: DCell out-
    /// survives fat-tree under switch loss (at the 30% sweep point),
    /// and the order inverts under server loss — fat-tree's surviving
    /// servers never relay for each other, so somewhere on the server
    /// curve it must beat DCell, whose inter-cell fabric *is* servers.
    pub fn ranking_flip(&self) -> bool {
        let f = FRACTIONS[3]; // 0.3
        let switch_flip = match (
            self.curve("dcell", ElementClass::Switch),
            self.curve("fat-tree", ElementClass::Switch),
        ) {
            (Some(d), Some(ft)) => d.at(f) > ft.at(f),
            _ => false,
        };
        let server_flip = match (
            self.curve("dcell", ElementClass::Server),
            self.curve("fat-tree", ElementClass::Server),
        ) {
            (Some(d), Some(ft)) => FRACTIONS.iter().any(|&f| ft.at(f) > d.at(f)),
            _ => false,
        };
        switch_flip && server_flip
    }
}

/// Renders the `surv.ranking` artifact body.
pub fn render_ranking(s: &SurvivabilityStudy) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "survivability vs failed fraction across the topology zoo \
         ({} samples, {} trials per cell):",
        s.samples(),
        TRIALS
    );
    for class in ElementClass::ALL {
        let _ = writeln!(
            out,
            "{} failures (pair survivability / capacity):",
            class.label()
        );
        let mut header = format!("  {:<10}", "member");
        for f in FRACTIONS {
            header.push_str(&format!("  {:>4.0}%      ", f * 100.0));
        }
        let _ = writeln!(out, "{header}");
        for m in &zoo::ZOO {
            let Some(curve) = s.curve(m.id, class) else {
                continue;
            };
            let mut row = format!("  {:<10}", m.id);
            for p in &curve.points {
                row.push_str(&format!(
                    "  {:.2}/{:.2}  ",
                    p.pair_survivability, p.capacity
                ));
            }
            let _ = writeln!(out, "{row}");
        }
    }
    for class in ElementClass::ALL {
        let ranked = s.ranking(class, FRACTIONS[3]);
        let names: Vec<String> = ranked
            .iter()
            .map(|(id, v)| format!("{id} ({v:.2})"))
            .collect();
        let _ = writeln!(
            out,
            "survivability ranking @30% {} loss: {}",
            class.label(),
            names.join(" > ")
        );
    }
    let _ = writeln!(
        out,
        "ranking flip (dcell vs fat-tree, switch loss vs server loss): {}",
        s.ranking_flip()
    );
    out
}

/// Renders the `surv.lifespan` artifact body.
pub fn render_lifespan(s: &SurvivabilityStudy) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Monte-Carlo fleet lifespan on `{}` ({} devices, {} links, {} draws, \
         MTBF switch {:.0}y / server {:.0}y / link {:.0}y):",
        s.config().topology,
        s.lifespan_devices(),
        s.lifespan_links(),
        DRAWS,
        MTBF_SWITCH_YEARS,
        MTBF_SERVER_YEARS,
        MTBF_LINK_YEARS,
    );
    let _ = writeln!(
        out,
        "  {:>8}  {:>13}  {:>20}",
        "age (yr)", "mean capacity", "lifespan band [lo hi]"
    );
    for g in s.lifespan() {
        let _ = writeln!(
            out,
            "  {:>8.1}  {:>13.4}  [{:.4} {:.4}]",
            g.age_years, g.mean_capacity, g.min_capacity, g.max_capacity
        );
    }
    let _ = writeln!(
        out,
        "time to 90% capacity: {:.1} yr; time to 50% capacity: {:.1} yr",
        s.age_to_capacity(0.9),
        s.age_to_capacity(0.5),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quarter() -> SurvivabilityStudy {
        SurvivabilityStudy::run(SurvivabilityConfig {
            scale: 0.25,
            seed: 11,
            topology: "fat-tree",
        })
    }

    #[test]
    fn every_member_has_every_class_curve() {
        let s = quarter();
        assert_eq!(s.curves().len(), zoo::ZOO.len() * ElementClass::ALL.len());
        for c in s.curves() {
            assert_eq!(c.points.len(), FRACTIONS.len());
            for p in &c.points {
                assert!((0.0..=1.0).contains(&p.pair_survivability), "{c:?}");
                assert!((0.0..=1.0 + 1e-9).contains(&p.capacity), "{c:?}");
            }
        }
    }

    #[test]
    fn survivability_is_monotone_in_failed_fraction() {
        let s = quarter();
        for c in s.curves() {
            for w in c.points.windows(2) {
                assert!(
                    w[1].pair_survivability <= w[0].pair_survivability + 1e-9,
                    "{}/{:?}: {:?} then {:?}",
                    c.member,
                    c.class,
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn ranking_flips_between_switch_and_server_loss() {
        let s = quarter();
        assert!(s.ranking_flip(), "{}", render_ranking(&s));
        // Fat-tree never loses a *surviving* pair to server failures
        // (servers do not relay for each other), so its server curve is
        // exactly the no-relay baseline live·(live−1)/total·(total−1).
        let ft = s.curve("fat-tree", ElementClass::Server).unwrap();
        let total = 16.0f64; // k = 4 at quarter scale: 16 servers
        for p in &ft.points {
            let live = total - (total * p.fraction).round();
            let baseline = live * (live - 1.0) / (total * (total - 1.0));
            assert!(
                (p.pair_survivability - baseline).abs() < 1e-9,
                "fat-tree surviving pairs stay connected: {p:?} vs {baseline}"
            );
        }
    }

    #[test]
    fn lifespan_curve_starts_healthy_and_decays() {
        let s = quarter();
        let grid = s.lifespan();
        assert_eq!(grid.len(), AGE_STEPS);
        assert!((grid[0].mean_capacity - 1.0).abs() < 1e-9, "{:?}", grid[0]);
        for w in grid.windows(2) {
            assert!(w[1].mean_capacity <= w[0].mean_capacity + 1e-9, "{w:?}");
        }
        for g in grid {
            assert!(g.min_capacity <= g.mean_capacity + 1e-9);
            assert!(g.max_capacity + 1e-9 >= g.mean_capacity);
        }
        assert!(s.age_to_capacity(0.9) <= s.age_to_capacity(0.5));
    }

    #[test]
    fn study_is_deterministic_in_its_seed() {
        let a = quarter();
        let b = quarter();
        assert_eq!(render_ranking(&a), render_ranking(&b));
        assert_eq!(render_lifespan(&a), render_lifespan(&b));
        let c = SurvivabilityStudy::run(SurvivabilityConfig {
            seed: 12,
            ..*a.config()
        });
        assert_ne!(
            render_lifespan(&a),
            render_lifespan(&c),
            "different seeds must draw different lifetimes"
        );
    }

    #[test]
    fn renders_carry_the_headline_lines() {
        let s = quarter();
        let ranking = render_ranking(&s);
        assert!(ranking.contains("survivability ranking @30% switch loss"));
        assert!(ranking.contains("ranking flip"));
        let lifespan = render_lifespan(&s);
        assert!(lifespan.contains("lifespan band"));
        assert!(lifespan.contains("time to 90% capacity"));
    }
}
