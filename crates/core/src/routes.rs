//! The forwarding-state routes study behind the `routes.*` artifacts.
//!
//! Where [`crate::intra`] reproduces the paper's *measured* tables, this
//! study exercises the mechanistic layer underneath them: per-device
//! ECMP path sets ([`dcnr_topology::ForwardingState`]) with incremental
//! invalidation, the impact pipeline derived from surviving path
//! fractions ([`dcnr_service::ImpactEngine`]), and the emergent
//! severity model ([`dcnr_service::EmergentSeverityModel`]) whose
//! 82/13/5 split is an *output* checked against Table 3 — never an
//! input sampled from it.
//!
//! Three artifacts read the cached study:
//!
//! * `routes.capacity` — per-device-type capacity-loss distributions
//!   from ECMP fractions, the forwarding-vs-BFS equivalence sample, the
//!   scratch-reuse blast sweep cross-check, and a WAN shortest-path-set
//!   survival sample ([`dcnr_backbone::wan::PathSetSurvival`]).
//! * `routes.severity_mix` — emergent per-type SEV mixes vs. Fig. 4 and
//!   the incident-weighted 2017 aggregate vs. 82/13/5.
//! * `routes.workload` — an arXiv:1808.06115-style workload-degradation
//!   curve: job slowdown as `k` random devices fail.
//!
//! Telemetry: spans `routes.forwarding.build`,
//! `routes.forwarding.invalidate`, `routes.blast.alloc_per_candidate`,
//! `routes.blast.scratch_reuse` (all visible in `dcnr profile
//! --scenario routes`) and counters `dcnr_routes_table_builds_total` /
//! `dcnr_routes_invalidations_total`. Telemetry never perturbs the
//! rendered bytes.

use dcnr_backbone::topo::{BackboneParams, BackboneTopology, FiberLinkId};
use dcnr_backbone::wan::PathSetSurvival;
use dcnr_faults::calibration::{self, OVERALL_SEVERITY_2017, SEVERITY_MIX, TYPE_ORDER};
use dcnr_service::{EmergentSeverityModel, ImpactEngine, ImpactModel, Placement};
use dcnr_sev::SevLevel;
use dcnr_sim::{derive_indexed_seed, derive_seed, stream_rng};
use dcnr_topology::routing::reachable_from;
use dcnr_topology::{
    BlastRadius, BlastScratch, ClusterParams, DeviceId, DeviceType, FabricParams, FailureSet,
    ForwardingState, ForwardingStats, Region, RegionBuilder,
};
use rand::Rng;
use std::collections::HashSet;

/// Configuration for one routes study run.
#[derive(Debug, Clone, Copy)]
pub struct RoutesConfig {
    /// Region scale: multiplies the reference region's racks per
    /// cluster/pod (1.0 = the 640-rack reference region).
    pub scale: f64,
    /// Master seed for every derived sampling stream.
    pub seed: u64,
    /// Backbone parameters for the WAN path-set sample.
    pub backbone: BackboneParams,
}

impl Default for RoutesConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            seed: 0x70_07E5,
            backbone: BackboneParams::default(),
        }
    }
}

/// Capacity-loss summary for single failures of one device type.
#[derive(Debug, Clone, PartialEq)]
pub struct TierCapacity {
    /// The swept device type.
    pub device_type: DeviceType,
    /// Instances assessed (strided when the tier is large).
    pub assessed: usize,
    /// Mean ECMP capacity-loss fraction across assessments.
    pub mean_loss: f64,
    /// Worst capacity-loss fraction seen.
    pub max_loss: f64,
    /// Largest number of racks fully partitioned by one failure.
    pub max_disconnected: usize,
    /// Derived severities `[SEV3, SEV2, SEV1]` under the default model.
    pub sev_counts: [usize; 3],
}

/// Sampled forwarding-vs-BFS equivalence check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivalenceSample {
    /// Ordered reachability pairs checked across failure rounds.
    pub pairs: usize,
    /// Pairs where the forwarding component answer equals the BFS
    /// oracle (must equal `pairs`).
    pub agreements: usize,
    /// Largest `|Σ ecmp_fraction − 1|` over devices with a core route.
    pub max_ecmp_sum_error: f64,
}

/// One point of the workload-degradation curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadPoint {
    /// Concurrent device failures injected.
    pub failures: usize,
    /// Independent seeded trials averaged.
    pub trials: usize,
    /// Mean slowdown (1 / bottleneck surviving path fraction) over
    /// surviving jobs.
    pub mean_slowdown: f64,
    /// Fraction of jobs with a partitioned rack (no surviving path).
    pub failed_job_fraction: f64,
}

/// WAN shortest-path-set survival under a sampled fiber cut.
#[derive(Debug, Clone, PartialEq)]
pub struct WanSample {
    /// Links removed by the sampled cut.
    pub cut_links: usize,
    /// Survival under the sampled cut.
    pub cut: PathSetSurvival,
    /// Survival under the empty cut (sanity anchor: fraction 1.0).
    pub empty: PathSetSurvival,
}

/// Legacy-vs-scratch blast-radius sweep cross-check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlastBench {
    /// Victims swept by both implementations.
    pub candidates: usize,
    /// Whether the scratch-reuse sweep reproduced the allocating
    /// oracle exactly.
    pub identical: bool,
}

/// A completed routes study: everything the `routes.*` artifacts read.
pub struct RoutesStudy {
    config: RoutesConfig,
    devices: usize,
    racks: usize,
    capacity: Vec<TierCapacity>,
    equivalence: EquivalenceSample,
    severity_mixes: [[f64; 3]; 7],
    severity_aggregate: [f64; 3],
    workload: Vec<WorkloadPoint>,
    wan: WanSample,
    blast: BlastBench,
    forwarding: ForwardingStats,
}

/// Builds the study region at `scale`: the reference mixed region with
/// racks per cluster/pod multiplied (tier structure unchanged, so ECMP
/// fan-outs stay comparable across scales).
fn scaled_region(scale: f64) -> Region {
    let f = scale.clamp(0.05, 100.0);
    let cluster = ClusterParams {
        racks_per_cluster: ((64.0 * f).round() as u32).max(4),
        ..ClusterParams::default()
    };
    let fabric = FabricParams {
        racks_per_pod: ((48.0 * f).round() as u32).max(4),
        ..FabricParams::default()
    };
    RegionBuilder::new()
        .cluster_dc(cluster)
        .fabric_dc(fabric)
        .bbrs(2)
        .build()
}

impl RoutesStudy {
    /// Runs the full study pipeline.
    pub fn run(config: RoutesConfig) -> Self {
        let region = scaled_region(config.scale);
        let topo = &region.topology;
        let placement = Placement::default_mix(topo);
        let racks: Vec<DeviceId> = topo
            .devices()
            .iter()
            .filter(|d| d.device_type == DeviceType::Rsw)
            .map(|d| d.id)
            .collect();

        let build = dcnr_telemetry::span("routes.forwarding.build");
        let mut forwarding = ForwardingState::new(topo);
        build.finish();

        let capacity = capacity_sweep(&region, &placement);
        let equivalence = equivalence_sample(&region, config.seed);
        let blast = blast_bench(&region, config.seed);

        let invalidate = dcnr_telemetry::span("routes.forwarding.invalidate");
        let workload = workload_curve(&region, &racks, &mut forwarding, config.seed);
        invalidate.finish();

        let emergent = EmergentSeverityModel::reference();
        let severity_mixes = {
            let mut rows = [[0.0f64; 3]; 7];
            for (i, &t) in TYPE_ORDER.iter().enumerate() {
                rows[i] = emergent.mix(t);
            }
            rows
        };

        let wan = wan_sample(config.backbone, config.seed);

        let stats = forwarding.stats();
        if dcnr_telemetry::active() {
            dcnr_telemetry::counter_add("dcnr_routes_table_builds_total", &[], stats.builds);
            dcnr_telemetry::counter_add(
                "dcnr_routes_invalidations_total",
                &[],
                stats.invalidations,
            );
        }

        Self {
            config,
            devices: topo.device_count(),
            racks: racks.len(),
            capacity,
            equivalence,
            severity_mixes,
            severity_aggregate: emergent.aggregate_2017(),
            workload,
            wan,
            blast,
            forwarding: stats,
        }
    }

    /// The study's configuration.
    pub fn config(&self) -> &RoutesConfig {
        &self.config
    }

    /// Devices in the study region.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Racks in the study region.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Per-type capacity-loss rows, in [`TYPE_ORDER`].
    pub fn capacity(&self) -> &[TierCapacity] {
        &self.capacity
    }

    /// The forwarding-vs-BFS equivalence sample.
    pub fn equivalence(&self) -> EquivalenceSample {
        self.equivalence
    }

    /// Emergent severity rows `[SEV3, SEV2, SEV1]`, in [`TYPE_ORDER`].
    pub fn severity_mixes(&self) -> &[[f64; 3]; 7] {
        &self.severity_mixes
    }

    /// The incident-weighted 2017 aggregate mix.
    pub fn severity_aggregate(&self) -> [f64; 3] {
        self.severity_aggregate
    }

    /// The workload-degradation curve.
    pub fn workload(&self) -> &[WorkloadPoint] {
        &self.workload
    }

    /// The WAN path-set survival sample.
    pub fn wan(&self) -> &WanSample {
        &self.wan
    }

    /// The blast-radius sweep cross-check.
    pub fn blast(&self) -> BlastBench {
        self.blast
    }

    /// Forwarding-table build/invalidation statistics.
    pub fn forwarding_stats(&self) -> ForwardingStats {
        self.forwarding
    }
}

/// Sweeps single failures per device type through the ECMP-derived
/// impact engine, striding large tiers.
fn capacity_sweep(region: &Region, placement: &Placement) -> Vec<TierCapacity> {
    const MAX_PER_TIER: usize = 32;
    let topo = &region.topology;
    let mut engine = ImpactEngine::new(ImpactModel::default(), topo);
    let base = FailureSet::new(topo);
    let mut rows = Vec::with_capacity(TYPE_ORDER.len());
    for &t in &TYPE_ORDER {
        let instances: Vec<DeviceId> = topo
            .devices()
            .iter()
            .filter(|d| d.device_type == t)
            .map(|d| d.id)
            .collect();
        let step = instances.len().div_ceil(MAX_PER_TIER).max(1);
        let mut row = TierCapacity {
            device_type: t,
            assessed: 0,
            mean_loss: 0.0,
            max_loss: 0.0,
            max_disconnected: 0,
            sev_counts: [0; 3],
        };
        for &victim in instances.iter().step_by(step) {
            let a = engine.assess(placement, victim, &base);
            row.assessed += 1;
            row.mean_loss += a.blast.capacity_loss_fraction;
            row.max_loss = row.max_loss.max(a.blast.capacity_loss_fraction);
            row.max_disconnected = row.max_disconnected.max(a.blast.racks_disconnected);
            row.sev_counts[match a.severity {
                SevLevel::Sev3 => 0,
                SevLevel::Sev2 => 1,
                SevLevel::Sev1 => 2,
            }] += 1;
        }
        if row.assessed > 0 {
            row.mean_loss /= row.assessed as f64;
        }
        rows.push(row);
    }
    rows
}

/// Checks forwarding-component reachability against the BFS oracle on
/// seeded failure rounds, and bounds the ECMP fraction-sum error.
fn equivalence_sample(region: &Region, seed: u64) -> EquivalenceSample {
    const ROUNDS: usize = 6;
    const SOURCES: usize = 8;
    const TARGETS: usize = 8;
    let topo = &region.topology;
    let n = topo.device_count();
    let mut fs = ForwardingState::new(topo);
    let mut sample = EquivalenceSample {
        pairs: 0,
        agreements: 0,
        max_ecmp_sum_error: 0.0,
    };
    for round in 0..ROUNDS {
        let mut rng = stream_rng(
            derive_indexed_seed(seed, "routes.equivalence", round as u64),
            "routes.equivalence.round",
        );
        let mut failed = FailureSet::new(topo);
        for _ in 0..rng.gen_range(0..4usize) {
            failed.fail(topo.devices()[rng.gen_range(0..n)].id);
        }
        fs.apply(topo, &failed);
        for _ in 0..SOURCES {
            let src = topo.devices()[rng.gen_range(0..n)].id;
            let seen = reachable_from(topo, src, &failed);
            for _ in 0..TARGETS {
                let dst = topo.devices()[rng.gen_range(0..n)].id;
                sample.pairs += 1;
                if fs.reachable(src, dst) == seen[dst.index()] {
                    sample.agreements += 1;
                }
            }
        }
        for d in topo.devices() {
            if d.device_type != DeviceType::Core && fs.has_core_route(d.id) {
                let sum: f64 = fs.ecmp_fractions(d.id).iter().map(|&(_, f)| f).sum();
                sample.max_ecmp_sum_error = sample.max_ecmp_sum_error.max((sum - 1.0).abs());
            }
        }
    }
    sample
}

/// Runs the allocating blast-radius oracle and the scratch-reuse sweep
/// over the same victims (under separate profile spans) and checks
/// they agree exactly.
fn blast_bench(region: &Region, seed: u64) -> BlastBench {
    const MAX_RSW_VICTIMS: usize = 64;
    let topo = &region.topology;
    let mut victims: Vec<DeviceId> = topo
        .devices()
        .iter()
        .filter(|d| d.device_type != DeviceType::Rsw)
        .map(|d| d.id)
        .collect();
    let rsws: Vec<DeviceId> = topo
        .devices()
        .iter()
        .filter(|d| d.device_type == DeviceType::Rsw)
        .map(|d| d.id)
        .collect();
    let step = rsws.len().div_ceil(MAX_RSW_VICTIMS).max(1);
    victims.extend(rsws.iter().copied().step_by(step));
    let mut base = FailureSet::new(topo);
    // A non-trivial base failure makes the restore path do real work.
    let mut rng = stream_rng(seed, "routes.blast.base");
    base.fail(topo.devices()[rng.gen_range(0..topo.device_count())].id);

    let legacy_span = dcnr_telemetry::span("routes.blast.alloc_per_candidate");
    let legacy: Vec<BlastRadius> = victims
        .iter()
        .map(|&v| BlastRadius::of_failure(topo, v, &base))
        .collect();
    legacy_span.finish();

    let scratch_span = dcnr_telemetry::span("routes.blast.scratch_reuse");
    let mut scratch = BlastScratch::new(topo, &base);
    let reused: Vec<BlastRadius> = victims
        .iter()
        .map(|&v| BlastRadius::of_failure_with(topo, v, &mut scratch))
        .collect();
    scratch_span.finish();

    BlastBench {
        candidates: victims.len(),
        identical: legacy == reused,
    }
}

/// The arXiv:1808.06115-style degradation curve: jobs are contiguous
/// 8-rack groups; a job's slowdown is the reciprocal of its bottleneck
/// rack's surviving core-path fraction, and a partitioned rack fails
/// the job. Failure sets are applied *incrementally* to the shared
/// forwarding state — this is the invalidation path the profile span
/// times.
fn workload_curve(
    region: &Region,
    racks: &[DeviceId],
    forwarding: &mut ForwardingState,
    seed: u64,
) -> Vec<WorkloadPoint> {
    const KS: [usize; 5] = [1, 2, 4, 8, 16];
    const TRIALS: usize = 4;
    const JOB_RACKS: usize = 8;
    let topo = &region.topology;
    let candidates: Vec<DeviceId> = topo
        .devices()
        .iter()
        .filter(|d| d.device_type != DeviceType::Bbr)
        .map(|d| d.id)
        .collect();
    let jobs: Vec<&[DeviceId]> = racks.chunks(JOB_RACKS).collect();
    let mut failed = FailureSet::new(topo);
    let mut curve = Vec::with_capacity(KS.len());
    for (ki, &k) in KS.iter().enumerate() {
        let mut slowdown_sum = 0.0;
        let mut surviving_jobs = 0usize;
        let mut failed_jobs = 0usize;
        for trial in 0..TRIALS {
            let mut rng = stream_rng(
                derive_indexed_seed(seed, "routes.workload", (ki * 100 + trial) as u64),
                "routes.workload.trial",
            );
            failed.clear();
            for _ in 0..k {
                failed.fail(candidates[rng.gen_range(0..candidates.len())]);
            }
            forwarding.apply(topo, &failed);
            for job in &jobs {
                let mut bottleneck = 1.0f64;
                for &rack in *job {
                    bottleneck = bottleneck.min(forwarding.core_path_fraction(rack));
                }
                if bottleneck <= 0.0 {
                    failed_jobs += 1;
                } else {
                    surviving_jobs += 1;
                    slowdown_sum += 1.0 / bottleneck;
                }
            }
        }
        // Leave the state clean so later applies start from healthy.
        failed.clear();
        forwarding.apply(topo, &failed);
        let total_jobs = surviving_jobs + failed_jobs;
        curve.push(WorkloadPoint {
            failures: k,
            trials: TRIALS,
            mean_slowdown: if surviving_jobs > 0 {
                slowdown_sum / surviving_jobs as f64
            } else {
                0.0
            },
            failed_job_fraction: if total_jobs > 0 {
                failed_jobs as f64 / total_jobs as f64
            } else {
                0.0
            },
        });
    }
    curve
}

/// Samples WAN shortest-path-set survival under a seeded fiber cut.
fn wan_sample(params: BackboneParams, seed: u64) -> WanSample {
    let topo = BackboneTopology::build(params, derive_seed(seed, "routes.wan"));
    let mut rng = stream_rng(seed, "routes.wan.cut");
    let mut cut: HashSet<FiberLinkId> = HashSet::new();
    let links = topo.links().len();
    while cut.len() < 2.min(links) {
        cut.insert(FiberLinkId::from_index(rng.gen_range(0..links) as u32));
    }
    WanSample {
        cut_links: cut.len(),
        cut: PathSetSurvival::of_cut(&topo, &cut),
        empty: PathSetSurvival::of_cut(&topo, &HashSet::new()),
    }
}

/// Renders the `routes.capacity` artifact body.
pub fn render_capacity(s: &RoutesStudy) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ECMP capacity loss by device type ({} devices, {} racks):",
        s.devices(),
        s.racks()
    );
    let _ = writeln!(
        out,
        "  {:<5} {:>4}  {:>10}  {:>9}  {:>8}  SEV3/SEV2/SEV1",
        "type", "n", "mean loss", "max loss", "max part"
    );
    for row in s.capacity() {
        let _ = writeln!(
            out,
            "  {:<5} {:>4}  {:>9.4}%  {:>8.3}%  {:>8}  {}/{}/{}",
            row.device_type.to_string(),
            row.assessed,
            row.mean_loss * 100.0,
            row.max_loss * 100.0,
            row.max_disconnected,
            row.sev_counts[0],
            row.sev_counts[1],
            row.sev_counts[2],
        );
    }
    let eq = s.equivalence();
    let _ = writeln!(
        out,
        "forwarding ≡ BFS: {}/{} sampled pairs agree; max |Σ ecmp − 1| = {:.2e}",
        eq.agreements, eq.pairs, eq.max_ecmp_sum_error
    );
    let b = s.blast();
    let _ = writeln!(
        out,
        "blast sweep: scratch reuse matches the allocating oracle on {} candidates: {}",
        b.candidates, b.identical
    );
    let w = s.wan();
    let _ = writeln!(
        out,
        "WAN path sets under a {}-link cut: {} pairs, {} partitioned, {} rerouted, \
         mean surviving fraction {:.3}",
        w.cut_links,
        w.cut.pairs,
        w.cut.partitioned_pairs,
        w.cut.rerouted_pairs,
        w.cut.mean_surviving_fraction
    );
    let _ = writeln!(
        out,
        "forwarding tables: {} builds, {} invalidations, {} scoped recomputes",
        s.forwarding_stats().builds,
        s.forwarding_stats().invalidations,
        s.forwarding_stats().devices_recomputed
    );
    out
}

/// Renders the `routes.severity_mix` artifact body.
pub fn render_severity(s: &RoutesStudy) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "emergent SEV mixes (derived from forwarding-state path losses; \
         no Table 3 sampling on this path):"
    );
    let _ = writeln!(
        out,
        "  {:<5} emergent [S3   S2   S1  ]   paper Fig.4 [S3   S2   S1  ]",
        "type"
    );
    for (i, &t) in TYPE_ORDER.iter().enumerate() {
        let e = s.severity_mixes()[i];
        let p = SEVERITY_MIX[i];
        let _ = writeln!(
            out,
            "  {:<5}          [{:.2} {:.2} {:.2}]               [{:.2} {:.2} {:.2}]",
            t.to_string(),
            e[0],
            e[1],
            e[2],
            p[0],
            p[1],
            p[2],
        );
    }
    let agg = s.severity_aggregate();
    let _ = writeln!(
        out,
        "2017 incident-weighted aggregate: [{:.3} {:.3} {:.3}] vs paper [{:.2} {:.2} {:.2}] \
         (tolerance ±{:.2})",
        agg[0],
        agg[1],
        agg[2],
        OVERALL_SEVERITY_2017[0],
        OVERALL_SEVERITY_2017[1],
        OVERALL_SEVERITY_2017[2],
        EmergentSeverityModel::AGGREGATE_TOLERANCE,
    );
    out
}

/// Renders the `routes.workload` artifact body.
pub fn render_workload(s: &RoutesStudy) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "workload degradation under k concurrent failures (8-rack jobs, \
         slowdown = 1 / bottleneck surviving path fraction):"
    );
    let _ = writeln!(
        out,
        "  {:>3}  {:>7}  {:>13}  {:>11}",
        "k", "trials", "mean slowdown", "failed jobs"
    );
    for p in s.workload() {
        let _ = writeln!(
            out,
            "  {:>3}  {:>7}  {:>13.4}  {:>10.2}%",
            p.failures,
            p.trials,
            p.mean_slowdown,
            p.failed_job_fraction * 100.0
        );
    }
    out
}

/// The 2017 aggregate the emergent model must reproduce — re-exported
/// for the artifact's comparison rows.
pub fn paper_aggregate() -> [f64; 3] {
    OVERALL_SEVERITY_2017
}

/// Convenience accessor used by tests: the paper's per-type row for `t`.
pub fn paper_mix(t: DeviceType) -> [f64; 3] {
    SEVERITY_MIX[calibration::type_index(t).unwrap_or(6)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quarter() -> RoutesStudy {
        RoutesStudy::run(RoutesConfig {
            scale: 0.25,
            seed: 7,
            backbone: BackboneParams {
                edges: 40,
                vendors: 16,
                min_links_per_edge: 3,
            },
        })
    }

    #[test]
    fn forwarding_agrees_with_bfs_everywhere_sampled() {
        let s = quarter();
        let eq = s.equivalence();
        assert_eq!(eq.agreements, eq.pairs);
        assert!(eq.pairs > 0);
        assert!(eq.max_ecmp_sum_error < 1e-9, "{}", eq.max_ecmp_sum_error);
    }

    #[test]
    fn scratch_sweep_matches_oracle() {
        let s = quarter();
        assert!(s.blast().identical);
        assert!(s.blast().candidates > 0);
    }

    #[test]
    fn severity_aggregate_within_documented_tolerance() {
        let s = quarter();
        let agg = s.severity_aggregate();
        for (got, want) in agg.iter().zip(paper_aggregate()) {
            assert!(
                (got - want).abs() < EmergentSeverityModel::AGGREGATE_TOLERANCE,
                "{agg:?}"
            );
        }
    }

    #[test]
    fn workload_curve_is_monotone_and_anchored() {
        let s = quarter();
        let curve = s.workload();
        assert_eq!(curve.len(), 5);
        // Mean slowdown is conditional on *surviving* jobs, so it can
        // dip when a badly-degraded job tips into "failed"; the robust
        // monotone signal is the failed-job fraction.
        for w in curve.windows(2) {
            assert!(
                w[1].failed_job_fraction + 1e-9 >= w[0].failed_job_fraction,
                "{:?} then {:?}",
                w[0],
                w[1]
            );
        }
        for p in curve {
            assert!(p.mean_slowdown + 1e-9 >= 1.0, "{p:?}");
        }
    }

    #[test]
    fn wan_empty_cut_is_lossless() {
        let s = quarter();
        assert_eq!(s.wan().empty.partitioned_pairs, 0);
        assert!((s.wan().empty.mean_surviving_fraction - 1.0).abs() < 1e-9);
        assert!(s.wan().cut.pairs > 0);
    }

    #[test]
    fn study_is_deterministic_in_its_seed() {
        let a = quarter();
        let b = quarter();
        assert_eq!(render_capacity(&a), render_capacity(&b));
        assert_eq!(render_severity(&a), render_severity(&b));
        assert_eq!(render_workload(&a), render_workload(&b));
    }

    #[test]
    fn renders_are_nonempty() {
        let s = quarter();
        assert!(render_capacity(&s).contains("forwarding ≡ BFS"));
        assert!(render_severity(&s).contains("aggregate"));
        assert!(render_workload(&s).contains("mean slowdown"));
    }
}
