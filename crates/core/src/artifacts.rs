//! The artifact registry: one descriptor per paper table/figure.
//!
//! Each [`Artifact`] names its experiment id, the study it pulls from,
//! the paper's baseline values (as prose, for reports and docs), and a
//! render function that reads the **shared** [`RunContext`] — never
//! re-running a pipeline. The registry replaces the old 700-line
//! `Experiment` enum-match: adding an artifact is now adding one row
//! here, and the run-plan layer derives required studies from it.

use crate::experiments::{Comparison, Experiment, ExperimentOutcome};
use crate::report;
use crate::routes;
use crate::scenario::{RunContext, ScenarioKind, StudyKind};
use crate::survivability;
use dcnr_backbone::PaperModels;
use dcnr_faults::{calibration, RootCause};
use dcnr_sev::SevLevel;
use dcnr_topology::{DeviceType, NetworkDesign};
use std::fmt::Write as _;

/// One paper artifact: identity, provenance, baseline, renderer.
pub struct Artifact {
    /// The experiment this artifact reproduces.
    pub id: Experiment,
    /// Which study's cached output it reads.
    pub study: StudyKind,
    /// The paper's reported baseline, as prose.
    pub paper_baseline: &'static str,
    /// Renders the artifact from the shared context.
    pub render: fn(&RunContext) -> ExperimentOutcome,
}

/// Every artifact, in paper order (same order as [`Experiment::ALL`]).
pub fn registry() -> &'static [Artifact; 25] {
    &REGISTRY
}

/// The descriptor for `e`. Every experiment is registered; the
/// registry test enforces the bijection.
pub fn descriptor(e: Experiment) -> &'static Artifact {
    REGISTRY
        .iter()
        .find(|a| a.id == e)
        .expect("every experiment has exactly one registered artifact")
}

/// The scenario kind whose default configuration produces `e` — the
/// base the CLI `dcnr artifact` command and the report server's
/// `/artifacts/{id}` endpoint both start from before applying flags.
pub fn base_kind(e: Experiment) -> ScenarioKind {
    match descriptor(e).study {
        StudyKind::Intra => ScenarioKind::Intra,
        StudyKind::Backbone => ScenarioKind::Backbone,
        StudyKind::Chaos => ScenarioKind::Chaos,
        StudyKind::Routes => ScenarioKind::Routes,
        StudyKind::Survivability => ScenarioKind::Survivability,
    }
}

/// Renders one artifact's report block: separator, title, separator,
/// the artifact body, then its paper-vs-measured comparison rows. This
/// is the exact per-artifact block [`RunContext::execute`] emits, so a
/// single-artifact rendering (CLI `dcnr artifact`, server
/// `/artifacts/{id}`) is byte-identical to the corresponding slice of
/// the full scenario report.
pub fn render_block(out: &ExperimentOutcome) -> String {
    let mut rendered = String::new();
    let _ = writeln!(
        rendered,
        "----------------------------------------------------------"
    );
    let _ = writeln!(rendered, "{}", out.experiment.title());
    let _ = writeln!(
        rendered,
        "----------------------------------------------------------"
    );
    let _ = writeln!(rendered, "{}", out.rendered);
    for c in &out.comparisons {
        let _ = writeln!(
            rendered,
            "  {:<40} paper {:>12.4}  measured {:>12.4}",
            c.metric, c.paper, c.measured
        );
    }
    rendered
}

static REGISTRY: [Artifact; 25] = [
    Artifact {
        id: Experiment::Table1,
        study: StudyKind::Intra,
        paper_baseline: "automated repair ratio Core 75% / FSW 99.5% / RSW 99.7%; \
                         RSW avg wait 1 d, avg repair 2.91 s",
        render: table1,
    },
    Artifact {
        id: Experiment::Table2,
        study: StudyKind::Intra,
        paper_baseline: "maintenance 17%, hardware 13%, misconfiguration 13%, bug 12%, \
                         undetermined 29% of intra-DC SEVs",
        render: table2,
    },
    Artifact {
        id: Experiment::Fig2,
        study: StudyKind::Intra,
        paper_baseline: "ESWs record no bug-rooted SEVs; core devices dominate \
                         maintenance-rooted SEVs",
        render: fig2,
    },
    Artifact {
        id: Experiment::Fig3,
        study: StudyKind::Intra,
        paper_baseline: "CSA rate 1.7 (2013) and 1.5 (2014); Core/RSW 2017 rates \
                         anchored to MTBI calibration",
        render: fig3,
    },
    Artifact {
        id: Experiment::Fig4,
        study: StudyKind::Intra,
        paper_baseline: "2017 SEV shares: SEV3 82%, SEV2 13%, SEV1 5%",
        render: fig4,
    },
    Artifact {
        id: Experiment::Fig5,
        study: StudyKind::Intra,
        paper_baseline: "SEV3 per-device rate peaks mid-study, not in 2017",
        render: fig5,
    },
    Artifact {
        id: Experiment::Fig6,
        study: StudyKind::Intra,
        paper_baseline: "switch count grows linearly with employees (Pearson r ≈ 1)",
        render: fig6,
    },
    Artifact {
        id: Experiment::Fig7,
        study: StudyKind::Intra,
        paper_baseline: "2017 incident shares: Core 66%, RSW 20%, FSW 8%, ESW 3%, SSW 2%",
        render: fig7,
    },
    Artifact {
        id: Experiment::Fig8,
        study: StudyKind::Intra,
        paper_baseline: "total SEVs grew 9.4× from 2011 to 2017",
        render: fig8,
    },
    Artifact {
        id: Experiment::Fig9,
        study: StudyKind::Intra,
        paper_baseline: "fabric incidents ≈ half of cluster incidents in 2017",
        render: fig9,
    },
    Artifact {
        id: Experiment::Fig10,
        study: StudyKind::Intra,
        paper_baseline: "cluster per-device incident rate ≈ 3.2× fabric in 2017",
        render: fig10,
    },
    Artifact {
        id: Experiment::Fig11,
        study: StudyKind::Intra,
        paper_baseline: "RSWs ≈ 90% of the 2017 fleet; no FSWs before the fabric rollout",
        render: fig11,
    },
    Artifact {
        id: Experiment::Fig12,
        study: StudyKind::Intra,
        paper_baseline: "2017 MTBI: Core ≈ 39,495 h, RSW ≈ 9.5 Mh; fabric/cluster ≈ 3.2×",
        render: fig12,
    },
    Artifact {
        id: Experiment::Fig13,
        study: StudyKind::Intra,
        paper_baseline: "p75 incident resolution time grew across device types 2011→2017",
        render: fig13,
    },
    Artifact {
        id: Experiment::Fig14,
        study: StudyKind::Intra,
        paper_baseline: "p75IRT correlates positively with normalized fleet size",
        render: fig14,
    },
    Artifact {
        id: Experiment::Fig15,
        study: StudyKind::Backbone,
        paper_baseline: "edge MTBF(p) = 462.88·e^{2.3408p} h, R² = 0.94",
        render: fig15,
    },
    Artifact {
        id: Experiment::Fig16,
        study: StudyKind::Backbone,
        paper_baseline: "edge MTTR(p) = 1.23·e^{1.0741p} h, R² = 0.87",
        render: fig16,
    },
    Artifact {
        id: Experiment::Fig17,
        study: StudyKind::Backbone,
        paper_baseline: "vendor MTBF(p) = 336.51·e^{3.4371p} h, R² = 0.87",
        render: fig17,
    },
    Artifact {
        id: Experiment::Fig18,
        study: StudyKind::Backbone,
        paper_baseline: "vendor MTTR(p) = 2.32·e^{1.1072p} h, R² = 0.61",
        render: fig18,
    },
    Artifact {
        id: Experiment::Table4,
        study: StudyKind::Backbone,
        paper_baseline: "edge share / MTBF / MTTR per continent; North America carries \
                         the largest edge share",
        render: table4,
    },
    Artifact {
        id: Experiment::RoutesCapacity,
        study: StudyKind::Routes,
        paper_baseline: "forwarding-state reachability exactly equals BFS; ECMP \
                         fractions sum to 1; scratch blast sweep matches the \
                         allocating oracle",
        render: routes_capacity,
    },
    Artifact {
        id: Experiment::RoutesSeverityMix,
        study: StudyKind::Routes,
        paper_baseline: "2017 SEV shares emerge as SEV3 82%, SEV2 13%, SEV1 5% \
                         (±0.05) with no Table 3 sampling on the intra-DC path",
        render: routes_severity_mix,
    },
    Artifact {
        id: Experiment::RoutesWorkload,
        study: StudyKind::Routes,
        paper_baseline: "job slowdown stays >= 1 and the failed-job fraction grows \
                         monotonically with concurrent failures (cf. arXiv:1808.06115 §5)",
        render: routes_workload,
    },
    Artifact {
        id: Experiment::SurvRanking,
        study: StudyKind::Survivability,
        paper_baseline: "server-centric designs out-survive switch-centric ones under \
                         switch failures and the ranking inverts under server failures \
                         (arXiv:1510.02735 §4)",
        render: surv_ranking,
    },
    Artifact {
        id: Experiment::SurvLifespan,
        study: StudyKind::Survivability,
        paper_baseline: "Monte-Carlo element lifetimes yield smoothly decaying fleet \
                         capacity with seed-to-seed bands (arXiv:1401.7528 §III)",
        render: surv_lifespan,
    },
];

fn cmp(metric: impl Into<String>, paper: f64, measured: f64) -> Comparison {
    Comparison {
        metric: metric.into(),
        paper,
        measured,
    }
}

fn table1(ctx: &RunContext) -> ExperimentOutcome {
    let s = ctx.intra();
    let report = s.table1_automated_repair();
    let mut comparisons = Vec::new();
    let anchors = [
        (DeviceType::Core, 0.75, 0.0, 240.0, 30.1),
        (DeviceType::Fsw, 0.995, 2.25, 3.0 * 86_400.0, 4.45),
        (DeviceType::Rsw, 0.997, 2.22, 86_400.0, 2.91),
    ];
    for (t, ratio, prio, wait, exec) in anchors {
        if let Some(row) = report.row(t) {
            comparisons.push(cmp(format!("{t} repair ratio"), ratio, row.repair_ratio()));
            comparisons.push(cmp(format!("{t} avg priority"), prio, row.avg_priority));
            comparisons.push(cmp(format!("{t} avg wait (s)"), wait, row.avg_wait_secs));
            comparisons.push(cmp(format!("{t} avg repair (s)"), exec, row.avg_exec_secs));
        }
    }
    ExperimentOutcome {
        experiment: Experiment::Table1,
        rendered: report::render_table1(&report),
        comparisons,
    }
}

fn table2(ctx: &RunContext) -> ExperimentOutcome {
    let shares = ctx.intra().table2_root_causes();
    let comparisons = RootCause::ALL
        .iter()
        .map(|&c| {
            cmp(
                format!("{c} share"),
                c.paper_share() / 0.99, // paper column sums to 0.99
                shares.get(&c).copied().unwrap_or(0.0),
            )
        })
        .collect();
    ExperimentOutcome {
        experiment: Experiment::Table2,
        rendered: report::render_table2(&shares),
        comparisons,
    }
}

fn fig2(ctx: &RunContext) -> ExperimentOutcome {
    let data = ctx.intra().fig2_root_cause_by_device();
    let mut rendered = String::from("Fig. 2: per-root-cause device mix\n");
    let mut comparisons = Vec::new();
    for (cause, mix) in &data {
        rendered.push_str(&format!("{cause:<20}"));
        for t in DeviceType::INTRA_DC {
            rendered.push_str(&format!(
                " {}={:.2}",
                t,
                mix.get(&t).copied().unwrap_or(0.0)
            ));
        }
        rendered.push('\n');
    }
    // §5.1: ESWs record no bug-rooted SEVs.
    let esw_bug = data
        .get(&RootCause::Bug)
        .and_then(|m| m.get(&DeviceType::Esw))
        .copied()
        .unwrap_or(0.0);
    comparisons.push(cmp("ESW share of bug SEVs", 0.0, esw_bug));
    ExperimentOutcome {
        experiment: Experiment::Fig2,
        rendered,
        comparisons,
    }
}

fn fig3(ctx: &RunContext) -> ExperimentOutcome {
    let rates = ctx.intra().fig3_incident_rate();
    let rendered =
        report::render_type_year_table("Fig. 3: incidents per device per year", &rates, 4);
    let comparisons = vec![
        cmp("CSA rate 2013", 1.7, rates[&DeviceType::Csa].get(2013)),
        cmp("CSA rate 2014", 1.5, rates[&DeviceType::Csa].get(2014)),
        cmp(
            "Core rate 2017",
            8760.0 / calibration::MTBI_CORE_2017_HOURS,
            rates[&DeviceType::Core].get(2017),
        ),
        cmp(
            "RSW rate 2017",
            8760.0 / calibration::MTBI_RSW_2017_HOURS,
            rates[&DeviceType::Rsw].get(2017),
        ),
    ];
    ExperimentOutcome {
        experiment: Experiment::Fig3,
        rendered,
        comparisons,
    }
}

fn fig4(ctx: &RunContext) -> ExperimentOutcome {
    let data = ctx.intra().fig4_severity_by_device();
    let mut rendered = String::from("Fig. 4: 2017 SEV levels by device type\n");
    for (level, (share, mix)) in &data {
        rendered.push_str(&format!("{level} (N={:.0}%)", share * 100.0));
        for t in DeviceType::INTRA_DC {
            rendered.push_str(&format!(
                " {}={:.2}",
                t,
                mix.get(&t).copied().unwrap_or(0.0)
            ));
        }
        rendered.push('\n');
    }
    let share = |l: SevLevel| data.get(&l).map(|(s, _)| *s).unwrap_or(0.0);
    let comparisons = vec![
        cmp("SEV3 share 2017", 0.82, share(SevLevel::Sev3)),
        cmp("SEV2 share 2017", 0.13, share(SevLevel::Sev2)),
        cmp("SEV1 share 2017", 0.05, share(SevLevel::Sev1)),
    ];
    ExperimentOutcome {
        experiment: Experiment::Fig4,
        rendered,
        comparisons,
    }
}

fn fig5(ctx: &RunContext) -> ExperimentOutcome {
    let data = ctx.intra().fig5_sev_rates();
    let mut rendered = String::from("Fig. 5: SEVs per device by severity\n");
    for (level, series) in &data {
        rendered.push_str(&format!("{level:<6}"));
        for (y, v) in series.points() {
            rendered.push_str(&format!(" {y}:{v:.2e}"));
        }
        rendered.push('\n');
    }
    // The inflection claim: SEV3 rate peaks mid-study, not in 2017.
    let sev3 = &data[&SevLevel::Sev3];
    let peak = sev3
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::MIN, f64::max);
    let comparisons = vec![cmp(
        "SEV3 2017 rate / peak rate < 1",
        0.5,
        sev3.get(2017) / peak,
    )];
    ExperimentOutcome {
        experiment: Experiment::Fig5,
        rendered,
        comparisons,
    }
}

fn fig6(ctx: &RunContext) -> ExperimentOutcome {
    let (pts, r) = ctx.intra().fig6_switches_vs_employees();
    let rendered = report::render_scatter("Fig. 6: normalized switches vs employees", &pts, r);
    let comparisons = vec![cmp("switches-vs-employees Pearson r", 1.0, r)];
    ExperimentOutcome {
        experiment: Experiment::Fig6,
        rendered,
        comparisons,
    }
}

fn fig7(ctx: &RunContext) -> ExperimentOutcome {
    let data = ctx.intra().fig7_incident_fractions();
    let rendered =
        report::render_type_year_table("Fig. 7: fraction of incidents by device type", &data, 3);
    let comparisons = vec![
        cmp(
            "Core fraction 2017",
            calibration::SHARE_CORE_2017,
            data[&DeviceType::Core].get(2017),
        ),
        cmp(
            "RSW fraction 2017",
            calibration::SHARE_RSW_2017,
            data[&DeviceType::Rsw].get(2017),
        ),
        cmp("FSW fraction 2017", 0.08, data[&DeviceType::Fsw].get(2017)),
        cmp("ESW fraction 2017", 0.03, data[&DeviceType::Esw].get(2017)),
        cmp("SSW fraction 2017", 0.02, data[&DeviceType::Ssw].get(2017)),
    ];
    ExperimentOutcome {
        experiment: Experiment::Fig7,
        rendered,
        comparisons,
    }
}

fn fig8(ctx: &RunContext) -> ExperimentOutcome {
    let data = ctx.intra().fig8_normalized_incidents();
    let rendered = report::render_type_year_table(
        "Fig. 8: incidents normalized to the 2017 SEV total",
        &data,
        3,
    );
    // 9.4× growth of the total.
    let total_2011: f64 = data.values().map(|s| s.get(2011)).sum();
    let total_2017: f64 = data.values().map(|s| s.get(2017)).sum();
    let comparisons = vec![cmp(
        "total SEV growth 2011→2017",
        calibration::SEV_GROWTH_2011_2017,
        if total_2011 > 0.0 {
            total_2017 / total_2011
        } else {
            0.0
        },
    )];
    ExperimentOutcome {
        experiment: Experiment::Fig8,
        rendered,
        comparisons,
    }
}

fn fig9(ctx: &RunContext) -> ExperimentOutcome {
    let data = ctx.intra().fig9_design_incidents();
    let mut rendered = String::from("Fig. 9: incidents by network design (2017 baseline)\n");
    for (d, series) in &data {
        rendered.push_str(&format!("{d:<8}"));
        for (y, v) in series.points() {
            rendered.push_str(&format!(" {y}:{v:.3}"));
        }
        rendered.push('\n');
    }
    let fabric = data[&NetworkDesign::Fabric].get(2017);
    let cluster = data[&NetworkDesign::Cluster].get(2017);
    let comparisons = vec![cmp(
        "fabric/cluster incidents 2017",
        0.5,
        if cluster > 0.0 { fabric / cluster } else { 0.0 },
    )];
    ExperimentOutcome {
        experiment: Experiment::Fig9,
        rendered,
        comparisons,
    }
}

fn fig10(ctx: &RunContext) -> ExperimentOutcome {
    let data = ctx.intra().fig10_design_rate();
    let mut rendered = String::from("Fig. 10: incidents per device by network design\n");
    for (d, series) in &data {
        rendered.push_str(&format!("{d:<8}"));
        for (y, v) in series.points() {
            rendered.push_str(&format!(" {y}:{v:.4}"));
        }
        rendered.push('\n');
    }
    let cluster_2017 = data[&NetworkDesign::Cluster].get(2017);
    let fabric_2017 = data[&NetworkDesign::Fabric].get(2017);
    let comparisons = vec![cmp(
        "cluster/fabric per-device rate 2017",
        3.2,
        if fabric_2017 > 0.0 {
            cluster_2017 / fabric_2017
        } else {
            0.0
        },
    )];
    ExperimentOutcome {
        experiment: Experiment::Fig10,
        rendered,
        comparisons,
    }
}

fn fig11(ctx: &RunContext) -> ExperimentOutcome {
    let data = ctx.intra().fig11_population_fractions();
    let rendered =
        report::render_type_year_table("Fig. 11: population fraction by device type", &data, 4);
    let comparisons = vec![
        cmp(
            "RSW population fraction 2017",
            0.9,
            data[&DeviceType::Rsw].get(2017),
        ),
        cmp(
            "FSW fraction 2014 (pre-fabric)",
            0.0,
            data[&DeviceType::Fsw].get(2014),
        ),
    ];
    ExperimentOutcome {
        experiment: Experiment::Fig11,
        rendered,
        comparisons,
    }
}

fn fig12(ctx: &RunContext) -> ExperimentOutcome {
    let s = ctx.intra();
    let data = s.fig12_mtbi();
    let rendered = report::render_sparse_year_table(
        "Fig. 12: MTBI (device-hours)",
        &data,
        s.first_year(),
        s.last_year(),
    );
    let at = |t: DeviceType, y: i32| {
        data.get(&t)
            .and_then(|pts| pts.iter().find(|&&(py, _)| py == y))
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    let (fabric, cluster) = s.design_mtbi(2017);
    let mut comparisons = vec![
        cmp(
            "Core MTBI 2017 (h)",
            calibration::MTBI_CORE_2017_HOURS,
            at(DeviceType::Core, 2017),
        ),
        cmp(
            "RSW MTBI 2017 (h)",
            calibration::MTBI_RSW_2017_HOURS,
            at(DeviceType::Rsw, 2017),
        ),
    ];
    if let (Some(f), Some(c)) = (fabric, cluster) {
        comparisons.push(cmp("fabric/cluster MTBI 2017", 3.2, f / c));
        comparisons.push(cmp(
            "fabric MTBI 2017 (h)",
            calibration::MTBI_FABRIC_2017_HOURS,
            f,
        ));
        comparisons.push(cmp(
            "cluster MTBI 2017 (h)",
            calibration::MTBI_CLUSTER_2017_HOURS,
            c,
        ));
    }
    ExperimentOutcome {
        experiment: Experiment::Fig12,
        rendered,
        comparisons,
    }
}

fn fig13(ctx: &RunContext) -> ExperimentOutcome {
    let s = ctx.intra();
    let data = s.fig13_p75irt();
    let rendered = report::render_sparse_year_table(
        "Fig. 13: p75 incident resolution time (h)",
        &data,
        s.first_year(),
        s.last_year(),
    );
    // The paper's qualitative claim: p75IRT increased across types.
    let rsw = data.get(&DeviceType::Rsw).cloned().unwrap_or_default();
    let growth = match (rsw.first(), rsw.last()) {
        (Some(&(_, a)), Some(&(_, b))) if a > 0.0 => b / a,
        _ => 0.0,
    };
    let comparisons = vec![cmp("RSW p75IRT growth 2011→2017 (>1)", 30.0, growth)];
    ExperimentOutcome {
        experiment: Experiment::Fig13,
        rendered,
        comparisons,
    }
}

fn fig14(ctx: &RunContext) -> ExperimentOutcome {
    let (pts, r) = ctx.intra().fig14_irt_vs_fleet();
    let rendered = report::render_scatter("Fig. 14: p75IRT vs normalized fleet size", &pts, r);
    let comparisons = vec![cmp("p75IRT-vs-fleet Pearson r (positive)", 1.0, r)];
    ExperimentOutcome {
        experiment: Experiment::Fig14,
        rendered,
        comparisons,
    }
}

fn fig15(ctx: &RunContext) -> ExperimentOutcome {
    backbone_dist(Experiment::Fig15, ctx)
}

fn fig16(ctx: &RunContext) -> ExperimentOutcome {
    backbone_dist(Experiment::Fig16, ctx)
}

fn fig17(ctx: &RunContext) -> ExperimentOutcome {
    backbone_dist(Experiment::Fig17, ctx)
}

fn fig18(ctx: &RunContext) -> ExperimentOutcome {
    backbone_dist(Experiment::Fig18, ctx)
}

fn backbone_dist(which: Experiment, ctx: &RunContext) -> ExperimentOutcome {
    let m = ctx.inter().metrics();
    let (dist, model, stats_fn): (_, _, dcnr_backbone::models::ReportedStats) = match which {
        Experiment::Fig15 => (
            &m.edge_mtbf,
            PaperModels::edge_mtbf(),
            PaperModels::edge_mtbf_stats(),
        ),
        Experiment::Fig16 => (
            &m.edge_mttr,
            PaperModels::edge_mttr(),
            PaperModels::edge_mttr_stats(),
        ),
        Experiment::Fig17 => (
            &m.vendor_mtbf,
            PaperModels::vendor_mtbf(),
            PaperModels::vendor_mtbf_stats(),
        ),
        Experiment::Fig18 => (
            &m.vendor_mttr,
            PaperModels::vendor_mttr(),
            PaperModels::vendor_mttr_stats(),
        ),
        _ => unreachable!("backbone_dist only handles Figs. 15-18"),
    };
    let rendered = report::render_fitted_distribution(which.title(), dist, &model);
    let summary = dist.summary();
    let mut comparisons = vec![
        cmp("median (h)", stats_fn.median, summary.median()),
        cmp("p90 (h)", stats_fn.p90, summary.p90()),
    ];
    if let Some(fit) = &dist.fit {
        comparisons.push(cmp("fit a", model.a, fit.a));
        comparisons.push(cmp("fit b", model.b, fit.b));
        if let Some(r2) = model.paper_r2 {
            comparisons.push(cmp("fit R²", r2, fit.r2));
        }
    }
    ExperimentOutcome {
        experiment: which,
        rendered,
        comparisons,
    }
}

fn table4(ctx: &RunContext) -> ExperimentOutcome {
    let rows = &ctx.inter().metrics().continents;
    let rendered = report::render_table4(rows);
    let mut comparisons = Vec::new();
    for row in rows {
        comparisons.push(cmp(
            format!("{} edge share", row.continent),
            row.continent.edge_share(),
            row.distribution,
        ));
        comparisons.push(cmp(
            format!("{} MTBF (h)", row.continent),
            row.continent.mtbf_hours(),
            row.mtbf_hours,
        ));
        comparisons.push(cmp(
            format!("{} MTTR (h)", row.continent),
            row.continent.mttr_hours(),
            row.mttr_hours,
        ));
    }
    ExperimentOutcome {
        experiment: Experiment::Table4,
        rendered,
        comparisons,
    }
}

fn routes_capacity(ctx: &RunContext) -> ExperimentOutcome {
    let s = ctx.routes();
    let eq = s.equivalence();
    let comparisons = vec![
        cmp(
            "forwarding ≡ BFS agreement",
            1.0,
            eq.agreements as f64 / eq.pairs.max(1) as f64,
        ),
        cmp("max |Σ ecmp − 1|", 0.0, eq.max_ecmp_sum_error),
        cmp(
            "scratch sweep identical",
            1.0,
            if s.blast().identical { 1.0 } else { 0.0 },
        ),
        cmp(
            "WAN empty-cut survival",
            1.0,
            s.wan().empty.mean_surviving_fraction,
        ),
    ];
    ExperimentOutcome {
        experiment: Experiment::RoutesCapacity,
        rendered: routes::render_capacity(s),
        comparisons,
    }
}

fn routes_severity_mix(ctx: &RunContext) -> ExperimentOutcome {
    let s = ctx.routes();
    let agg = s.severity_aggregate();
    let paper = routes::paper_aggregate();
    let comparisons = vec![
        cmp("SEV3 share 2017 (emergent)", paper[0], agg[0]),
        cmp("SEV2 share 2017 (emergent)", paper[1], agg[1]),
        cmp("SEV1 share 2017 (emergent)", paper[2], agg[2]),
    ];
    ExperimentOutcome {
        experiment: Experiment::RoutesSeverityMix,
        rendered: routes::render_severity(s),
        comparisons,
    }
}

fn routes_workload(ctx: &RunContext) -> ExperimentOutcome {
    let s = ctx.routes();
    let curve = s.workload();
    // "paper" anchors are the ideal no-degradation baselines: slowdown 1
    // and zero failed jobs at k=1, and a monotone curve overall. Mean
    // slowdown is conditional on surviving jobs (it can dip when a
    // degraded job tips into "failed"), so monotonicity is judged on
    // the failed-job fraction.
    let k1 = curve.first();
    let monotone = curve
        .windows(2)
        .all(|w| w[1].failed_job_fraction + 1e-9 >= w[0].failed_job_fraction);
    let comparisons = vec![
        cmp(
            "mean slowdown k=1",
            1.0,
            k1.map(|p| p.mean_slowdown).unwrap_or(0.0),
        ),
        cmp(
            "failed-job fraction k=1",
            0.0,
            k1.map(|p| p.failed_job_fraction).unwrap_or(1.0),
        ),
        cmp(
            "degradation monotone in k",
            1.0,
            if monotone { 1.0 } else { 0.0 },
        ),
    ];
    ExperimentOutcome {
        experiment: Experiment::RoutesWorkload,
        rendered: routes::render_workload(s),
        comparisons,
    }
}

fn surv_ranking(ctx: &RunContext) -> ExperimentOutcome {
    use crate::survivability::{ElementClass, FRACTIONS};
    let s = ctx.survivability();
    let at30 = |member: &str, class: ElementClass| {
        s.curve(member, class)
            .map(|c| c.at(FRACTIONS[3]))
            .unwrap_or(0.0)
    };
    let comparisons = vec![
        cmp(
            "ranking flip (switch vs server loss)",
            1.0,
            if s.ranking_flip() { 1.0 } else { 0.0 },
        ),
        cmp(
            "dcell pair surv @30% switch loss",
            1.0,
            at30("dcell", ElementClass::Switch),
        ),
        cmp(
            "fat-tree pair surv @30% switch loss",
            0.5,
            at30("fat-tree", ElementClass::Switch),
        ),
        // In an ideally load-balanced Clos, capacity loss ≈ failed
        // fraction, so 30% link loss leaves ≈ 70% capacity.
        cmp(
            "fat-tree capacity @30% link loss",
            0.7,
            s.curve("fat-tree", ElementClass::Link)
                .and_then(|c| c.points.iter().find(|p| p.fraction == FRACTIONS[3]))
                .map(|p| p.capacity)
                .unwrap_or(0.0),
        ),
    ];
    ExperimentOutcome {
        experiment: Experiment::SurvRanking,
        rendered: survivability::render_ranking(s),
        comparisons,
    }
}

fn surv_lifespan(ctx: &RunContext) -> ExperimentOutcome {
    let s = ctx.survivability();
    let grid = s.lifespan();
    let monotone = grid
        .windows(2)
        .all(|w| w[1].mean_capacity <= w[0].mean_capacity + 1e-9);
    let comparisons = vec![
        cmp(
            "capacity at age 0",
            1.0,
            grid.first().map(|g| g.mean_capacity).unwrap_or(0.0),
        ),
        cmp(
            "lifespan curve monotone nonincreasing",
            1.0,
            if monotone { 1.0 } else { 0.0 },
        ),
        // Single-element exponential anchors: -ln(x) * switch MTBF.
        cmp(
            "time to 90% capacity (yr)",
            -0.9f64.ln() * survivability::MTBF_SWITCH_YEARS,
            s.age_to_capacity(0.9),
        ),
        cmp(
            "time to 50% capacity (yr)",
            -0.5f64.ln() * survivability::MTBF_SWITCH_YEARS,
            s.age_to_capacity(0.5),
        ),
    ];
    ExperimentOutcome {
        experiment: Experiment::SurvLifespan,
        rendered: survivability::render_lifespan(s),
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioKind};

    fn quarter_scale_context() -> RunContext {
        RunContext::new(Scenario {
            scale: 0.25,
            backbone: dcnr_backbone::topo::BackboneParams {
                edges: 40,
                vendors: 16,
                min_links_per_edge: 3,
            },
            ..Scenario::intra(3)
        })
    }

    #[test]
    fn every_experiment_has_exactly_one_artifact() {
        for e in Experiment::ALL {
            let matches = registry().iter().filter(|a| a.id == e).count();
            assert_eq!(matches, 1, "{e} must have exactly one descriptor");
        }
        assert_eq!(registry().len(), Experiment::ALL.len());
    }

    #[test]
    fn every_artifact_has_a_paper_baseline() {
        for a in registry() {
            assert!(
                !a.paper_baseline.trim().is_empty(),
                "{} has an empty paper baseline",
                a.id
            );
        }
    }

    #[test]
    fn registry_order_matches_paper_order() {
        let ids: Vec<Experiment> = registry().iter().map(|a| a.id).collect();
        assert_eq!(ids, Experiment::ALL.to_vec());
    }

    #[test]
    fn every_artifact_renders_at_quarter_scale() {
        let ctx = quarter_scale_context();
        for a in registry() {
            let out = (a.render)(&ctx);
            assert_eq!(out.experiment, a.id);
            assert!(!out.rendered.is_empty(), "{} rendered nothing", a.id);
            assert!(
                !out.comparisons.is_empty(),
                "{} produced no comparisons",
                a.id
            );
            for c in &out.comparisons {
                assert!(c.measured.is_finite(), "{}: {} not finite", a.id, c.metric);
            }
        }
    }

    #[test]
    fn routes_severity_mix_is_emergent_and_within_tolerance() {
        let ctx = quarter_scale_context();
        let out = ctx.artifact(Experiment::RoutesSeverityMix);
        assert_eq!(out.comparisons.len(), 3);
        for c in &out.comparisons {
            assert!(
                (c.measured - c.paper).abs()
                    < dcnr_service::EmergentSeverityModel::AGGREGATE_TOLERANCE,
                "{}: {c:?}",
                c.metric
            );
        }
        assert!(out.rendered.contains("no Table 3 sampling"));
    }

    #[test]
    fn headline_comparisons_within_tolerance() {
        let ctx = RunContext::new(Scenario {
            kind: ScenarioKind::Intra,
            scale: 2.0,
            backbone: dcnr_backbone::topo::BackboneParams {
                edges: 60,
                vendors: 25,
                min_links_per_edge: 3,
            },
            ..Scenario::intra(3)
        });
        // Table 1 repair ratios: tight.
        let t1 = ctx.artifact(Experiment::Table1);
        for c in t1
            .comparisons
            .iter()
            .filter(|c| c.metric.contains("repair ratio"))
        {
            assert!(c.relative_error() < 0.05, "{}: {c:?}", c.metric);
        }
        // Fig. 7 2017 shares: within 6 points absolute.
        let f7 = ctx.artifact(Experiment::Fig7);
        for c in &f7.comparisons {
            assert!((c.measured - c.paper).abs() < 0.06, "{}: {c:?}", c.metric);
        }
        // Fig. 15 fit parameters: same regime.
        let f15 = ctx.artifact(Experiment::Fig15);
        let b = f15
            .comparisons
            .iter()
            .find(|c| c.metric == "fit b")
            .expect("fit b");
        assert!(b.relative_error() < 0.6, "{b:?}");
    }
}
