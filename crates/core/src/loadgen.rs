//! The `dcnr loadgen` closed-loop load harness: N client threads drive
//! a running `dcnr serve` with a seeded artifact/scenario request mix,
//! then report throughput and latency percentiles (and optionally write
//! a `BENCH_serve.json` record).
//!
//! Closed loop means each client issues its next request only after the
//! previous response completes, so offered load adapts to the server
//! instead of timing out into meaningless numbers. The request mix is
//! deterministic: client `i` draws from `stream_rng(mix_seed,
//! "loadgen.client.{i}")`, and the candidate scenarios are minted with
//! the same [`seed_sequence`] discipline the sweep runner uses.
//!
//! Every request goes through [`crate::resilience::resilient_get`], so
//! a `503` shed is a *retryable* event that honors the server's
//! `Retry-After` — the summary classifies terminal outcomes as
//! ok / retried-ok / shed / gave-up / corrupt instead of lumping sheds
//! in with transport errors.
//!
//! With `--verify`, every response body is compared byte-for-byte
//! against [`crate::serve::render_artifact_text`] computed locally —
//! the load test doubles as the cache-coherence test. With `--chaos`
//! the run becomes a resilience harness: it assumes the server is
//! fault-injected, forces verification, and emits a pass/fail verdict
//! (eventual-success rate ≥ `min_success`, undetected corruption
//! exactly zero) plus a `BENCH_resilience.json` record.

use crate::error::DcnrError;
use crate::experiments::Experiment;
use crate::json;
use crate::resilience::{self, Outcome, RetryCauses, RetryPolicy};
use crate::scenario::Scenario;
use crate::serve;
use crate::traffic;
use dcnr_server::client;
use dcnr_sim::rng::derive_indexed_seed;
use dcnr_sim::{seed_sequence, stream_rng};
use rand::Rng;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything one `dcnr loadgen` run needs.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Seed for the per-client request mix.
    pub mix_seed: u64,
    /// How many distinct scenario seeds per artifact to spread requests
    /// across (1 = everything hits the same cache entry).
    pub scenario_seeds: usize,
    /// The artifacts in the mix.
    pub artifacts: Vec<Experiment>,
    /// Extra scenario flags (`--scale 0.25 ...`) applied to every
    /// artifact's CLI-default base before minting seeds — the same
    /// parser the `serve`/`artifact` subcommands use.
    pub scenario_args: Vec<String>,
    /// Compare every body against a locally rendered expectation.
    pub verify: bool,
    /// Write (or append) a bench record here.
    pub bench_json: Option<String>,
    /// Append to an existing bench file instead of overwriting.
    pub bench_append: bool,
    /// Tag the bench record with an `"engine"` key (`--bench-label`),
    /// so `BENCH_serve.json` rows distinguish `threads` from `events`
    /// runs at the same worker count.
    pub bench_label: Option<String>,
    /// Per-request client timeout (the retry policy's attempt timeout).
    pub timeout: Duration,
    /// Retry/backoff/deadline policy for every request.
    pub policy: RetryPolicy,
    /// Resilience-harness mode: verify every body and emit a pass/fail
    /// verdict against `min_success` and zero undetected corruption.
    pub chaos: bool,
    /// Minimum eventual-success rate the chaos verdict requires.
    pub min_success: f64,
    /// Open-loop overload harness (`--open-loop`): `Some` switches the
    /// run to [`run_open_loop`] and conflicts with `chaos`/`verify`.
    pub open_loop: Option<OpenLoopOptions>,
}

/// Knobs for the `--open-loop` overload harness.
#[derive(Debug, Clone)]
pub struct OpenLoopOptions {
    /// Sustainable rate (req/s) to scale the overload factor from;
    /// `None` measures it with a short closed-loop calibration run.
    pub rate: Option<f64>,
    /// Offered load as a multiple of the sustainable rate.
    pub overload: f64,
    /// Total arrivals to schedule.
    pub arrivals: usize,
    /// Client-side concurrency bound: arrivals past this many
    /// outstanding requests are dropped client-side (counted), keeping
    /// the generator honest instead of turning into a connect flood.
    pub max_in_flight: usize,
    /// Burst modulation for the arrival process.
    pub burst: traffic::BurstProfile,
    /// Diurnal modulation for the arrival process.
    pub diurnal: traffic::DiurnalProfile,
    /// Write the generated trace here before dispatching.
    pub trace_out: Option<String>,
    /// Replay this trace instead of generating (conflicts with the
    /// rate/burst/diurnal/arrival knobs).
    pub trace_in: Option<String>,
    /// Verdict: goodput must stay at or above this fraction of the
    /// sustainable rate.
    pub goodput_floor: f64,
    /// Verdict: p99 latency of *admitted* (200) requests must stay at
    /// or below this.
    pub p99_cap: Duration,
    /// Verdict: at least this fraction of health probes must answer.
    pub health_floor: f64,
}

impl Default for OpenLoopOptions {
    fn default() -> Self {
        Self {
            rate: None,
            overload: 2.0,
            arrivals: 1000,
            max_in_flight: 64,
            burst: traffic::BurstProfile::default(),
            diurnal: traffic::DiurnalProfile::default(),
            trace_out: None,
            trace_in: None,
            goodput_floor: 0.5,
            p99_cap: Duration::from_secs(1),
            health_floor: 0.9,
        }
    }
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            clients: 4,
            requests: 25,
            mix_seed: 0x10AD,
            scenario_seeds: 2,
            artifacts: vec![Experiment::Fig15, Experiment::Fig16, Experiment::Table4],
            scenario_args: Vec::new(),
            verify: false,
            bench_json: None,
            bench_append: false,
            bench_label: None,
            timeout: Duration::from_secs(30),
            policy: RetryPolicy::default(),
            chaos: false,
            min_success: 0.99,
            open_loop: None,
        }
    }
}

/// One entry in the request mix: a target URL plus what it renders.
#[derive(Debug, Clone)]
struct MixEntry {
    experiment: Experiment,
    scenario: Scenario,
    target: String,
}

/// Aggregated result of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests attempted per client.
    pub requests_per_client: usize,
    /// First-attempt successes.
    pub ok: usize,
    /// Successes after one or more retries.
    pub retried_ok: usize,
    /// Requests that exhausted their budget still being shed (terminal
    /// 503 after honoring every `Retry-After`).
    pub shed: usize,
    /// Requests that gave up on transport or server errors.
    pub errors: usize,
    /// Requests that gave up on *detected* integrity failures
    /// (truncation / checksum mismatch on every attempt).
    pub corrupt: usize,
    /// Successful responses flagged `X-Dcnr-Stale` by the server's
    /// degraded paths.
    pub stale: usize,
    /// Retry counts by cause across all clients.
    pub retries: RetryCauses,
    /// Byte-for-byte mismatches against the local render on responses
    /// that *passed* integrity checks — undetected corruption. Must be
    /// zero; only counted when `verify` was on.
    pub verify_failures: usize,
    /// Wall-clock for the whole run.
    pub wall: Duration,
    /// Completed (eventual 200 or terminal 503) requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles over successful requests (including retry
    /// and backoff time), in microseconds: (p50, p95, p99, mean, max).
    pub latency_micros: (u64, u64, u64, u64, u64),
    /// The `dcnr_server_workers` gauge scraped from `/metrics` after
    /// the run (0 when the scrape failed).
    pub server_workers: u64,
    /// The `--bench-label` engine tag, recorded as the bench record's
    /// `"engine"` key when present.
    pub engine_label: Option<String>,
    /// Total transport fault injections scraped from the server's
    /// `dcnr_server_chaos_injections_total` counters (0 when absent).
    pub chaos_injections: u64,
    /// Whether this run was the `--chaos` resilience harness.
    pub chaos: bool,
    /// The eventual-success floor the verdict requires.
    pub min_success: f64,
    /// Human-readable report.
    pub rendered: String,
}

impl LoadReport {
    /// Fraction of requests that eventually succeeded.
    pub fn eventual_success_rate(&self) -> f64 {
        let total = self.clients * self.requests_per_client;
        if total == 0 {
            return 0.0;
        }
        (self.ok + self.retried_ok) as f64 / total as f64
    }

    /// The chaos-harness verdict: eventual success meets the floor and
    /// corruption never slipped past the integrity checks.
    pub fn verdict_pass(&self) -> bool {
        self.eventual_success_rate() >= self.min_success && self.verify_failures == 0
    }
}

/// Per-client tallies, merged across threads at the end of a run.
#[derive(Debug, Default)]
struct ClientTally {
    ok: usize,
    retried_ok: usize,
    shed: usize,
    gave_up: usize,
    corrupt: usize,
    stale: usize,
    verify_failures: usize,
    retries: RetryCauses,
    latencies: Vec<u64>,
}

impl ClientTally {
    fn merge(&mut self, other: ClientTally) {
        self.ok += other.ok;
        self.retried_ok += other.retried_ok;
        self.shed += other.shed;
        self.gave_up += other.gave_up;
        self.corrupt += other.corrupt;
        self.stale += other.stale;
        self.verify_failures += other.verify_failures;
        self.retries.merge(&other.retries);
        self.latencies.extend(other.latencies);
    }
}

/// Builds the deterministic request mix: every artifact crossed with
/// `scenario_seeds` derived seeds, each a `with_seed` rebind of that
/// artifact's flag-adjusted CLI-default base.
fn build_mix(opts: &LoadgenOptions) -> Result<Vec<MixEntry>, DcnrError> {
    if opts.artifacts.is_empty() {
        return Err(DcnrError::Usage("loadgen: artifact list is empty".into()));
    }
    if opts.clients == 0 || opts.requests == 0 || opts.scenario_seeds == 0 {
        return Err(DcnrError::Usage(
            "loadgen: --clients, --requests, and --scenario-seeds must be positive".into(),
        ));
    }
    // One flag-adjusted base per study kind, parsed exactly once.
    let mut bases: HashMap<&'static str, Scenario> = HashMap::new();
    let mut mix = Vec::new();
    for &e in &opts.artifacts {
        let kind = crate::artifacts::base_kind(e);
        let base = match bases.entry(kind.name()) {
            std::collections::hash_map::Entry::Occupied(o) => *o.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let mut scan = crate::cli::ArgScanner::new(opts.scenario_args.clone());
                let s = crate::cli::apply_scenario_flags(&mut scan, Scenario::cli_default(kind))?;
                scan.finish()
                    .map_err(|msg| DcnrError::Usage(format!("loadgen: {msg}")))?;
                s.validate()?;
                *v.insert(s)
            }
        };
        let seeds = seed_sequence(
            base.seed,
            "loadgen.scenario",
            u32::try_from(opts.scenario_seeds)
                .map_err(|_| DcnrError::Usage("loadgen: --scenario-seeds too large".into()))?,
        );
        for seed in seeds {
            let scenario = base.with_seed(seed);
            let target = format!(
                "/artifacts/{}?{}",
                e.key(),
                serve::scenario_query(&scenario)
            );
            mix.push(MixEntry {
                experiment: e,
                scenario,
                target,
            });
        }
    }
    Ok(mix)
}

/// Runs the closed loop against `opts.addr` and returns the aggregate.
///
/// Fails with [`DcnrError::Failed`] when no request succeeds (server
/// down or every response shed) or when `verify` finds any body that
/// differs from the local render.
pub fn run(opts: &LoadgenOptions) -> Result<LoadReport, DcnrError> {
    let mix = Arc::new(build_mix(opts)?);
    let verify = opts.verify || opts.chaos;
    // Local expectations, rendered serially before the clock starts.
    let expected: Arc<Vec<Option<String>>> = Arc::new(if verify {
        mix.iter()
            .map(|m| serve::render_artifact_text(&m.scenario, m.experiment).map(Some))
            .collect::<Result<_, _>>()?
    } else {
        mix.iter().map(|_| None).collect()
    });

    let started = Instant::now();
    let mut handles = Vec::new();
    for i in 0..opts.clients {
        let mix = mix.clone();
        let expected = expected.clone();
        let addr = opts.addr.clone();
        let requests = opts.requests;
        let mix_seed = opts.mix_seed;
        let policy = RetryPolicy {
            attempt_timeout: opts.timeout,
            ..opts.policy
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("dcnr-loadgen-{i}"))
                .spawn(move || {
                    let mut rng = stream_rng(mix_seed, &format!("loadgen.client.{i}"));
                    let backoff_tag = format!("loadgen.backoff.{i}");
                    let mut tally = ClientTally::default();
                    for j in 0..requests {
                        let pick = rng.gen_range(0..mix.len());
                        let entry = &mix[pick];
                        let seed = derive_indexed_seed(mix_seed, &backoff_tag, j as u64);
                        let r = resilience::resilient_get(&addr, &entry.target, &policy, seed);
                        tally.retries.merge(&r.retries);
                        match r.outcome {
                            Outcome::Ok | Outcome::RetriedOk => {
                                if r.outcome == Outcome::Ok {
                                    tally.ok += 1;
                                } else {
                                    tally.retried_ok += 1;
                                }
                                if r.stale {
                                    tally.stale += 1;
                                }
                                tally.latencies.push(r.elapsed.as_micros() as u64);
                                // A body that passed Content-Length and
                                // checksum but differs from the local
                                // render is corruption the integrity
                                // layer MISSED.
                                if let (Some(want), Some(resp)) = (&expected[pick], &r.response) {
                                    if resp.body != want.as_bytes() {
                                        tally.verify_failures += 1;
                                    }
                                }
                            }
                            Outcome::Shed => tally.shed += 1,
                            Outcome::GaveUp => tally.gave_up += 1,
                            Outcome::Corrupt => tally.corrupt += 1,
                        }
                    }
                    tally
                })
                .map_err(|e| DcnrError::Failed(format!("spawn loadgen client: {e}")))?,
        );
    }

    let mut tally = ClientTally::default();
    for handle in handles {
        tally.merge(
            handle
                .join()
                .map_err(|_| DcnrError::Failed("loadgen client panicked".into()))?,
        );
    }
    let wall = started.elapsed();
    let succeeded = tally.ok + tally.retried_ok;

    if succeeded == 0 {
        return Err(DcnrError::Failed(format!(
            "loadgen: no successful responses from {} ({} shed, {} gave up, {} corrupt) — is the server up?",
            opts.addr, tally.shed, tally.gave_up, tally.corrupt
        )));
    }

    let mut latencies = tally.latencies;
    latencies.sort_unstable();
    let latency_micros = latency_summary(&latencies);
    let completed = succeeded + tally.shed;
    let throughput_rps = completed as f64 / wall.as_secs_f64().max(1e-9);
    let server_workers = scrape_metric(&opts.addr, opts.timeout, "dcnr_server_workers");
    let chaos_injections = scrape_counter_sum(
        &opts.addr,
        opts.timeout,
        "dcnr_server_chaos_injections_total",
    );

    let mut rendered = String::new();
    let _ = writeln!(rendered, "loadgen against http://{}", opts.addr);
    let _ = writeln!(
        rendered,
        "  clients {}  requests/client {}  mix entries {}  verify {}  chaos {}",
        opts.clients,
        opts.requests,
        mix.len(),
        if verify { "on" } else { "off" },
        if opts.chaos { "on" } else { "off" }
    );
    let _ = writeln!(
        rendered,
        "  ok {}  retried-ok {}  shed {}  gave-up {}  corrupt {}  stale {}  wall {:.3}s  throughput {throughput_rps:.1} req/s",
        tally.ok,
        tally.retried_ok,
        tally.shed,
        tally.gave_up,
        tally.corrupt,
        tally.stale,
        wall.as_secs_f64()
    );
    let _ = writeln!(
        rendered,
        "  retries  shed {}  transport {}  integrity {}  status {}",
        tally.retries.shed, tally.retries.transport, tally.retries.integrity, tally.retries.status
    );
    let _ = writeln!(
        rendered,
        "  latency micros  p50 {}  p95 {}  p99 {}  mean {}  max {}",
        latency_micros.0, latency_micros.1, latency_micros.2, latency_micros.3, latency_micros.4
    );

    let report = LoadReport {
        clients: opts.clients,
        requests_per_client: opts.requests,
        ok: tally.ok,
        retried_ok: tally.retried_ok,
        shed: tally.shed,
        errors: tally.gave_up,
        corrupt: tally.corrupt,
        stale: tally.stale,
        retries: tally.retries,
        verify_failures: tally.verify_failures,
        wall,
        throughput_rps,
        latency_micros,
        server_workers,
        engine_label: opts.bench_label.clone(),
        chaos_injections,
        chaos: opts.chaos,
        min_success: opts.min_success,
        rendered,
    };
    let mut report = report;
    if opts.chaos {
        let _ = writeln!(
            report.rendered,
            "  chaos verdict: {}  eventual success {:.2}% (min {:.2}%)  undetected corruption {}  observed injections {}",
            if report.verdict_pass() { "PASS" } else { "FAIL" },
            report.eventual_success_rate() * 100.0,
            report.min_success * 100.0,
            report.verify_failures,
            report.chaos_injections
        );
    }
    if let Some(path) = &opts.bench_json {
        write_bench(path, opts.bench_append, &report)?;
    }
    if report.verify_failures > 0 {
        return Err(DcnrError::Failed(format!(
            "loadgen: {} response bodies passed integrity checks but differed from the local render (undetected corruption)",
            report.verify_failures
        )));
    }
    if opts.chaos && !report.verdict_pass() {
        return Err(DcnrError::Failed(format!(
            "loadgen: chaos verdict FAIL — eventual success {:.2}% below the {:.2}% floor",
            report.eventual_success_rate() * 100.0,
            report.min_success * 100.0
        )));
    }
    Ok(report)
}

/// Nearest-rank percentile on an already-sorted sample. Total for any
/// input: an empty sample answers 0 instead of panicking, a singleton
/// answers its only element for every `p`.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// `(p50, p95, p99, mean, max)` over a sorted sample; all zeros when
/// the sample is empty.
fn latency_summary(sorted: &[u64]) -> (u64, u64, u64, u64, u64) {
    let mean = if sorted.is_empty() {
        0
    } else {
        sorted.iter().sum::<u64>() / sorted.len() as u64
    };
    let max = *sorted.last().unwrap_or(&0);
    (
        percentile(sorted, 50.0),
        percentile(sorted, 95.0),
        percentile(sorted, 99.0),
        mean,
        max,
    )
}

/// Scrapes one unlabeled series off `/metrics` so the bench record
/// states what it actually measured against. Best-effort: 0 when the
/// scrape fails or the series is absent.
fn scrape_metric(addr: &str, timeout: Duration, name: &str) -> u64 {
    let Ok(resp) = client::get(addr, "/metrics", Some(timeout)) else {
        return 0;
    };
    let prefix = format!("{name} ");
    let body = String::from_utf8_lossy(&resp.body);
    body.lines()
        .find_map(|line| line.strip_prefix(prefix.as_str()))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(0)
}

/// Sums every labeled sample of a counter family off `/metrics` (e.g.
/// all `dcnr_server_chaos_injections_total{fault="..."}` series).
/// Best-effort: 0 when the scrape fails or the family is absent.
fn scrape_counter_sum(addr: &str, timeout: Duration, family: &str) -> u64 {
    let Ok(resp) = client::get(addr, "/metrics", Some(timeout)) else {
        return 0;
    };
    let brace = format!("{family}{{");
    let plain = format!("{family} ");
    let body = String::from_utf8_lossy(&resp.body);
    body.lines()
        .filter(|l| l.starts_with(brace.as_str()) || l.starts_with(plain.as_str()))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.trim().parse::<f64>().ok())
        .map(|v| v as u64)
        .sum()
}

/// One bench run as a JSON object literal.
fn bench_record(report: &LoadReport) -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let oversubscribed = report.clients + report.server_workers as usize > cpus;
    let mut out = String::from("    {\n");
    if let Some(engine) = &report.engine_label {
        let _ = writeln!(out, "      \"engine\": \"{}\",", engine.escape_default());
    }
    let _ = writeln!(out, "      \"clients\": {},", report.clients);
    let _ = writeln!(
        out,
        "      \"requests_per_client\": {},",
        report.requests_per_client
    );
    let _ = writeln!(out, "      \"server_workers\": {},", report.server_workers);
    let _ = writeln!(out, "      \"host_cpus\": {cpus},");
    let _ = writeln!(
        out,
        "      \"wall_secs\": {:.6},",
        report.wall.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "      \"throughput_rps\": {:.3},",
        report.throughput_rps
    );
    let (p50, p95, p99, mean, max) = report.latency_micros;
    let _ = writeln!(
        out,
        "      \"latency_micros\": {{ \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"mean\": {mean}, \"max\": {max} }},"
    );
    let _ = writeln!(
        out,
        "      \"outcomes\": {{ \"ok\": {}, \"retried_ok\": {}, \"shed\": {}, \"gave_up\": {}, \"corrupt\": {} }},",
        report.ok, report.retried_ok, report.shed, report.errors, report.corrupt
    );
    let _ = writeln!(
        out,
        "      \"retries\": {{ \"shed\": {}, \"transport\": {}, \"integrity\": {}, \"status\": {} }},",
        report.retries.shed, report.retries.transport, report.retries.integrity, report.retries.status
    );
    let _ = writeln!(out, "      \"stale_served\": {},", report.stale);
    if report.chaos {
        let _ = writeln!(
            out,
            "      \"chaos\": {{ \"verdict\": \"{}\", \"eventual_success_rate\": {:.6}, \"min_success\": {:.6}, \"undetected_corruption\": {}, \"observed_injections\": {} }},",
            if report.verdict_pass() { "pass" } else { "fail" },
            report.eventual_success_rate(),
            report.min_success,
            report.verify_failures,
            report.chaos_injections
        );
    }
    let _ = writeln!(out, "      \"verified\": {},", report.verify_failures == 0);
    let note = if oversubscribed {
        "clients + server workers exceed host CPUs; latency includes scheduling contention"
    } else {
        "clients + server workers fit within host CPUs"
    };
    let _ = writeln!(out, "      \"note\": \"{note}\"");
    out.push_str("    }");
    out
}

/// Writes (or appends to) the `BENCH_serve.json` run list and
/// re-validates the result with the in-tree JSON parser so a malformed
/// splice can never land on disk unnoticed.
fn write_bench(path: &str, append: bool, report: &LoadReport) -> Result<(), DcnrError> {
    let record = bench_record(report);
    let io_err = |e: std::io::Error| DcnrError::Io {
        path: path.to_string(),
        message: e.to_string(),
    };
    let text = if append {
        let existing = std::fs::read_to_string(path).map_err(io_err)?;
        let trimmed = existing.trim_end();
        // Splice before the closing "]\n}" of {"runs": [ ... ]}.
        let Some(idx) = trimmed.rfind(']') else {
            return Err(DcnrError::Failed(format!(
                "{path}: no run list to append to"
            )));
        };
        let (head, tail) = trimmed.split_at(idx);
        let head = head.trim_end();
        let separator = if head.ends_with('[') { "\n" } else { ",\n" };
        format!("{head}{separator}{record}\n  {tail}\n")
    } else {
        format!("{{\n  \"runs\": [\n{record}\n  ]\n}}\n")
    };
    json::parse(&text)
        .map_err(|e| DcnrError::Failed(format!("{path}: bench JSON would be malformed: {e}")))?;
    std::fs::write(path, text).map_err(io_err)?;
    Ok(())
}

/// Aggregated result of one open-loop overload run.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// The sustainable rate the overload factor was applied to (req/s).
    pub sustainable_rps: f64,
    /// `"measured"` (closed-loop calibration) or `"given"` (`--rate`).
    pub rate_source: &'static str,
    /// The offered open-loop rate (`sustainable * overload`).
    pub offered_rps: f64,
    /// The overload multiple.
    pub overload: f64,
    /// Arrivals scheduled by the traffic model.
    pub arrivals: usize,
    /// Arrivals actually dispatched to the server.
    pub dispatched: usize,
    /// Arrivals dropped client-side at the in-flight bound.
    pub client_dropped: usize,
    /// Dispatched requests answered 200 (goodput; includes stale).
    pub good: usize,
    /// Of the `good` responses, how many were flagged `X-Dcnr-Stale`.
    pub stale: usize,
    /// Dispatched requests shed with 503.
    pub shed: usize,
    /// Dispatched requests that failed on transport or other statuses.
    pub errors: usize,
    /// 200 responses per second of overload-phase wall clock.
    pub goodput_rps: f64,
    /// Latency percentiles over *admitted* (200) requests, µs:
    /// (p50, p95, p99, mean, max).
    pub admitted_latency_micros: (u64, u64, u64, u64, u64),
    /// Health probes issued while the overload ran.
    pub health_probes: usize,
    /// Health probes answered 200.
    pub health_ok: usize,
    /// Sum of `dcnr_server_admission_dropped_total` scraped after the
    /// run (0 when admission control is off or the scrape failed).
    pub admission_drops: u64,
    /// Overload-phase wall clock.
    pub wall: Duration,
    /// The goodput floor (fraction of sustainable) the verdict requires.
    pub goodput_floor: f64,
    /// The admitted-p99 cap the verdict requires.
    pub p99_cap: Duration,
    /// The health answer-rate floor the verdict requires.
    pub health_floor: f64,
    /// Whether the arrivals were replayed from a trace.
    pub trace_replayed: bool,
    /// Human-readable report.
    pub rendered: String,
}

impl OverloadReport {
    /// The overload verdict: under ≥ the configured overload multiple,
    /// goodput holds the floor, the admitted-request tail stays
    /// bounded, and health probes keep answering.
    pub fn verdict_pass(&self) -> bool {
        self.goodput_rps >= self.goodput_floor * self.sustainable_rps
            && Duration::from_micros(self.admitted_latency_micros.2) <= self.p99_cap
            && self.health_probes > 0
            && self.health_ok as f64 >= self.health_floor * self.health_probes as f64
    }
}

/// Per-worker tallies for the open-loop dispatcher.
#[derive(Debug, Default)]
struct OpenTally {
    good: usize,
    stale: usize,
    shed: usize,
    errors: usize,
    latencies: Vec<u64>,
}

/// The dispatcher/worker rendezvous: a plain bounded-by-`in_flight`
/// job queue. `in_flight` counts jobs queued *or* executing, so the
/// bound covers total outstanding work, not just the backlog.
struct OpenLoopShared {
    jobs: Mutex<VecDeque<(u64, usize)>>,
    available: Condvar,
    closed: AtomicBool,
    in_flight: AtomicUsize,
}

/// Runs the open-loop overload harness: calibrate (or take `--rate`),
/// schedule `arrivals` with the seeded traffic model at
/// `sustainable * overload`, dispatch them on their own clock with a
/// bounded in-flight cap, probe health throughout, and render a
/// pass/fail verdict. Fails with [`DcnrError::Failed`] when the
/// verdict does not pass (after writing the bench record).
pub fn run_open_loop(opts: &LoadgenOptions) -> Result<OverloadReport, DcnrError> {
    let Some(ol) = &opts.open_loop else {
        return Err(DcnrError::Usage(
            "run_open_loop requires open_loop options".into(),
        ));
    };
    if opts.chaos || opts.verify {
        return Err(DcnrError::Usage(
            "--open-loop conflicts with --chaos and --verify".into(),
        ));
    }
    let mix = build_mix(opts)?;

    // Phase 1: the sustainable rate — measured closed-loop unless given.
    let (sustainable, rate_source) = match ol.rate {
        Some(rate) => (rate, "given"),
        None => {
            let calib = LoadgenOptions {
                clients: 4,
                requests: 32,
                verify: false,
                chaos: false,
                bench_json: None,
                bench_append: false,
                open_loop: None,
                ..opts.clone()
            };
            (run(&calib)?.throughput_rps, "measured")
        }
    };
    if !sustainable.is_finite() || sustainable <= 0.0 {
        return Err(DcnrError::Failed(format!(
            "open-loop: sustainable rate {sustainable} is unusable"
        )));
    }
    let offered = sustainable * ol.overload;

    // Phase 2: the arrival schedule — generated or replayed.
    let (cfg, arrivals, trace_replayed) = match &ol.trace_in {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| DcnrError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            let (cfg, arrivals) = traffic::parse_trace(&text)?;
            if cfg.mix_entries as usize != mix.len() {
                return Err(DcnrError::Usage(format!(
                    "--trace-in {path}: trace was recorded against {} mix entries, \
                     this run has {}",
                    cfg.mix_entries,
                    mix.len()
                )));
            }
            (cfg, arrivals, true)
        }
        None => {
            let cfg = traffic::TrafficConfig {
                seed: opts.mix_seed,
                rate_per_sec: offered,
                arrivals: ol.arrivals,
                mix_entries: u32::try_from(mix.len())
                    .map_err(|_| DcnrError::Usage("open-loop: mix too large".into()))?,
                burst: ol.burst,
                diurnal: ol.diurnal,
            };
            let arrivals = traffic::generate(&cfg)?;
            if let Some(path) = &ol.trace_out {
                std::fs::write(path, traffic::emit_trace(&cfg, &arrivals)).map_err(|e| {
                    DcnrError::Io {
                        path: path.clone(),
                        message: e.to_string(),
                    }
                })?;
            }
            (cfg, arrivals, false)
        }
    };

    // Phase 3: open-loop dispatch. The dispatcher owns the clock and
    // never waits on a response; workers do single-attempt requests (a
    // retry layer would re-close the loop and hide the overload).
    let shared = Arc::new(OpenLoopShared {
        jobs: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        closed: AtomicBool::new(false),
        in_flight: AtomicUsize::new(0),
    });
    let mix = Arc::new(mix);
    let started = Instant::now();
    let workers: Vec<_> = (0..ol.max_in_flight.max(1))
        .map(|i| {
            let shared = shared.clone();
            let mix = mix.clone();
            let addr = opts.addr.clone();
            let timeout = opts.timeout;
            std::thread::Builder::new()
                .name(format!("dcnr-openloop-{i}"))
                .spawn(move || open_loop_worker(&shared, &mix, &addr, timeout))
                .map_err(|e| DcnrError::Failed(format!("spawn open-loop worker: {e}")))
        })
        .collect::<Result<_, _>>()?;
    let prober = {
        let addr = opts.addr.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("dcnr-openloop-health".into())
            .spawn(move || health_prober(&addr, &flag))
            .map_err(|e| DcnrError::Failed(format!("spawn health prober: {e}")))?;
        (handle, stop)
    };

    let mut client_dropped = 0usize;
    let mut dispatched = 0usize;
    for arrival in &arrivals {
        let due = started + Duration::from_micros(arrival.at_micros);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        // The in-flight bound is what keeps the generator open-loop
        // *and* honest: beyond it the arrival is recorded as dropped
        // rather than silently deferred (which would close the loop).
        if shared.in_flight.load(Ordering::Acquire) >= ol.max_in_flight {
            client_dropped += 1;
            continue;
        }
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        let mut jobs = lock_unpoisoned(&shared.jobs);
        jobs.push_back((arrival.at_micros, arrival.mix as usize % mix.len()));
        drop(jobs);
        shared.available.notify_one();
        dispatched += 1;
    }
    shared.closed.store(true, Ordering::SeqCst);
    shared.available.notify_all();
    let mut tally = OpenTally::default();
    for w in workers {
        let t = w
            .join()
            .map_err(|_| DcnrError::Failed("open-loop worker panicked".into()))?;
        tally.good += t.good;
        tally.stale += t.stale;
        tally.shed += t.shed;
        tally.errors += t.errors;
        tally.latencies.extend(t.latencies);
    }
    let wall = started.elapsed();
    prober.1.store(true, Ordering::SeqCst);
    let (health_probes, health_ok) = prober
        .0
        .join()
        .map_err(|_| DcnrError::Failed("health prober panicked".into()))?;

    tally.latencies.sort_unstable();
    let admitted_latency_micros = latency_summary(&tally.latencies);
    let goodput_rps = tally.good as f64 / wall.as_secs_f64().max(1e-9);
    let admission_drops = scrape_counter_sum(
        &opts.addr,
        opts.timeout,
        "dcnr_server_admission_dropped_total",
    );

    let mut report = OverloadReport {
        sustainable_rps: sustainable,
        rate_source,
        offered_rps: cfg.rate_per_sec,
        overload: cfg.rate_per_sec / sustainable,
        arrivals: arrivals.len(),
        dispatched,
        client_dropped,
        good: tally.good,
        stale: tally.stale,
        shed: tally.shed,
        errors: tally.errors,
        goodput_rps,
        admitted_latency_micros,
        health_probes,
        health_ok,
        admission_drops,
        wall,
        goodput_floor: ol.goodput_floor,
        p99_cap: ol.p99_cap,
        health_floor: ol.health_floor,
        trace_replayed,
        rendered: String::new(),
    };
    let mut rendered = String::new();
    let _ = writeln!(rendered, "open-loop overload against http://{}", opts.addr);
    let _ = writeln!(
        rendered,
        "  sustainable {sustainable:.1} req/s ({rate_source})  offered {:.1} req/s ({:.2}x)  arrivals {}{}",
        report.offered_rps,
        report.overload,
        report.arrivals,
        if trace_replayed { "  [trace replay]" } else { "" }
    );
    let _ = writeln!(
        rendered,
        "  dispatched {}  client-dropped {}  good {}  stale {}  shed {}  errors {}  wall {:.3}s",
        report.dispatched,
        report.client_dropped,
        report.good,
        report.stale,
        report.shed,
        report.errors,
        wall.as_secs_f64()
    );
    let _ = writeln!(
        rendered,
        "  goodput {goodput_rps:.1} req/s (floor {:.1})  admitted p50 {} p99 {} max {} micros (cap {})",
        report.goodput_floor * sustainable,
        admitted_latency_micros.0,
        admitted_latency_micros.2,
        admitted_latency_micros.4,
        report.p99_cap.as_micros()
    );
    let _ = writeln!(
        rendered,
        "  health {}/{} answered (floor {:.0}%)  server admission drops {}",
        report.health_ok,
        report.health_probes,
        report.health_floor * 100.0,
        report.admission_drops
    );
    let _ = writeln!(
        rendered,
        "  overload verdict: {}",
        if report.verdict_pass() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    report.rendered = rendered;

    if let Some(path) = &opts.bench_json {
        write_overload_bench(path, &report)?;
    }
    if !report.verdict_pass() {
        return Err(DcnrError::Failed(format!(
            "open-loop overload verdict FAIL: goodput {:.1}/{:.1} req/s, admitted p99 {}µs (cap {}µs), health {}/{}",
            report.goodput_rps,
            report.goodput_floor * report.sustainable_rps,
            report.admitted_latency_micros.2,
            report.p99_cap.as_micros(),
            report.health_ok,
            report.health_probes
        )));
    }
    Ok(report)
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One open-loop worker: single-attempt GETs, no retries, outcome
/// classification only. Latency is recorded for admitted (200)
/// responses — that is the tail the verdict bounds.
fn open_loop_worker(
    shared: &OpenLoopShared,
    mix: &[MixEntry],
    addr: &str,
    timeout: Duration,
) -> OpenTally {
    let mut tally = OpenTally::default();
    loop {
        let job = {
            let mut jobs = lock_unpoisoned(&shared.jobs);
            loop {
                if let Some(j) = jobs.pop_front() {
                    break Some(j);
                }
                if shared.closed.load(Ordering::SeqCst) {
                    break None;
                }
                jobs = shared
                    .available
                    .wait(jobs)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some((_at, mix_idx)) = job else {
            return tally;
        };
        let sent = Instant::now();
        match client::get(addr, &mix[mix_idx].target, Some(timeout)) {
            Ok(resp) if resp.status == 200 => {
                tally.good += 1;
                if resp.header("x-dcnr-stale").is_some() {
                    tally.stale += 1;
                }
                tally.latencies.push(sent.elapsed().as_micros() as u64);
            }
            Ok(resp) if resp.status == 503 => tally.shed += 1,
            Ok(_) | Err(_) => tally.errors += 1,
        }
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Probes `/healthz` and `/readyz` alternately (~50ms cadence, 1s
/// timeout) until told to stop; returns `(probes, answered_200)`.
fn health_prober(addr: &str, stop: &AtomicBool) -> (usize, usize) {
    let mut probes = 0usize;
    let mut ok = 0usize;
    let targets = ["/healthz", "/readyz"];
    while !stop.load(Ordering::SeqCst) {
        let target = targets[probes % targets.len()];
        probes += 1;
        if let Ok(resp) = client::get(addr, target, Some(Duration::from_secs(1))) {
            if resp.status == 200 {
                ok += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    (probes, ok)
}

/// Writes `BENCH_overload.json`: a two-phase record (calibrate →
/// overload) re-validated with the in-tree JSON parser before landing
/// on disk.
fn write_overload_bench(path: &str, report: &OverloadReport) -> Result<(), DcnrError> {
    let mut out = String::from("{\n  \"phases\": [\n    {\n");
    let _ = writeln!(out, "      \"phase\": \"calibrate\",");
    let _ = writeln!(out, "      \"rate_source\": \"{}\",", report.rate_source);
    let _ = writeln!(
        out,
        "      \"sustainable_rps\": {:.3}",
        report.sustainable_rps
    );
    out.push_str("    },\n    {\n");
    let _ = writeln!(out, "      \"phase\": \"overload\",");
    let _ = writeln!(out, "      \"offered_rps\": {:.3},", report.offered_rps);
    let _ = writeln!(out, "      \"overload\": {:.3},", report.overload);
    let _ = writeln!(out, "      \"arrivals\": {},", report.arrivals);
    let _ = writeln!(out, "      \"dispatched\": {},", report.dispatched);
    let _ = writeln!(out, "      \"client_dropped\": {},", report.client_dropped);
    let _ = writeln!(out, "      \"trace_replayed\": {},", report.trace_replayed);
    let _ = writeln!(
        out,
        "      \"outcomes\": {{ \"good\": {}, \"stale\": {}, \"shed\": {}, \"errors\": {} }},",
        report.good, report.stale, report.shed, report.errors
    );
    let _ = writeln!(
        out,
        "      \"wall_secs\": {:.6},",
        report.wall.as_secs_f64()
    );
    let _ = writeln!(out, "      \"goodput_rps\": {:.3},", report.goodput_rps);
    let _ = writeln!(
        out,
        "      \"goodput_floor_rps\": {:.3},",
        report.goodput_floor * report.sustainable_rps
    );
    let (p50, p95, p99, mean, max) = report.admitted_latency_micros;
    let _ = writeln!(
        out,
        "      \"admitted_latency_micros\": {{ \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"mean\": {mean}, \"max\": {max} }},"
    );
    let _ = writeln!(
        out,
        "      \"p99_cap_micros\": {},",
        report.p99_cap.as_micros()
    );
    let _ = writeln!(
        out,
        "      \"health\": {{ \"probes\": {}, \"ok\": {}, \"floor\": {:.3} }},",
        report.health_probes, report.health_ok, report.health_floor
    );
    let _ = writeln!(
        out,
        "      \"admission_dropped_total\": {},",
        report.admission_drops
    );
    let _ = writeln!(
        out,
        "      \"verdict\": \"{}\"",
        if report.verdict_pass() {
            "pass"
        } else {
            "fail"
        }
    );
    out.push_str("    }\n  ]\n}\n");
    json::parse(&out)
        .map_err(|e| DcnrError::Failed(format!("{path}: bench JSON would be malformed: {e}")))?;
    std::fs::write(path, out).map_err(|e| DcnrError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    Ok(())
}

/// Parses a comma-separated artifact list (`fig15,fig16,table4`).
pub fn parse_artifact_list(list: &str) -> Result<Vec<Experiment>, DcnrError> {
    let mut out = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match Experiment::ALL.into_iter().find(|e| e.key() == name) {
            Some(e) => out.push(e),
            None => {
                let valid: Vec<&str> = Experiment::ALL.iter().map(|e| e.key()).collect();
                return Err(DcnrError::Usage(format!(
                    "unknown artifact {name:?} (valid: {})",
                    valid.join(", ")
                )));
            }
        }
    }
    if out.is_empty() {
        return Err(DcnrError::Usage(format!("no artifacts in {list:?}")));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_covers_every_artifact_and_seed() {
        let opts = LoadgenOptions::default();
        let a = build_mix(&opts).unwrap();
        let b = build_mix(&opts).unwrap();
        assert_eq!(a.len(), opts.artifacts.len() * opts.scenario_seeds);
        assert_eq!(
            a.iter().map(|m| m.target.clone()).collect::<Vec<_>>(),
            b.iter().map(|m| m.target.clone()).collect::<Vec<_>>()
        );
        let seeds: std::collections::BTreeSet<u64> = a.iter().map(|m| m.scenario.seed).collect();
        assert_eq!(
            seeds.len(),
            opts.scenario_seeds,
            "seeds are shared per base"
        );
    }

    #[test]
    fn mix_applies_scenario_flags_through_the_shared_parser() {
        let opts = LoadgenOptions {
            scenario_args: vec![
                "--edges".into(),
                "40".into(),
                "--vendors".into(),
                "16".into(),
            ],
            ..LoadgenOptions::default()
        };
        let mix = build_mix(&opts).unwrap();
        assert!(mix.iter().all(|m| m.scenario.backbone.edges == 40));
        assert!(mix.iter().all(|m| m.target.contains("edges=40")));
        let bad = LoadgenOptions {
            scenario_args: vec!["--bogus".into()],
            ..LoadgenOptions::default()
        };
        assert_eq!(build_mix(&bad).unwrap_err().kind(), "usage");
    }

    #[test]
    fn empty_or_zero_options_are_usage_errors() {
        let opts = LoadgenOptions {
            artifacts: Vec::new(),
            ..LoadgenOptions::default()
        };
        assert_eq!(build_mix(&opts).unwrap_err().kind(), "usage");
        let opts = LoadgenOptions {
            clients: 0,
            ..LoadgenOptions::default()
        };
        assert_eq!(build_mix(&opts).unwrap_err().kind(), "usage");
    }

    #[test]
    fn artifact_lists_parse_and_reject_unknown_keys() {
        let list = parse_artifact_list("fig15, fig16,table4").unwrap();
        assert_eq!(
            list,
            vec![Experiment::Fig15, Experiment::Fig16, Experiment::Table4]
        );
        assert_eq!(parse_artifact_list("fig99").unwrap_err().kind(), "usage");
        assert_eq!(parse_artifact_list(" , ").unwrap_err().kind(), "usage");
    }

    #[test]
    fn bench_files_write_and_append_as_valid_json() {
        let report = LoadReport {
            clients: 2,
            requests_per_client: 5,
            ok: 8,
            retried_ok: 1,
            shed: 1,
            errors: 0,
            corrupt: 0,
            stale: 1,
            retries: RetryCauses {
                shed: 2,
                transport: 1,
                integrity: 0,
                status: 0,
            },
            verify_failures: 0,
            wall: Duration::from_millis(1500),
            throughput_rps: 7.33,
            latency_micros: (100, 200, 300, 120, 400),
            server_workers: 4,
            engine_label: Some("events".into()),
            chaos_injections: 12,
            chaos: true,
            min_success: 0.99,
            rendered: String::new(),
        };
        let dir = std::env::temp_dir().join(format!("dcnr-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json").display().to_string();
        write_bench(&path, false, &report).unwrap();
        write_bench(&path, true, &report).unwrap();
        let parsed = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let runs = parsed.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("clients").unwrap().as_u64().unwrap(), 2);
        assert_eq!(
            runs[0].get("engine").unwrap().as_str().unwrap(),
            "events",
            "--bench-label must land as the engine key"
        );
        assert_eq!(
            runs[1]
                .get("outcomes")
                .unwrap()
                .get("shed")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
        let chaos = runs[0].get("chaos").unwrap();
        assert_eq!(chaos.get("verdict").unwrap().as_str().unwrap(), "fail");
        assert_eq!(
            chaos
                .get("undetected_corruption")
                .unwrap()
                .as_u64()
                .unwrap(),
            0
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn percentiles_are_total_for_empty_and_singleton_samples() {
        assert_eq!(percentile(&[], 50.0), 0, "empty sample must not panic");
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(latency_summary(&[]), (0, 0, 0, 0, 0));
        assert_eq!(percentile(&[42], 0.0), 42);
        assert_eq!(percentile(&[42], 50.0), 42);
        assert_eq!(percentile(&[42], 100.0), 42);
        assert_eq!(latency_summary(&[42]), (42, 42, 42, 42, 42));
        let s = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&s, 50.0), 50, "nearest rank on even samples");
        assert_eq!(percentile(&s, 95.0), 100);
        assert_eq!(percentile(&s, 99.0), 100);
    }

    fn passing_overload_report() -> OverloadReport {
        OverloadReport {
            sustainable_rps: 100.0,
            rate_source: "measured",
            offered_rps: 200.0,
            overload: 2.0,
            arrivals: 1000,
            dispatched: 900,
            client_dropped: 100,
            good: 600,
            stale: 20,
            shed: 250,
            errors: 50,
            goodput_rps: 60.0,
            admitted_latency_micros: (5_000, 40_000, 90_000, 12_000, 150_000),
            health_probes: 40,
            health_ok: 40,
            admission_drops: 250,
            wall: Duration::from_secs(10),
            goodput_floor: 0.5,
            p99_cap: Duration::from_secs(1),
            health_floor: 0.9,
            trace_replayed: false,
            rendered: String::new(),
        }
    }

    #[test]
    fn overload_verdicts_gate_on_goodput_tail_and_health() {
        assert!(passing_overload_report().verdict_pass());
        let mut r = passing_overload_report();
        r.goodput_rps = 49.0; // below 0.5 * 100
        assert!(!r.verdict_pass(), "goodput floor");
        let mut r = passing_overload_report();
        r.admitted_latency_micros.2 = 1_200_000; // p99 over the cap
        assert!(!r.verdict_pass(), "admitted p99 cap");
        let mut r = passing_overload_report();
        r.health_ok = 30; // 30/40 < 0.9
        assert!(!r.verdict_pass(), "health floor");
        let mut r = passing_overload_report();
        r.health_probes = 0;
        r.health_ok = 0;
        assert!(!r.verdict_pass(), "no probes at all is a fail, not 0/0");
    }

    #[test]
    fn overload_bench_records_parse_with_both_phases() {
        let dir = std::env::temp_dir().join(format!("dcnr-overload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json").display().to_string();
        write_overload_bench(&path, &passing_overload_report()).unwrap();
        let parsed = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let phases = parsed.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(
            phases[0].get("phase").unwrap().as_str().unwrap(),
            "calibrate"
        );
        assert_eq!(
            phases[1].get("phase").unwrap().as_str().unwrap(),
            "overload"
        );
        assert_eq!(phases[1].get("verdict").unwrap().as_str().unwrap(), "pass");
        assert_eq!(phases[1].get("arrivals").unwrap().as_u64().unwrap(), 1000);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verdicts_require_the_success_floor_and_zero_undetected_corruption() {
        let mut report = LoadReport {
            clients: 10,
            requests_per_client: 10,
            ok: 95,
            retried_ok: 4,
            shed: 1,
            errors: 0,
            corrupt: 0,
            stale: 0,
            retries: RetryCauses::default(),
            verify_failures: 0,
            wall: Duration::from_secs(1),
            throughput_rps: 100.0,
            latency_micros: (1, 2, 3, 2, 3),
            server_workers: 1,
            engine_label: None,
            chaos_injections: 0,
            chaos: true,
            min_success: 0.99,
            rendered: String::new(),
        };
        assert!((report.eventual_success_rate() - 0.99).abs() < 1e-9);
        assert!(report.verdict_pass());
        // One undetected corruption fails the verdict outright.
        report.verify_failures = 1;
        assert!(!report.verdict_pass());
        report.verify_failures = 0;
        // Dropping below the floor fails it too.
        report.ok = 94;
        report.errors = 1;
        assert!(!report.verdict_pass());
    }
}
