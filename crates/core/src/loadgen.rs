//! The `dcnr loadgen` closed-loop load harness: N client threads drive
//! a running `dcnr serve` with a seeded artifact/scenario request mix,
//! then report throughput and latency percentiles (and optionally write
//! a `BENCH_serve.json` record).
//!
//! Closed loop means each client issues its next request only after the
//! previous response completes, so offered load adapts to the server
//! instead of timing out into meaningless numbers. The request mix is
//! deterministic: client `i` draws from `stream_rng(mix_seed,
//! "loadgen.client.{i}")`, and the candidate scenarios are minted with
//! the same [`seed_sequence`] discipline the sweep runner uses.
//!
//! With `--verify`, every response body is compared byte-for-byte
//! against [`crate::serve::render_artifact_text`] computed locally —
//! the load test doubles as the cache-coherence test.

use crate::error::DcnrError;
use crate::experiments::Experiment;
use crate::json;
use crate::scenario::Scenario;
use crate::serve;
use dcnr_server::client;
use dcnr_sim::{seed_sequence, stream_rng};
use rand::Rng;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything one `dcnr loadgen` run needs.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Seed for the per-client request mix.
    pub mix_seed: u64,
    /// How many distinct scenario seeds per artifact to spread requests
    /// across (1 = everything hits the same cache entry).
    pub scenario_seeds: usize,
    /// The artifacts in the mix.
    pub artifacts: Vec<Experiment>,
    /// Extra scenario flags (`--scale 0.25 ...`) applied to every
    /// artifact's CLI-default base before minting seeds — the same
    /// parser the `serve`/`artifact` subcommands use.
    pub scenario_args: Vec<String>,
    /// Compare every body against a locally rendered expectation.
    pub verify: bool,
    /// Write (or append) a bench record here.
    pub bench_json: Option<String>,
    /// Append to an existing bench file instead of overwriting.
    pub bench_append: bool,
    /// Per-request client timeout.
    pub timeout: Duration,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            clients: 4,
            requests: 25,
            mix_seed: 0x10AD,
            scenario_seeds: 2,
            artifacts: vec![Experiment::Fig15, Experiment::Fig16, Experiment::Table4],
            scenario_args: Vec::new(),
            verify: false,
            bench_json: None,
            bench_append: false,
            timeout: Duration::from_secs(30),
        }
    }
}

/// One entry in the request mix: a target URL plus what it renders.
#[derive(Debug, Clone)]
struct MixEntry {
    experiment: Experiment,
    scenario: Scenario,
    target: String,
}

/// Aggregated result of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests attempted per client.
    pub requests_per_client: usize,
    /// 200 responses.
    pub ok: usize,
    /// 503 responses (shed by the server's backpressure).
    pub shed: usize,
    /// Transport or unexpected-status failures.
    pub errors: usize,
    /// Byte-for-byte mismatches against the local render (only counted
    /// when `verify` was on).
    pub verify_failures: usize,
    /// Wall-clock for the whole run.
    pub wall: Duration,
    /// Completed (200 or 503) requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles over successful responses, in microseconds:
    /// (p50, p95, p99, mean, max).
    pub latency_micros: (u64, u64, u64, u64, u64),
    /// The `dcnr_server_workers` gauge scraped from `/metrics` after
    /// the run (0 when the scrape failed).
    pub server_workers: u64,
    /// Human-readable report.
    pub rendered: String,
}

/// Builds the deterministic request mix: every artifact crossed with
/// `scenario_seeds` derived seeds, each a `with_seed` rebind of that
/// artifact's flag-adjusted CLI-default base.
fn build_mix(opts: &LoadgenOptions) -> Result<Vec<MixEntry>, DcnrError> {
    if opts.artifacts.is_empty() {
        return Err(DcnrError::Usage("loadgen: artifact list is empty".into()));
    }
    if opts.clients == 0 || opts.requests == 0 || opts.scenario_seeds == 0 {
        return Err(DcnrError::Usage(
            "loadgen: --clients, --requests, and --scenario-seeds must be positive".into(),
        ));
    }
    // One flag-adjusted base per study kind, parsed exactly once.
    let mut bases: HashMap<&'static str, Scenario> = HashMap::new();
    let mut mix = Vec::new();
    for &e in &opts.artifacts {
        let kind = crate::artifacts::base_kind(e);
        let base = match bases.entry(kind.name()) {
            std::collections::hash_map::Entry::Occupied(o) => *o.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let mut scan = crate::cli::ArgScanner::new(opts.scenario_args.clone());
                let s = crate::cli::apply_scenario_flags(&mut scan, Scenario::cli_default(kind))?;
                scan.finish()
                    .map_err(|msg| DcnrError::Usage(format!("loadgen: {msg}")))?;
                s.validate()?;
                *v.insert(s)
            }
        };
        let seeds = seed_sequence(
            base.seed,
            "loadgen.scenario",
            u32::try_from(opts.scenario_seeds)
                .map_err(|_| DcnrError::Usage("loadgen: --scenario-seeds too large".into()))?,
        );
        for seed in seeds {
            let scenario = base.with_seed(seed);
            let target = format!(
                "/artifacts/{}?{}",
                e.key(),
                serve::scenario_query(&scenario)
            );
            mix.push(MixEntry {
                experiment: e,
                scenario,
                target,
            });
        }
    }
    Ok(mix)
}

/// Runs the closed loop against `opts.addr` and returns the aggregate.
///
/// Fails with [`DcnrError::Failed`] when no request succeeds (server
/// down or every response shed) or when `verify` finds any body that
/// differs from the local render.
pub fn run(opts: &LoadgenOptions) -> Result<LoadReport, DcnrError> {
    let mix = Arc::new(build_mix(opts)?);
    // Local expectations, rendered serially before the clock starts.
    let expected: Arc<Vec<Option<String>>> = Arc::new(if opts.verify {
        mix.iter()
            .map(|m| serve::render_artifact_text(&m.scenario, m.experiment).map(Some))
            .collect::<Result<_, _>>()?
    } else {
        mix.iter().map(|_| None).collect()
    });

    let started = Instant::now();
    let mut handles = Vec::new();
    for i in 0..opts.clients {
        let mix = mix.clone();
        let expected = expected.clone();
        let addr = opts.addr.clone();
        let timeout = opts.timeout;
        let requests = opts.requests;
        let mix_seed = opts.mix_seed;
        handles.push(
            std::thread::Builder::new()
                .name(format!("dcnr-loadgen-{i}"))
                .spawn(move || {
                    let mut rng = stream_rng(mix_seed, &format!("loadgen.client.{i}"));
                    let mut ok = 0usize;
                    let mut shed = 0usize;
                    let mut errors = 0usize;
                    let mut verify_failures = 0usize;
                    let mut latencies = Vec::with_capacity(requests);
                    for _ in 0..requests {
                        let pick = rng.gen_range(0..mix.len());
                        let entry = &mix[pick];
                        let t0 = Instant::now();
                        match client::get(&addr, &entry.target, Some(timeout)) {
                            Ok(resp) if resp.status == 200 => {
                                latencies.push(t0.elapsed().as_micros() as u64);
                                ok += 1;
                                if let Some(want) = &expected[pick] {
                                    if resp.body != want.as_bytes() {
                                        verify_failures += 1;
                                    }
                                }
                            }
                            Ok(resp) if resp.status == 503 => shed += 1,
                            Ok(_) | Err(_) => errors += 1,
                        }
                    }
                    (ok, shed, errors, verify_failures, latencies)
                })
                .map_err(|e| DcnrError::Failed(format!("spawn loadgen client: {e}")))?,
        );
    }

    let mut ok = 0;
    let mut shed = 0;
    let mut errors = 0;
    let mut verify_failures = 0;
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        let (o, s, e, v, l) = handle
            .join()
            .map_err(|_| DcnrError::Failed("loadgen client panicked".into()))?;
        ok += o;
        shed += s;
        errors += e;
        verify_failures += v;
        latencies.extend(l);
    }
    let wall = started.elapsed();

    if ok == 0 {
        return Err(DcnrError::Failed(format!(
            "loadgen: no successful responses from {} ({} shed, {} errors) — is the server up?",
            opts.addr, shed, errors
        )));
    }
    if verify_failures > 0 {
        return Err(DcnrError::Failed(format!(
            "loadgen: {verify_failures} response bodies differed from the local render"
        )));
    }

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        // Nearest-rank on the sorted sample.
        let rank = ((p / 100.0) * latencies.len() as f64).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    };
    let mean = latencies.iter().sum::<u64>() / latencies.len() as u64;
    let max = *latencies.last().unwrap_or(&0);
    let latency_micros = (pct(50.0), pct(95.0), pct(99.0), mean, max);
    let completed = ok + shed;
    let throughput_rps = completed as f64 / wall.as_secs_f64().max(1e-9);
    let server_workers = scrape_workers(&opts.addr, opts.timeout);

    let mut rendered = String::new();
    let _ = writeln!(rendered, "loadgen against http://{}", opts.addr);
    let _ = writeln!(
        rendered,
        "  clients {}  requests/client {}  mix entries {}  verify {}",
        opts.clients,
        opts.requests,
        mix.len(),
        if opts.verify { "on" } else { "off" }
    );
    let _ = writeln!(
        rendered,
        "  ok {ok}  shed {shed}  errors {errors}  wall {:.3}s  throughput {throughput_rps:.1} req/s",
        wall.as_secs_f64()
    );
    let _ = writeln!(
        rendered,
        "  latency micros  p50 {}  p95 {}  p99 {}  mean {}  max {}",
        latency_micros.0, latency_micros.1, latency_micros.2, latency_micros.3, latency_micros.4
    );

    let report = LoadReport {
        clients: opts.clients,
        requests_per_client: opts.requests,
        ok,
        shed,
        errors,
        verify_failures,
        wall,
        throughput_rps,
        latency_micros,
        server_workers,
        rendered,
    };
    if let Some(path) = &opts.bench_json {
        write_bench(path, opts.bench_append, &report)?;
    }
    Ok(report)
}

/// Scrapes the `dcnr_server_workers` gauge off `/metrics` so the bench
/// record states what it actually measured against. Best-effort: 0 when
/// the scrape fails.
fn scrape_workers(addr: &str, timeout: Duration) -> u64 {
    let Ok(resp) = client::get(addr, "/metrics", Some(timeout)) else {
        return 0;
    };
    let body = String::from_utf8_lossy(&resp.body);
    body.lines()
        .find_map(|line| line.strip_prefix("dcnr_server_workers "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(0)
}

/// One bench run as a JSON object literal.
fn bench_record(report: &LoadReport) -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let oversubscribed = report.clients + report.server_workers as usize > cpus;
    let mut out = String::from("    {\n");
    let _ = writeln!(out, "      \"clients\": {},", report.clients);
    let _ = writeln!(
        out,
        "      \"requests_per_client\": {},",
        report.requests_per_client
    );
    let _ = writeln!(out, "      \"server_workers\": {},", report.server_workers);
    let _ = writeln!(out, "      \"host_cpus\": {cpus},");
    let _ = writeln!(
        out,
        "      \"wall_secs\": {:.6},",
        report.wall.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "      \"throughput_rps\": {:.3},",
        report.throughput_rps
    );
    let (p50, p95, p99, mean, max) = report.latency_micros;
    let _ = writeln!(
        out,
        "      \"latency_micros\": {{ \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"mean\": {mean}, \"max\": {max} }},"
    );
    let _ = writeln!(
        out,
        "      \"status\": {{ \"ok\": {}, \"shed\": {}, \"errors\": {} }},",
        report.ok, report.shed, report.errors
    );
    let _ = writeln!(out, "      \"verified\": {},", report.verify_failures == 0);
    let note = if oversubscribed {
        "clients + server workers exceed host CPUs; latency includes scheduling contention"
    } else {
        "clients + server workers fit within host CPUs"
    };
    let _ = writeln!(out, "      \"note\": \"{note}\"");
    out.push_str("    }");
    out
}

/// Writes (or appends to) the `BENCH_serve.json` run list and
/// re-validates the result with the in-tree JSON parser so a malformed
/// splice can never land on disk unnoticed.
fn write_bench(path: &str, append: bool, report: &LoadReport) -> Result<(), DcnrError> {
    let record = bench_record(report);
    let io_err = |e: std::io::Error| DcnrError::Io {
        path: path.to_string(),
        message: e.to_string(),
    };
    let text = if append {
        let existing = std::fs::read_to_string(path).map_err(io_err)?;
        let trimmed = existing.trim_end();
        // Splice before the closing "]\n}" of {"runs": [ ... ]}.
        let Some(idx) = trimmed.rfind(']') else {
            return Err(DcnrError::Failed(format!(
                "{path}: no run list to append to"
            )));
        };
        let (head, tail) = trimmed.split_at(idx);
        let head = head.trim_end();
        let separator = if head.ends_with('[') { "\n" } else { ",\n" };
        format!("{head}{separator}{record}\n  {tail}\n")
    } else {
        format!("{{\n  \"runs\": [\n{record}\n  ]\n}}\n")
    };
    json::parse(&text)
        .map_err(|e| DcnrError::Failed(format!("{path}: bench JSON would be malformed: {e}")))?;
    std::fs::write(path, text).map_err(io_err)?;
    Ok(())
}

/// Parses a comma-separated artifact list (`fig15,fig16,table4`).
pub fn parse_artifact_list(list: &str) -> Result<Vec<Experiment>, DcnrError> {
    let mut out = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match Experiment::ALL.into_iter().find(|e| e.key() == name) {
            Some(e) => out.push(e),
            None => {
                let valid: Vec<&str> = Experiment::ALL.iter().map(|e| e.key()).collect();
                return Err(DcnrError::Usage(format!(
                    "unknown artifact {name:?} (valid: {})",
                    valid.join(", ")
                )));
            }
        }
    }
    if out.is_empty() {
        return Err(DcnrError::Usage(format!("no artifacts in {list:?}")));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_covers_every_artifact_and_seed() {
        let opts = LoadgenOptions::default();
        let a = build_mix(&opts).unwrap();
        let b = build_mix(&opts).unwrap();
        assert_eq!(a.len(), opts.artifacts.len() * opts.scenario_seeds);
        assert_eq!(
            a.iter().map(|m| m.target.clone()).collect::<Vec<_>>(),
            b.iter().map(|m| m.target.clone()).collect::<Vec<_>>()
        );
        let seeds: std::collections::BTreeSet<u64> = a.iter().map(|m| m.scenario.seed).collect();
        assert_eq!(
            seeds.len(),
            opts.scenario_seeds,
            "seeds are shared per base"
        );
    }

    #[test]
    fn mix_applies_scenario_flags_through_the_shared_parser() {
        let opts = LoadgenOptions {
            scenario_args: vec![
                "--edges".into(),
                "40".into(),
                "--vendors".into(),
                "16".into(),
            ],
            ..LoadgenOptions::default()
        };
        let mix = build_mix(&opts).unwrap();
        assert!(mix.iter().all(|m| m.scenario.backbone.edges == 40));
        assert!(mix.iter().all(|m| m.target.contains("edges=40")));
        let bad = LoadgenOptions {
            scenario_args: vec!["--bogus".into()],
            ..LoadgenOptions::default()
        };
        assert_eq!(build_mix(&bad).unwrap_err().kind(), "usage");
    }

    #[test]
    fn empty_or_zero_options_are_usage_errors() {
        let opts = LoadgenOptions {
            artifacts: Vec::new(),
            ..LoadgenOptions::default()
        };
        assert_eq!(build_mix(&opts).unwrap_err().kind(), "usage");
        let opts = LoadgenOptions {
            clients: 0,
            ..LoadgenOptions::default()
        };
        assert_eq!(build_mix(&opts).unwrap_err().kind(), "usage");
    }

    #[test]
    fn artifact_lists_parse_and_reject_unknown_keys() {
        let list = parse_artifact_list("fig15, fig16,table4").unwrap();
        assert_eq!(
            list,
            vec![Experiment::Fig15, Experiment::Fig16, Experiment::Table4]
        );
        assert_eq!(parse_artifact_list("fig99").unwrap_err().kind(), "usage");
        assert_eq!(parse_artifact_list(" , ").unwrap_err().kind(), "usage");
    }

    #[test]
    fn bench_files_write_and_append_as_valid_json() {
        let report = LoadReport {
            clients: 2,
            requests_per_client: 5,
            ok: 10,
            shed: 1,
            errors: 0,
            verify_failures: 0,
            wall: Duration::from_millis(1500),
            throughput_rps: 7.33,
            latency_micros: (100, 200, 300, 120, 400),
            server_workers: 4,
            rendered: String::new(),
        };
        let dir = std::env::temp_dir().join(format!("dcnr-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json").display().to_string();
        write_bench(&path, false, &report).unwrap();
        write_bench(&path, true, &report).unwrap();
        let parsed = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let runs = parsed.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("clients").unwrap().as_u64().unwrap(), 2);
        assert_eq!(
            runs[1]
                .get("status")
                .unwrap()
                .get("shed")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
