//! # dcnr-core
//!
//! The study façade for the `dcnr` reproduction of *"A Large Scale Study
//! of Data Center Network Reliability"* (Meza, Xu, Veeraraghavan, Mutlu —
//! IMC 2018).
//!
//! This crate wires the substrates together into the paper's two
//! studies and exposes one runner per published table and figure:
//!
//! * [`intra`] — the seven-year intra-datacenter study (§5): issue
//!   generation → automated remediation triage → SEV creation → the
//!   SQL-shaped analysis behind Tables 1–2 and Figures 2–14.
//! * [`inter`] — the eighteen-month backbone study (§6): fiber
//!   simulation → vendor e-mail parsing → ticket database → MTBF/MTTR
//!   distributions, exponential fits, Table 4, and conditional-risk
//!   planning (Figures 15–18).
//! * [`experiments`] — the per-experiment index: every table/figure as
//!   a named experiment with its measured result and the paper's
//!   reported value, powering EXPERIMENTS.md and the bench harness.
//! * [`scenario`] — the scenario engine: a [`Scenario`] (study kind +
//!   scale + seed + hazard/backbone/chaos knobs) lowers to a
//!   [`RunPlan`], and a [`RunContext`] executes each required study
//!   exactly once, caching its output for every artifact.
//! * [`artifacts`] — the artifact registry: one descriptor per paper
//!   table/figure (id, required study, paper baseline, render fn), all
//!   pulling from the shared [`RunContext`].
//! * [`routes`] — the forwarding-state study behind the `routes.*`
//!   artifacts: per-device ECMP path sets with incremental
//!   invalidation, capacity loss derived from surviving path fractions,
//!   the emergent severity mix checked against Table 3's 82/13/5, and
//!   a workload-degradation curve (cf. arXiv:1808.06115).
//! * [`survivability`] — the topology-zoo study behind the `surv.*`
//!   artifacts: element-class survivability curves across every
//!   [`dcnr_topology::zoo`] member (cf. arXiv:1510.02735) and seeded
//!   Monte-Carlo fleet-lifespan replays (cf. arXiv:1401.7528).
//! * [`sweep`] — the multi-seed sweep runner: N derived-seed replicas
//!   on a supervised worker pool, folded into cross-seed confidence
//!   bands ([`dcnr_stats::aggregate`]); byte-identical output for any
//!   worker count.
//! * [`supervisor`] — the sweep supervision layer: panic-isolated
//!   replica attempts, watchdog deadlines, bounded retry with fresh
//!   derived seeds, quarantine, and fault injection for testing the
//!   supervisor itself.
//! * [`checkpoint`] — per-replica JSON result shards plus a sweep
//!   manifest, the substrate behind `dcnr sweep --checkpoint` /
//!   `--resume` and cross-run replica caching.
//! * [`error`] — the [`DcnrError`] taxonomy every fallible layer of the
//!   engine reports through (config, usage, I/O, checkpoint, panic,
//!   deadline, failed-acceptance).
//! * [`cli`] — the shared flag scanner behind every `dcnr` subcommand.
//! * [`report`] — plain-text rendering of tables and figure series in
//!   the same rows/columns the paper prints.
//! * [`telemetry_io`] — JSON and Prometheus-text serialization of
//!   `dcnr-telemetry` snapshots, behind the `--metrics` / `--trace`
//!   flags.
//! * [`profile`] — the `dcnr profile` phase-breakdown table and
//!   `BENCH_profile.json` writer.
//! * [`serve`] — the `dcnr serve` report server: artifact rendering
//!   over HTTP through an LRU result cache, live Prometheus metrics,
//!   and checkpoint-directory sweep reports, on the zero-dependency
//!   `dcnr-server` substrate (bounded accept queue, 503 shedding,
//!   graceful drain).
//! * [`loadgen`] — the `dcnr loadgen` closed-loop load harness: seeded
//!   request mixes, byte-for-byte response verification, and
//!   `BENCH_serve.json` records; `--chaos` turns it into a resilience
//!   harness with a pass/fail verdict and `BENCH_resilience.json`;
//!   `--open-loop` turns it into the overload harness (seeded
//!   open-loop arrivals at a multiple of the sustainable rate, goodput
//!   / admitted-p99 / health verdict, `BENCH_overload.json`).
//! * [`resilience`] — client-side retries: deterministic capped
//!   jittered backoff, per-request deadlines, `Retry-After` honoring,
//!   and outcome classification (ok / retried-ok / shed / gave-up /
//!   corrupt) over the `dcnr-server` client.
//! * [`traffic`] — the seeded open-loop traffic model: Poisson
//!   interarrivals with burst/diurnal modulation (Lewis–Shedler
//!   thinning), per-arrival request-mix draws on an independent seed
//!   stream, and deterministic trace emit/replay; the demand side of
//!   `dcnr loadgen --open-loop`.
//!
//! ## Quickstart
//!
//! ```
//! use dcnr_core::{IntraDcStudy, StudyConfig};
//!
//! // A small, fast configuration (half fleet scale).
//! let study = IntraDcStudy::run(StudyConfig { scale: 0.5, seed: 1, ..Default::default() });
//! let t2 = study.table2_root_causes();
//! // Maintenance should be the largest *determined* root cause (§5.1).
//! let m = t2.get(&dcnr_faults::RootCause::Maintenance).copied().unwrap_or(0.0);
//! assert!(m > 0.10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod checkpoint;
pub mod cli;
pub mod error;
pub mod experiments;
pub mod inter;
pub mod intra;
pub mod json;
pub mod loadgen;
pub mod profile;
pub mod report;
pub mod resilience;
pub mod routes;
pub mod scenario;
pub mod serve;
pub mod supervisor;
pub mod survivability;
pub mod sweep;
pub mod telemetry_io;
pub mod traffic;

pub use artifacts::Artifact;
pub use checkpoint::{Manifest, ReplicaRecord};
pub use cli::{apply_scenario_flags, parse_sweep_args, ArgScanner, SweepArgs};
pub use error::DcnrError;
pub use experiments::{Comparison, Experiment, ExperimentOutcome};
pub use inter::InterDcStudy;
pub use intra::{IntraDcStudy, StudyConfig};
pub use loadgen::{LoadReport, LoadgenOptions, OpenLoopOptions, OverloadReport};
pub use profile::{phase_rows, render_profile_json, render_profile_table, PhaseRow};
pub use resilience::{resilient_get, FetchResult, Outcome, RetryCauses, RetryPolicy};
pub use routes::{RoutesConfig, RoutesStudy};
pub use scenario::{RunContext, RunPlan, Scenario, ScenarioKind, ScenarioOutcome, StudyKind};
pub use serve::{RunningServer, ServeOptions};
pub use supervisor::{
    FaultMode, FaultPlan, FaultSpec, ReplicaOutcome, ReplicaStatus, SupervisorConfig, FAULT_ENV,
};
pub use survivability::{SurvivabilityConfig, SurvivabilityStudy};
pub use sweep::{run_supervised, run_sweep, SweepConfig, SweepOutcome, SweepRow};
pub use traffic::{Arrival, BurstProfile, DiurnalProfile, TrafficConfig};

// Re-export the substrate crates under one roof so downstream users and
// the examples need a single dependency.
pub use dcnr_backbone as backbone;
pub use dcnr_chaos as chaos;
pub use dcnr_faults as faults;
pub use dcnr_remediation as remediation;
pub use dcnr_service as service;
pub use dcnr_sev as sev;
pub use dcnr_sim as sim;
pub use dcnr_stats as stats;
pub use dcnr_telemetry as telemetry;
pub use dcnr_topology as topology;
