//! Client-side resilience for the serve path: per-request deadline
//! budgets, capped jittered exponential backoff, `Retry-After`-aware
//! retries, and outcome classification.
//!
//! `dcnr loadgen` and `dcnr fetch` drive the server through
//! [`resilient_get`], which wraps the raw `dcnr_server::client` GET in a
//! retry loop. Every terminal result is classified into exactly one
//! [`Outcome`] so the harness can distinguish first-try successes from
//! eventual successes, shed-then-starved requests from transport
//! failures, and — critically — *detected* corruption from silent
//! corruption (the latter must never occur; the loadgen harness counts
//! it separately by re-verifying bodies against expected content).
//!
//! Backoff is deterministic per `(seed, attempt)`: the jitter for
//! attempt `i` comes from
//! [`derive_indexed_seed`]`(seed, "client.backoff", i)`, the same
//! stream-separation idiom the simulation layers use. The delay for
//! attempt `i` (the wait *after* failure `i`) is drawn from
//! `[envelope/2, envelope]` where `envelope = min(cap, base * 2^i)` —
//! "equal jitter", so retries spread out without ever collapsing to
//! zero delay.

use dcnr_server::client::{self, is_integrity_error, ClientResponse};
use dcnr_sim::rng::derive_indexed_seed;
use std::time::{Duration, Instant};

/// Retry/deadline knobs for [`resilient_get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (total attempts =
    /// `retries + 1`).
    pub retries: u32,
    /// Backoff envelope for attempt 0; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on the backoff envelope.
    pub backoff_cap: Duration,
    /// Total wall-clock budget for the request including all retries
    /// and backoff waits. When the budget is exhausted the request
    /// fails with whatever cause the last attempt produced.
    pub deadline: Duration,
    /// Per-attempt socket timeout (connect, read, and write each),
    /// additionally clamped to the remaining deadline.
    pub attempt_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            deadline: Duration::from_secs(10),
            attempt_timeout: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The deterministic wait after failed attempt `attempt` (0-based)
    /// for the stream identified by `seed`.
    ///
    /// Equal-jitter exponential backoff: the envelope is
    /// `min(cap, base * 2^attempt)` and the delay is drawn uniformly
    /// from `[envelope/2, envelope]` using
    /// `derive_indexed_seed(seed, "client.backoff", attempt)` — so the
    /// full schedule is a pure function of `(policy, seed)`.
    pub fn backoff(&self, seed: u64, attempt: u32) -> Duration {
        let env = self.envelope(attempt).as_micros() as u64;
        let half = env / 2;
        let span = env - half;
        let draw = derive_indexed_seed(seed, "client.backoff", u64::from(attempt));
        Duration::from_micros(half + draw % (span + 1))
    }

    /// The backoff envelope (maximum delay) for attempt `attempt`:
    /// `min(cap, base * 2^attempt)`, saturating.
    pub fn envelope(&self, attempt: u32) -> Duration {
        let base = self.backoff_base.as_micros() as u64;
        let scaled = match attempt {
            0..=62 => base.saturating_mul(1u64 << attempt),
            _ => u64::MAX,
        };
        Duration::from_micros(scaled.min(self.backoff_cap.as_micros() as u64))
    }
}

/// Terminal classification of one resilient request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Succeeded on the first attempt.
    Ok,
    /// Succeeded after one or more retries.
    RetriedOk,
    /// Exhausted its budget with the server still shedding (last
    /// failure was a `503`).
    Shed,
    /// Exhausted its budget on transport or server errors, or hit a
    /// terminal `4xx`.
    GaveUp,
    /// Exhausted its budget with the last failure a *detected*
    /// integrity violation (truncated or corrupted body).
    Corrupt,
}

impl Outcome {
    /// Stable snake_case label (metric/JSON key).
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::RetriedOk => "retried_ok",
            Outcome::Shed => "shed",
            Outcome::GaveUp => "gave_up",
            Outcome::Corrupt => "corrupt",
        }
    }

    /// Whether the request eventually produced a good response.
    pub fn is_success(self) -> bool {
        matches!(self, Outcome::Ok | Outcome::RetriedOk)
    }
}

/// Why an individual attempt failed (retry-cause classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// `503 Service Unavailable` — the server shed the request.
    Shed,
    /// Connect/read/write error or an unparseable response.
    Transport,
    /// Detected body damage: truncation or checksum mismatch.
    Integrity,
    /// A non-503 `5xx` status.
    Status,
}

impl Cause {
    /// Stable snake_case label (metric/JSON key).
    pub fn label(self) -> &'static str {
        match self {
            Cause::Shed => "shed",
            Cause::Transport => "transport",
            Cause::Integrity => "integrity",
            Cause::Status => "status",
        }
    }
}

/// Per-cause retry counts accumulated over one or many requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryCauses {
    /// Retries after a `503` shed.
    pub shed: u64,
    /// Retries after transport errors.
    pub transport: u64,
    /// Retries after detected truncation/corruption.
    pub integrity: u64,
    /// Retries after non-503 `5xx` statuses.
    pub status: u64,
}

impl RetryCauses {
    fn bump(&mut self, cause: Cause) {
        match cause {
            Cause::Shed => self.shed += 1,
            Cause::Transport => self.transport += 1,
            Cause::Integrity => self.integrity += 1,
            Cause::Status => self.status += 1,
        }
    }

    /// `(label, count)` rows in a stable order.
    pub fn rows(&self) -> [(&'static str, u64); 4] {
        [
            ("shed", self.shed),
            ("transport", self.transport),
            ("integrity", self.integrity),
            ("status", self.status),
        ]
    }

    /// Total retries across all causes.
    pub fn total(&self) -> u64 {
        self.shed + self.transport + self.integrity + self.status
    }

    /// Accumulates another tally into this one.
    pub fn merge(&mut self, other: &RetryCauses) {
        self.shed += other.shed;
        self.transport += other.transport;
        self.integrity += other.integrity;
        self.status += other.status;
    }
}

/// The result of one [`resilient_get`].
#[derive(Debug)]
pub struct FetchResult {
    /// Terminal classification.
    pub outcome: Outcome,
    /// Attempts made (at least 1).
    pub attempts: u32,
    /// Per-cause retry tally (attempts beyond the first, by why the
    /// previous attempt failed).
    pub retries: RetryCauses,
    /// Final HTTP status, when the last attempt got one.
    pub status: Option<u16>,
    /// The successful response (present iff `outcome.is_success()`).
    pub response: Option<ClientResponse>,
    /// Whether the successful response was served stale
    /// (`X-Dcnr-Stale` header present).
    pub stale: bool,
    /// The last error message, when the request did not succeed.
    pub error: Option<String>,
    /// Wall-clock time spent including backoff waits.
    pub elapsed: Duration,
}

/// Classifies a single attempt's failure.
fn classify_error(e: &std::io::Error) -> Cause {
    if is_integrity_error(e) {
        Cause::Integrity
    } else {
        Cause::Transport
    }
}

/// `Retry-After: N` (seconds) from a 503, as a duration.
fn retry_after(resp: &ClientResponse) -> Option<Duration> {
    resp.header("retry-after")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_secs)
}

/// Issues `GET {target}` against `addr` with retries under `policy`.
///
/// The retry loop:
/// * `200` succeeds; anything else classifies a cause.
/// * `503` is retryable and honors the server's `Retry-After` (clamped
///   to the remaining deadline) instead of the backoff schedule.
/// * other `5xx` and all transport/integrity errors retry on the
///   deterministic backoff schedule for `seed`.
/// * `4xx` (except 408/429, which the server never emits) is terminal
///   — the request is wrong, retrying cannot help.
///
/// The loop stops when an attempt succeeds, the retry budget is spent,
/// or the next wait would overrun the deadline.
pub fn resilient_get(addr: &str, target: &str, policy: &RetryPolicy, seed: u64) -> FetchResult {
    let start = Instant::now();
    let deadline = start + policy.deadline;
    let mut retries = RetryCauses::default();
    let mut attempts = 0u32;
    let mut last_cause = Cause::Transport;
    let mut last_status = None;
    let mut last_error = None;

    loop {
        let now = Instant::now();
        let remaining = deadline.saturating_duration_since(now);
        if remaining.is_zero() {
            break;
        }
        let timeout = policy
            .attempt_timeout
            .min(remaining)
            .max(Duration::from_millis(1));
        let attempt = attempts;
        attempts += 1;
        let (cause, wait) = match client::get(addr, target, Some(timeout)) {
            Ok(resp) if resp.status == 200 => {
                let stale = resp.header("x-dcnr-stale").is_some();
                return FetchResult {
                    outcome: if attempt == 0 {
                        Outcome::Ok
                    } else {
                        Outcome::RetriedOk
                    },
                    attempts,
                    retries,
                    status: Some(200),
                    stale,
                    response: Some(resp),
                    error: None,
                    elapsed: start.elapsed(),
                };
            }
            Ok(resp) if resp.status == 503 => {
                last_status = Some(503);
                last_error = Some("503 Service Unavailable (shed)".to_string());
                (Cause::Shed, retry_after(&resp))
            }
            Ok(resp) if resp.status >= 500 => {
                last_status = Some(resp.status);
                last_error = Some(format!("server error {}", resp.status));
                (Cause::Status, None)
            }
            Ok(resp) => {
                // 4xx: terminal — a malformed request stays malformed.
                return FetchResult {
                    outcome: Outcome::GaveUp,
                    attempts,
                    retries,
                    status: Some(resp.status),
                    stale: false,
                    response: None,
                    error: Some(format!("terminal status {}", resp.status)),
                    elapsed: start.elapsed(),
                };
            }
            Err(e) => {
                last_status = None;
                last_error = Some(e.to_string());
                (classify_error(&e), None)
            }
        };
        last_cause = cause;
        if attempts > policy.retries {
            break;
        }
        retries.bump(cause);
        let wait = wait
            .unwrap_or_else(|| policy.backoff(seed, attempt))
            .min(deadline.saturating_duration_since(Instant::now()));
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }

    FetchResult {
        outcome: match last_cause {
            Cause::Shed => Outcome::Shed,
            Cause::Integrity => Outcome::Corrupt,
            Cause::Transport | Cause::Status => Outcome::GaveUp,
        },
        attempts,
        retries,
        status: last_status,
        stale: false,
        response: None,
        error: last_error,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let p = RetryPolicy::default();
        for attempt in 0..10 {
            let a = p.backoff(9, attempt);
            let b = p.backoff(9, attempt);
            assert_eq!(a, b, "attempt {attempt} not deterministic");
            let env = p.envelope(attempt);
            assert!(env <= p.backoff_cap);
            assert!(a <= env, "attempt {attempt}: {a:?} > envelope {env:?}");
            assert!(a >= env / 2, "attempt {attempt}: {a:?} < half envelope");
        }
        // Envelopes double until the cap: 50ms, 100ms, ..., then clamp.
        assert_eq!(p.envelope(0), Duration::from_millis(50));
        assert_eq!(p.envelope(1), Duration::from_millis(100));
        assert_eq!(p.envelope(10), p.backoff_cap);
        assert_eq!(p.envelope(200), p.backoff_cap);
        // Different seeds jitter differently somewhere in the schedule.
        assert!((0..10).any(|i| p.backoff(1, i) != p.backoff(2, i)));
    }

    #[test]
    fn outcome_and_cause_labels_are_stable() {
        assert_eq!(Outcome::Ok.label(), "ok");
        assert_eq!(Outcome::RetriedOk.label(), "retried_ok");
        assert_eq!(Outcome::Shed.label(), "shed");
        assert_eq!(Outcome::GaveUp.label(), "gave_up");
        assert_eq!(Outcome::Corrupt.label(), "corrupt");
        assert!(Outcome::Ok.is_success() && Outcome::RetriedOk.is_success());
        assert!(!Outcome::Shed.is_success());
        let mut c = RetryCauses::default();
        c.bump(Cause::Shed);
        c.bump(Cause::Integrity);
        c.bump(Cause::Integrity);
        assert_eq!(c.total(), 3);
        assert_eq!(c.rows()[2], ("integrity", 2));
    }

    /// A one-shot TCP fixture: each accepted connection gets the next
    /// scripted raw response (connection closed after writing).
    fn scripted_server(responses: Vec<Vec<u8>>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for resp in responses {
                let Ok((mut conn, _)) = listener.accept() else {
                    return;
                };
                let mut buf = [0u8; 1024];
                let _ = conn.read(&mut buf);
                let _ = conn.write_all(&resp);
            }
        });
        addr
    }

    fn ok_response(body: &[u8]) -> Vec<u8> {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nX-Dcnr-Checksum: {:016x}\r\n\r\n",
            body.len(),
            dcnr_server::body_checksum(body)
        )
        .into_bytes()
        .into_iter()
        .chain(body.iter().copied())
        .collect()
    }

    fn quick_policy() -> RetryPolicy {
        RetryPolicy {
            retries: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            deadline: Duration::from_secs(5),
            attempt_timeout: Duration::from_secs(1),
        }
    }

    #[test]
    fn first_try_success_is_ok() {
        let addr = scripted_server(vec![ok_response(b"hello")]);
        let r = resilient_get(&addr, "/", &quick_policy(), 7);
        assert_eq!(r.outcome, Outcome::Ok);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.retries.total(), 0);
        assert_eq!(r.response.unwrap().body, b"hello");
    }

    #[test]
    fn shed_then_success_is_retried_ok_and_honors_retry_after() {
        let shed =
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 0\r\n\r\n"
                .to_vec();
        let addr = scripted_server(vec![shed, ok_response(b"ok")]);
        let r = resilient_get(&addr, "/", &quick_policy(), 7);
        assert_eq!(r.outcome, Outcome::RetriedOk);
        assert_eq!(r.attempts, 2);
        assert_eq!(r.retries.shed, 1);
        assert!(r.response.is_some());
    }

    #[test]
    fn persistent_truncation_classifies_as_corrupt() {
        // Content-Length says 10, body has 5 bytes — every attempt is a
        // detected integrity failure.
        let bad = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort".to_vec();
        let addr = scripted_server(vec![bad.clone(), bad.clone(), bad.clone(), bad]);
        let r = resilient_get(&addr, "/", &quick_policy(), 7);
        assert_eq!(r.outcome, Outcome::Corrupt);
        assert_eq!(r.attempts, 4);
        assert_eq!(r.retries.integrity, 3);
        assert!(r.error.unwrap().contains("truncated"));
    }

    #[test]
    fn terminal_4xx_gives_up_without_retrying() {
        let nf = b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec();
        let addr = scripted_server(vec![nf]);
        let r = resilient_get(&addr, "/nope", &quick_policy(), 7);
        assert_eq!(r.outcome, Outcome::GaveUp);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.status, Some(404));
        assert_eq!(r.retries.total(), 0);
    }

    #[test]
    fn exhausted_transport_retries_give_up() {
        // Nothing listening: connect refused every time.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let r = resilient_get(&addr, "/", &quick_policy(), 7);
        assert_eq!(r.outcome, Outcome::GaveUp);
        assert_eq!(r.attempts, 4);
        assert_eq!(r.retries.transport, 3);
    }
}
