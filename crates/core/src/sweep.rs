//! The multi-seed sweep runner: N replicas of one scenario, a fixed
//! worker pool, and cross-seed confidence bands.
//!
//! A sweep takes a base [`Scenario`], mints `seeds` replicas that
//! differ **only** in master seed (via [`dcnr_sim::seed_sequence`]),
//! executes them across at most `jobs` scoped worker threads, and folds
//! every comparison metric into a [`Band`] — mean, spread, and a
//! bootstrap confidence interval — rendered as "paper value vs.
//! measured band" rows.
//!
//! Determinism contract: the aggregated outcome is **byte-identical**
//! regardless of worker count. Replica outputs depend only on their
//! derived seed, results land in per-replica slots (not in completion
//! order), and aggregation runs single-threaded after the join, drawing
//! each metric's bootstrap randomness from its own derived stream.

use crate::experiments::Comparison;
use crate::scenario::{RunContext, Scenario};
use dcnr_sim::{seed_sequence, stream_rng};
use dcnr_stats::{aggregate, Band};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How to sweep: the base workload plus replication knobs.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// The scenario every replica runs (each rebound to its own seed).
    pub base: Scenario,
    /// Number of replica seeds.
    pub seeds: u32,
    /// Worker-pool width. Clamped to at least 1; never affects results.
    pub jobs: usize,
    /// Bootstrap resamples per metric.
    pub resamples: usize,
    /// Two-sided bootstrap confidence level, e.g. `0.95`.
    pub confidence: f64,
}

impl SweepConfig {
    /// A sweep of `seeds` replicas over `base` with the default
    /// bootstrap settings (1000 resamples, 95% confidence).
    pub fn new(base: Scenario, seeds: u32, jobs: usize) -> Self {
        Self {
            base,
            seeds,
            jobs,
            resamples: 1000,
            confidence: 0.95,
        }
    }
}

/// One aggregated metric: the paper's point value against the band of
/// per-seed measurements.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Metric name (as emitted by the artifact comparisons).
    pub metric: String,
    /// The paper's reported value.
    pub paper: f64,
    /// The cross-seed measurement band.
    pub band: Band,
}

/// Everything a sweep produces.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The configuration that ran.
    pub config: SweepConfig,
    /// The derived replica seeds, in replica order.
    pub replica_seeds: Vec<u64>,
    /// How many replicas passed their own acceptance verdict.
    pub passed_replicas: usize,
    /// Aggregated rows, in order of first appearance across replicas.
    pub rows: Vec<SweepRow>,
    /// The rendered band report. Deliberately omits the worker count so
    /// the bytes are identical for any `jobs` value.
    pub rendered: String,
}

/// Runs the sweep. Returns `Err` for zero seeds or an invalid base
/// scenario; individual replicas cannot fail (studies are total).
pub fn run_sweep(config: SweepConfig) -> Result<SweepOutcome, String> {
    if config.seeds == 0 {
        return Err("sweep needs at least one seed".into());
    }
    config.base.validate()?;
    let replica_seeds = seed_sequence(config.base.seed, "sweep.replica", config.seeds);
    let jobs = config.jobs.max(1).min(replica_seeds.len());

    // Fixed result slots: replica i writes slot i, so completion order
    // (which does depend on scheduling) never reaches the aggregate.
    type ReplicaSlot = Mutex<Option<(Vec<Comparison>, bool)>>;
    let slots: Vec<ReplicaSlot> = replica_seeds.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = replica_seeds.get(i) else {
                    break;
                };
                let ctx = RunContext::new(config.base.with_seed(seed));
                let out = ctx.execute();
                *slots[i].lock().expect("slot poisoned") = Some((out.comparisons, out.passed));
            });
        }
    });

    let mut replicas = Vec::with_capacity(slots.len());
    let mut passed_replicas = 0;
    for slot in slots {
        let (comparisons, passed) = slot
            .into_inner()
            .expect("slot poisoned")
            .expect("every replica index was claimed by a worker");
        if passed {
            passed_replicas += 1;
        }
        replicas.push(comparisons);
    }

    let rows = aggregate_rows(
        config.base.seed,
        &replicas,
        config.resamples,
        config.confidence,
    );
    let rendered = render(&config, &replica_seeds, passed_replicas, &rows);
    Ok(SweepOutcome {
        config,
        replica_seeds,
        passed_replicas,
        rows,
        rendered,
    })
}

/// Joins per-replica comparisons by metric **name** (artifact rows can
/// vary in count across seeds — e.g. Fig. 12's design-MTBI rows need
/// both designs present) and folds each metric into a band. Metric
/// order is first appearance scanning replicas in index order, so the
/// output is independent of worker scheduling.
fn aggregate_rows(
    master_seed: u64,
    replicas: &[Vec<Comparison>],
    resamples: usize,
    confidence: f64,
) -> Vec<SweepRow> {
    let mut order: Vec<(&str, f64)> = Vec::new();
    for replica in replicas {
        for c in replica {
            if !order.iter().any(|(m, _)| *m == c.metric) {
                order.push((&c.metric, c.paper));
            }
        }
    }
    order
        .into_iter()
        .filter_map(|(metric, paper)| {
            let values: Vec<f64> = replicas
                .iter()
                .flat_map(|r| r.iter().filter(|c| c.metric == metric))
                .map(|c| c.measured)
                .collect();
            let mut rng = stream_rng(master_seed, &format!("sweep.bootstrap.{metric}"));
            let band = aggregate(&mut rng, &values, resamples, confidence)?;
            Some(SweepRow {
                metric: metric.to_string(),
                paper,
                band,
            })
        })
        .collect()
}

fn render(
    config: &SweepConfig,
    replica_seeds: &[u64],
    passed_replicas: usize,
    rows: &[SweepRow],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep: {} scenario, {} replica seeds derived from master {:#x}",
        config.base.kind,
        replica_seeds.len(),
        config.base.seed
    );
    let _ = writeln!(
        out,
        "bands: mean over replicas, bootstrap {:.0}% CI for the mean ({} resamples)",
        config.confidence * 100.0,
        config.resamples
    );
    let _ = writeln!(
        out,
        "replicas passing their own acceptance: {}/{}",
        passed_replicas,
        replica_seeds.len()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<40} {:>12}  {:>12} {:>26}  {:>10}  verdict",
        "metric", "paper", "mean", "CI / range", "stddev"
    );
    for row in rows {
        let b = &row.band;
        let (lo, hi) = match &b.ci {
            Some(ci) => (ci.lo, ci.hi),
            None => (b.min, b.max),
        };
        let verdict = if b.covers(row.paper) {
            "covered"
        } else if row.paper >= b.min && row.paper <= b.max {
            "in range"
        } else {
            "outside"
        };
        let _ = writeln!(
            out,
            "  {:<40} {:>12.4}  {:>12.4} [{:>11.4}, {:>11.4}]  {:>10.4}  {}",
            row.metric, row.paper, b.mean, lo, hi, b.stddev, verdict
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;

    fn small_base(kind: ScenarioKind) -> Scenario {
        Scenario {
            kind,
            scale: 0.5,
            backbone: dcnr_backbone::topo::BackboneParams {
                edges: 30,
                vendors: 12,
                min_links_per_edge: 3,
            },
            ..Scenario::intra(0x5EED)
        }
    }

    #[test]
    fn rejects_zero_seeds_and_bad_scenarios() {
        assert!(run_sweep(SweepConfig::new(small_base(ScenarioKind::Backbone), 0, 1)).is_err());
        let mut bad = small_base(ScenarioKind::Intra);
        bad.scale = -1.0;
        assert!(run_sweep(SweepConfig::new(bad, 2, 1)).is_err());
    }

    #[test]
    fn aggregate_rows_joins_by_name_in_first_appearance_order() {
        let c = |m: &str, paper: f64, measured: f64| Comparison {
            metric: m.into(),
            paper,
            measured,
        };
        // Replica 1 lacks "b": name-joining must still band "b" from
        // the replicas that have it.
        let replicas = vec![
            vec![c("a", 1.0, 1.1), c("b", 2.0, 2.2)],
            vec![c("a", 1.0, 0.9)],
            vec![c("a", 1.0, 1.0), c("b", 2.0, 1.8)],
        ];
        let rows = aggregate_rows(7, &replicas, 200, 0.95);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].metric, "a");
        assert_eq!(rows[0].band.n, 3);
        assert_eq!(rows[1].metric, "b");
        assert_eq!(rows[1].band.n, 2);
        assert!((rows[1].band.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_rows_is_deterministic() {
        let c = |m: &str, v: f64| Comparison {
            metric: m.into(),
            paper: 1.0,
            measured: v,
        };
        let replicas = vec![
            vec![c("x", 1.1), c("y", 5.0)],
            vec![c("x", 0.9), c("y", 6.0)],
            vec![c("x", 1.2), c("y", 4.5)],
        ];
        let a = aggregate_rows(42, &replicas, 300, 0.9);
        let b = aggregate_rows(42, &replicas, 300, 0.9);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.band, rb.band);
        }
    }

    #[test]
    fn backbone_sweep_bands_cover_their_own_mean() {
        let out = run_sweep(SweepConfig::new(small_base(ScenarioKind::Backbone), 3, 2)).unwrap();
        assert_eq!(out.replica_seeds.len(), 3);
        assert!(!out.rows.is_empty());
        for row in &out.rows {
            assert_eq!(row.band.n, 3, "{}", row.metric);
            assert!(row.band.covers(row.band.mean), "{}", row.metric);
        }
        assert!(out.rendered.contains("sweep: backbone scenario"));
        assert!(!out.rendered.contains("jobs"), "report must omit jobs");
    }

    #[test]
    fn chaos_sweep_counts_replica_verdicts() {
        let out = run_sweep(SweepConfig::new(small_base(ScenarioKind::Chaos), 2, 2)).unwrap();
        assert_eq!(out.passed_replicas, 2, "drill rates stay in tolerance");
        assert!(out.rows.iter().all(|r| r.paper == 0.0));
    }
}
