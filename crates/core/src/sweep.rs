//! The multi-seed sweep runner: N replicas of one scenario, a
//! supervised worker pool, and cross-seed confidence bands.
//!
//! A sweep takes a base [`Scenario`], mints `seeds` replicas that
//! differ **only** in master seed (via [`dcnr_sim::seed_sequence`]),
//! executes them under the supervision layer
//! ([`crate::supervisor`]) — panic isolation, watchdog deadlines,
//! bounded retry, quarantine — and folds every comparison metric into a
//! [`Band`] — mean, spread, and a bootstrap confidence interval —
//! rendered as "paper value vs. measured band" rows.
//!
//! Determinism contract: the aggregated outcome is **byte-identical**
//! regardless of worker count, and each surviving replica's result is
//! byte-identical with or without failures elsewhere. Replica outputs
//! depend only on the seed their successful attempt ran under, results
//! land in per-replica slots keyed by index (not completion order), and
//! aggregation runs single-threaded after the join, drawing each
//! metric's bootstrap randomness from its own derived stream. With a
//! checkpoint directory, completed replicas persist as JSON shards
//! ([`crate::checkpoint`]) and a resumed or re-run sweep loads them
//! instead of recomputing — and still renders byte-identical output.

use crate::checkpoint::{self, Manifest, ReplicaRecord};
use crate::error::DcnrError;
use crate::scenario::Scenario;
use crate::supervisor::{self, effective_seed, ReplicaOutcome, ReplicaStatus, SupervisorConfig};
use dcnr_sim::{seed_sequence, stream_rng};
use dcnr_stats::{aggregate_partial, Band};
use dcnr_telemetry::metrics::MetricsSnapshot;
use dcnr_telemetry::trace::TraceSnapshot;
use std::fmt::Write as _;

/// How to sweep: the base workload plus replication knobs.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// The scenario every replica runs (each rebound to its own seed).
    pub base: Scenario,
    /// Number of replica seeds.
    pub seeds: u32,
    /// Worker-pool width. Clamped to at least 1; never affects results.
    pub jobs: usize,
    /// Bootstrap resamples per metric.
    pub resamples: usize,
    /// Two-sided bootstrap confidence level, e.g. `0.95`.
    pub confidence: f64,
}

impl SweepConfig {
    /// A sweep of `seeds` replicas over `base` with the default
    /// bootstrap settings (1000 resamples, 95% confidence).
    pub fn new(base: Scenario, seeds: u32, jobs: usize) -> Self {
        Self {
            base,
            seeds,
            jobs,
            resamples: 1000,
            confidence: 0.95,
        }
    }
}

/// One aggregated metric: the paper's point value against the band of
/// per-seed measurements, plus an honest account of how many planned
/// replicas contributed.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Metric name (as emitted by the artifact comparisons).
    pub metric: String,
    /// The paper's reported value.
    pub paper: f64,
    /// The cross-seed measurement band over the surviving replicas.
    pub band: Band,
    /// How many replicas were planned.
    pub planned: usize,
    /// How many planned replicas contributed no value (failed, or did
    /// not emit this metric).
    pub missing: usize,
}

/// Everything a sweep produces.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The configuration that ran.
    pub config: SweepConfig,
    /// The derived replica seeds, in replica order.
    pub replica_seeds: Vec<u64>,
    /// How many replicas completed AND passed their own acceptance.
    pub passed_replicas: usize,
    /// How many replicas failed outright (quarantined or
    /// deadline-killed) and contributed nothing.
    pub failed_replicas: usize,
    /// Per-replica supervision records, in replica order.
    pub outcomes: Vec<ReplicaOutcome>,
    /// Aggregated rows, in order of first appearance across replicas.
    pub rows: Vec<SweepRow>,
    /// The rendered band report. Deliberately omits the worker count so
    /// the bytes are identical for any `jobs` value.
    pub rendered: String,
    /// The rendered supervision report (per-replica outcome, retries,
    /// cache hits, quarantines, deadline kills). Also jobs-free and
    /// wall-clock-free, so it is deterministic for a given fault plan.
    pub supervision: String,
    /// The replicas' metrics, folded in replica-index order. `None`
    /// when the sweep ran without a telemetry collector installed.
    pub replica_metrics: Option<MetricsSnapshot>,
    /// The replicas' event traces, concatenated in replica-index order.
    /// `None` when the sweep ran without a collector installed.
    pub replica_trace: Option<TraceSnapshot>,
}

impl SweepOutcome {
    /// How many replicas completed (fresh or from cache).
    pub fn completed_replicas(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.failed()).count()
    }

    /// How many replica results were loaded from checkpoint shards.
    pub fn cache_hits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.cached()).count()
    }

    /// The `--max-failures` gate: `Ok` when at most `max_failures`
    /// replicas failed, a [`DcnrError::Failed`] otherwise.
    pub fn gate(&self, max_failures: u32) -> Result<(), DcnrError> {
        if self.failed_replicas as u64 <= u64::from(max_failures) {
            Ok(())
        } else {
            Err(DcnrError::Failed(format!(
                "sweep degraded beyond --max-failures: {} of {} replicas failed (allowed {})",
                self.failed_replicas,
                self.replica_seeds.len(),
                max_failures
            )))
        }
    }
}

/// Runs the sweep with the default supervision policy (no deadline, one
/// retry, no checkpoint). Returns `Err` for zero seeds or an invalid
/// base scenario; individual replica failures degrade the aggregate
/// instead of failing the sweep.
pub fn run_sweep(config: SweepConfig) -> Result<SweepOutcome, DcnrError> {
    run_supervised(config, &SupervisorConfig::default())
}

/// Runs the sweep under an explicit supervision policy: watchdog
/// deadline, bounded retry, fault injection (tests), and checkpointing.
pub fn run_supervised(
    config: SweepConfig,
    sup: &SupervisorConfig,
) -> Result<SweepOutcome, DcnrError> {
    if config.seeds == 0 {
        return Err(DcnrError::Config("sweep needs at least one seed".into()));
    }
    config.base.validate()?;
    let replica_seeds = seed_sequence(config.base.seed, "sweep.replica", config.seeds);
    let n = replica_seeds.len();
    let jobs = config.jobs.max(1).min(n);

    // Checkpoint prologue: verify (or create) the manifest, then load
    // every valid shard so its replica is never re-executed.
    let mut cached: Vec<(Option<ReplicaRecord>, Option<String>)> =
        (0..n).map(|_| (None, None)).collect();
    if let Some(dir) = &sup.checkpoint {
        checkpoint::prepare_dir(dir)?;
        let manifest = Manifest::from_config(&config);
        match checkpoint::read_manifest(dir)? {
            Some(existing) => existing.ensure_matches(&manifest, dir)?,
            None => checkpoint::write_manifest(dir, &manifest)?,
        }
        let read = dcnr_telemetry::span("checkpoint.read");
        for (i, slot) in cached.iter_mut().enumerate() {
            match checkpoint::read_shard(dir, i) {
                Ok(Some(rec)) => {
                    if rec.seed == effective_seed(replica_seeds[i], rec.attempt) {
                        slot.0 = Some(rec);
                    } else {
                        slot.1 =
                            Some("shard seed does not belong to this sweep; re-executing".into());
                    }
                }
                Ok(None) => {}
                Err(e) => slot.1 = Some(format!("ignored invalid shard ({e}); re-executing")),
            }
        }
        read.finish();
    }

    let (outcomes, records, telemetries) =
        supervisor::supervise(&config.base, &replica_seeds, jobs, sup, cached)?;

    // Fold per-replica telemetry in replica-index order: counter merge
    // is exact integer addition and trace merge is concatenation, so
    // the folded snapshots are independent of worker count.
    let (replica_metrics, replica_trace) = if dcnr_telemetry::active() {
        let mut metrics = MetricsSnapshot::default();
        let mut trace = TraceSnapshot::default();
        for (m, t) in telemetries.iter().flatten() {
            metrics.merge(m);
            trace.merge(t);
        }
        (Some(metrics), Some(trace))
    } else {
        (None, None)
    };

    let passed_replicas = outcomes
        .iter()
        .filter(|o| matches!(o.status, ReplicaStatus::Completed { passed: true, .. }))
        .count();
    let failed_replicas = outcomes.iter().filter(|o| o.failed()).count();

    let aggregate = dcnr_telemetry::span("sweep.aggregate");
    let rows = aggregate_rows(
        config.base.seed,
        &records,
        config.resamples,
        config.confidence,
    );
    aggregate.finish();
    let rendered = render(
        &config,
        &replica_seeds,
        passed_replicas,
        failed_replicas,
        &rows,
    );
    let supervision = supervisor::render_supervision(sup, &outcomes);
    Ok(SweepOutcome {
        config,
        replica_seeds,
        passed_replicas,
        failed_replicas,
        outcomes,
        rows,
        rendered,
        supervision,
        replica_metrics,
        replica_trace,
    })
}

/// Renders the aggregated band report for an existing checkpoint
/// directory **without executing anything**: the sweep definition comes
/// from `dir`'s manifest and every replica from its shard. Shards that
/// are missing, invalid, or belong to a different seed schedule count
/// as failed replicas (the report degrades exactly like a live sweep
/// with those replicas quarantined). For a complete checkpoint the
/// output is byte-identical to the sweep that wrote it — this is what
/// the report server's `GET /sweeps/{dir}` serves.
pub fn report_from_checkpoint(dir: &std::path::Path) -> Result<String, DcnrError> {
    let manifest = checkpoint::read_manifest(dir)?.ok_or_else(|| DcnrError::Checkpoint {
        path: dir.display().to_string(),
        message: "no manifest.json here; not a sweep checkpoint".into(),
    })?;
    // jobs never affects results or rendering; 1 is as good as any.
    let config = manifest.to_config(1)?;
    let replica_seeds = seed_sequence(config.base.seed, "sweep.replica", config.seeds);
    let records: Vec<Option<ReplicaRecord>> = replica_seeds
        .iter()
        .enumerate()
        .map(|(i, &planned)| match checkpoint::read_shard(dir, i) {
            Ok(Some(rec)) if rec.seed == effective_seed(planned, rec.attempt) => Some(rec),
            _ => None,
        })
        .collect();
    let passed = records
        .iter()
        .flatten()
        .filter(|record| record.passed)
        .count();
    let failed = records.iter().filter(|record| record.is_none()).count();
    let rows = aggregate_rows(
        config.base.seed,
        &records,
        config.resamples,
        config.confidence,
    );
    Ok(render(&config, &replica_seeds, passed, failed, &rows))
}

/// Joins per-replica comparisons by metric **name** (artifact rows can
/// vary in count across seeds — e.g. Fig. 12's design-MTBI rows need
/// both designs present) and folds each metric into a band over the
/// replicas that have it. A failed replica (`None` record) is a missing
/// slot for every metric. Metric order is first appearance scanning
/// replicas in index order, so the output is independent of worker
/// scheduling and of failures elsewhere.
fn aggregate_rows(
    master_seed: u64,
    records: &[Option<ReplicaRecord>],
    resamples: usize,
    confidence: f64,
) -> Vec<SweepRow> {
    let mut order: Vec<(&str, f64)> = Vec::new();
    for record in records.iter().flatten() {
        for c in &record.comparisons {
            if !order.iter().any(|(m, _)| *m == c.metric) {
                order.push((&c.metric, c.paper));
            }
        }
    }
    order
        .into_iter()
        .filter_map(|(metric, paper)| {
            // One slot per planned replica: `None` marks a replica that
            // contributed nothing for this metric (it failed, or its
            // seed produced no such row).
            let slots: Vec<Option<f64>> = records
                .iter()
                .map(|record| {
                    record.as_ref().and_then(|r| {
                        r.comparisons
                            .iter()
                            .find(|c| c.metric == metric)
                            .map(|c| c.measured)
                    })
                })
                .collect();
            let mut rng = stream_rng(master_seed, &format!("sweep.bootstrap.{metric}"));
            let partial = aggregate_partial(&mut rng, &slots, resamples, confidence)?;
            Some(SweepRow {
                metric: metric.to_string(),
                paper,
                band: partial.band,
                planned: partial.planned,
                missing: partial.missing,
            })
        })
        .collect()
}

fn render(
    config: &SweepConfig,
    replica_seeds: &[u64],
    passed_replicas: usize,
    failed_replicas: usize,
    rows: &[SweepRow],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep: {} scenario, {} replica seeds derived from master {:#x}",
        config.base.kind,
        replica_seeds.len(),
        config.base.seed
    );
    let _ = writeln!(
        out,
        "bands: mean over replicas, bootstrap {:.0}% CI for the mean ({} resamples)",
        config.confidence * 100.0,
        config.resamples
    );
    let _ = writeln!(
        out,
        "replicas passing their own acceptance: {}/{}",
        passed_replicas,
        replica_seeds.len()
    );
    if failed_replicas > 0 {
        let _ = writeln!(
            out,
            "DEGRADED: {failed_replicas} of {} replicas failed; bands cover survivors only \
             (see the supervision report)",
            replica_seeds.len()
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<40} {:>12}  {:>12} {:>26}  {:>10}  verdict",
        "metric", "paper", "mean", "CI / range", "stddev"
    );
    for row in rows {
        let b = &row.band;
        let (lo, hi) = match &b.ci {
            Some(ci) => (ci.lo, ci.hi),
            None => (b.min, b.max),
        };
        let verdict = if b.covers(row.paper) {
            "covered"
        } else if row.paper >= b.min && row.paper <= b.max {
            "in range"
        } else {
            "outside"
        };
        let degraded = if row.missing > 0 {
            format!(" [{}/{} replicas]", b.n, row.planned)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  {:<40} {:>12.4}  {:>12.4} [{:>11.4}, {:>11.4}]  {:>10.4}  {}{}",
            row.metric, row.paper, b.mean, lo, hi, b.stddev, verdict, degraded
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Comparison;
    use crate::scenario::ScenarioKind;

    fn small_base(kind: ScenarioKind) -> Scenario {
        Scenario {
            kind,
            scale: 0.5,
            backbone: dcnr_backbone::topo::BackboneParams {
                edges: 30,
                vendors: 12,
                min_links_per_edge: 3,
            },
            ..Scenario::intra(0x5EED)
        }
    }

    fn record(replica: usize, comparisons: Vec<Comparison>) -> Option<ReplicaRecord> {
        Some(ReplicaRecord {
            replica,
            attempt: 0,
            seed: replica as u64,
            passed: true,
            comparisons,
        })
    }

    #[test]
    fn rejects_zero_seeds_and_bad_scenarios() {
        let err =
            run_sweep(SweepConfig::new(small_base(ScenarioKind::Backbone), 0, 1)).unwrap_err();
        assert_eq!(err.kind(), "config");
        let mut bad = small_base(ScenarioKind::Intra);
        bad.scale = -1.0;
        let err = run_sweep(SweepConfig::new(bad, 2, 1)).unwrap_err();
        assert_eq!(err.kind(), "config");
    }

    #[test]
    fn aggregate_rows_joins_by_name_in_first_appearance_order() {
        let c = |m: &str, paper: f64, measured: f64| Comparison {
            metric: m.into(),
            paper,
            measured,
        };
        // Replica 1 lacks "b": name-joining must still band "b" from
        // the replicas that have it.
        let records = vec![
            record(0, vec![c("a", 1.0, 1.1), c("b", 2.0, 2.2)]),
            record(1, vec![c("a", 1.0, 0.9)]),
            record(2, vec![c("a", 1.0, 1.0), c("b", 2.0, 1.8)]),
        ];
        let rows = aggregate_rows(7, &records, 200, 0.95);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].metric, "a");
        assert_eq!(rows[0].band.n, 3);
        assert_eq!(rows[0].missing, 0);
        assert_eq!(rows[1].metric, "b");
        assert_eq!(rows[1].band.n, 2);
        assert_eq!(rows[1].missing, 1, "replica 1 is a missing slot for b");
        assert!((rows[1].band.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_rows_skips_failed_replicas_without_moving_survivor_values() {
        let c = |m: &str, v: f64| Comparison {
            metric: m.into(),
            paper: 1.0,
            measured: v,
        };
        let healthy = vec![
            record(0, vec![c("x", 1.1)]),
            record(1, vec![c("x", 0.9)]),
            record(2, vec![c("x", 1.2)]),
        ];
        let mut degraded = healthy.clone();
        degraded[1] = None; // replica 1 quarantined
        let h = aggregate_rows(42, &healthy, 300, 0.9);
        let d = aggregate_rows(42, &degraded, 300, 0.9);
        assert_eq!(d[0].band.n, 2);
        assert_eq!(d[0].missing, 1);
        assert_eq!(d[0].planned, 3);
        // Survivor order statistics come from the same values.
        assert_eq!(d[0].band.min, 1.1);
        assert_eq!(d[0].band.max, 1.2);
        assert_eq!(h[0].band.min, 0.9);
    }

    #[test]
    fn aggregate_rows_is_deterministic() {
        let c = |m: &str, v: f64| Comparison {
            metric: m.into(),
            paper: 1.0,
            measured: v,
        };
        let records = vec![
            record(0, vec![c("x", 1.1), c("y", 5.0)]),
            record(1, vec![c("x", 0.9), c("y", 6.0)]),
            record(2, vec![c("x", 1.2), c("y", 4.5)]),
        ];
        let a = aggregate_rows(42, &records, 300, 0.9);
        let b = aggregate_rows(42, &records, 300, 0.9);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.band, rb.band);
        }
    }

    #[test]
    fn backbone_sweep_bands_cover_their_own_mean() {
        let out = run_sweep(SweepConfig::new(small_base(ScenarioKind::Backbone), 3, 2)).unwrap();
        assert_eq!(out.replica_seeds.len(), 3);
        assert!(!out.rows.is_empty());
        for row in &out.rows {
            assert_eq!(row.band.n, 3, "{}", row.metric);
            assert!(row.band.covers(row.band.mean), "{}", row.metric);
        }
        assert_eq!(out.failed_replicas, 0);
        assert_eq!(out.cache_hits(), 0);
        assert!(out.rendered.contains("sweep: backbone scenario"));
        assert!(!out.rendered.contains("jobs"), "report must omit jobs");
        assert!(!out.supervision.contains("jobs"), "supervision too");
    }

    #[test]
    fn chaos_sweep_counts_replica_verdicts() {
        let out = run_sweep(SweepConfig::new(small_base(ScenarioKind::Chaos), 2, 2)).unwrap();
        assert_eq!(out.passed_replicas, 2, "drill rates stay in tolerance");
        assert!(out.rows.iter().all(|r| r.paper == 0.0));
    }

    #[test]
    fn gate_enforces_max_failures() {
        let out = run_sweep(SweepConfig::new(small_base(ScenarioKind::Backbone), 2, 2)).unwrap();
        assert!(out.gate(0).is_ok(), "healthy run passes a zero budget");
        let mut degraded = out;
        degraded.failed_replicas = 2;
        assert!(degraded.gate(2).is_ok());
        let err = degraded.gate(1).unwrap_err();
        assert_eq!(err.kind(), "failed");
        assert!(err.to_string().contains("max-failures"), "{err}");
    }
}
