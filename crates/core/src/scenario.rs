//! The scenario engine: one run-plan layer behind every study driver.
//!
//! A [`Scenario`] names a workload (study kind + scale + seed +
//! hazard/backbone/chaos knobs). It lowers to a [`RunPlan`] — which
//! studies must execute and which artifacts they feed — and a
//! [`RunContext`] executes each required study **exactly once**,
//! caching its output so every artifact pulls from the shared context
//! instead of re-running pipelines. The CLI's `intra`, `backbone`, and
//! `chaos` subcommands, the sweep runner, the bench harness, and the
//! examples all drive the same engine.
//!
//! Dataflow: `Scenario` → [`Scenario::plan`] → `RunPlan` →
//! [`RunContext::execute`] → [`ScenarioOutcome`].

use crate::artifacts;
use crate::error::{panic_message, DcnrError};
use crate::experiments::{Comparison, Experiment, ExperimentOutcome};
use crate::inter::InterDcStudy;
use crate::intra::{IntraDcStudy, StudyConfig};
use crate::routes::{RoutesConfig, RoutesStudy};
use crate::survivability::{SurvivabilityConfig, SurvivabilityStudy};
use dcnr_chaos::{run_study, ChaosConfig, ChaosStudyOutput, Tolerance};
use dcnr_faults::hazard::HazardConfig;
use dcnr_sim::derive_seed;
use std::fmt;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// A study pipeline a scenario may require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StudyKind {
    /// The seven-year intra-DC study (§5).
    Intra,
    /// The eighteen-month backbone study (§6).
    Backbone,
    /// The two-arm chaos-ingestion study (clean vs. fault-injected).
    Chaos,
    /// The forwarding-state routes study (`routes.*` artifacts).
    Routes,
    /// The topology-zoo survivability study (`surv.*` artifacts).
    Survivability,
}

/// Which workload a scenario runs — the former three drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Tables 1–2 and Figures 2–14 from the intra-DC study.
    Intra,
    /// Figures 15–18 and Table 4 from the backbone study.
    Backbone,
    /// The chaos-ingestion drill with clean-vs-perturbed deviations.
    Chaos,
    /// The forwarding-state study: ECMP capacity loss, emergent
    /// severity mix, and the workload-degradation curve.
    Routes,
    /// The topology-zoo survivability study: element-class
    /// survivability curves and Monte-Carlo lifespan sweeps.
    Survivability,
}

impl ScenarioKind {
    /// Parses a CLI scenario name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "intra" => Some(Self::Intra),
            "backbone" => Some(Self::Backbone),
            "chaos" => Some(Self::Chaos),
            "routes" => Some(Self::Routes),
            "survivability" => Some(Self::Survivability),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Intra => "intra",
            Self::Backbone => "backbone",
            Self::Chaos => "chaos",
            Self::Routes => "routes",
            Self::Survivability => "survivability",
        }
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully-specified workload: everything a run needs except the
/// execution strategy (single run vs. sweep, thread count).
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Which workload to run.
    pub kind: ScenarioKind,
    /// Master seed. Every derived stream — intra, backbone, chaos
    /// injection — is a stable function of this one value.
    pub seed: u64,
    /// Intra-DC fleet scale multiplier.
    pub scale: f64,
    /// Hazard-model knobs (automation / drain-policy ablations).
    pub hazard: HazardConfig,
    /// Backbone topology parameters (edges, vendors, links).
    pub backbone: dcnr_backbone::topo::BackboneParams,
    /// Chaos-injection knobs. Its embedded seed is rederived from
    /// [`Scenario::seed`] by [`Scenario::with_seed`], so one scenario
    /// seed still controls the whole run.
    pub chaos: ChaosConfig,
    /// Tolerances the chaos deviations are held to.
    pub tolerance: Tolerance,
    /// Zoo member id the survivability lifespan replay runs on. Always
    /// one of [`dcnr_topology::zoo::ZOO`]'s ids (validation rejects
    /// anything else), so the `&'static str` keeps `Scenario: Copy`.
    pub topology: &'static str,
}

impl Scenario {
    /// The intra-DC scenario at the paper-default scale.
    pub fn intra(seed: u64) -> Self {
        Self {
            kind: ScenarioKind::Intra,
            seed,
            scale: 10.0,
            hazard: HazardConfig::default(),
            backbone: dcnr_backbone::topo::BackboneParams::default(),
            chaos: ChaosConfig::drill(derive_seed(seed, "scenario.chaos")),
            tolerance: Tolerance::default(),
            topology: "fat-tree",
        }
        .with_seed(seed)
    }

    /// The backbone scenario at the paper-default topology.
    pub fn backbone(seed: u64) -> Self {
        Self {
            kind: ScenarioKind::Backbone,
            ..Self::intra(seed)
        }
    }

    /// The chaos drill scenario (drill fault mix, default tolerances).
    pub fn chaos(seed: u64) -> Self {
        Self {
            kind: ScenarioKind::Chaos,
            ..Self::intra(seed)
        }
    }

    /// The routes scenario at the reference region (`scale` here is a
    /// *region* scale — racks per cluster/pod — not the intra fleet
    /// multiplier, so the default is 1.0).
    pub fn routes(seed: u64) -> Self {
        Self {
            kind: ScenarioKind::Routes,
            scale: 1.0,
            ..Self::intra(seed)
        }
    }

    /// The survivability scenario: the zoo sweep at scale 1.0 with the
    /// lifespan replay on the default fat-tree member.
    pub fn survivability(seed: u64) -> Self {
        Self {
            kind: ScenarioKind::Survivability,
            scale: 1.0,
            ..Self::intra(seed)
        }
    }

    /// The default scenario the CLI (and the report server) uses for
    /// `kind` when no `--seed` is given. One definition, so
    /// `dcnr artifact fig15` and `GET /artifacts/fig15` agree byte for
    /// byte on what the unparameterized workload is.
    pub fn cli_default(kind: ScenarioKind) -> Self {
        match kind {
            ScenarioKind::Intra => Self::intra(0xDC_2018),
            ScenarioKind::Backbone => Self::backbone(0xB0_E5),
            ScenarioKind::Chaos => Self::chaos(0xC4_05),
            ScenarioKind::Routes => Self::routes(0x70_07E5),
            ScenarioKind::Survivability => Self::survivability(0x5012_0735),
        }
    }

    /// Rebinds the scenario to `seed`, rederiving every embedded
    /// sub-seed. This is what the sweep runner uses to mint replicas:
    /// the replica differs from the base scenario *only* in seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.chaos.seed = derive_seed(seed, "scenario.chaos");
        self
    }

    /// Validates the knobs that the engine's own expectations depend on.
    pub fn validate(&self) -> Result<(), DcnrError> {
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(DcnrError::Config("scale must be positive".into()));
        }
        if dcnr_topology::zoo::find(self.topology).is_none() {
            return Err(DcnrError::Usage(format!(
                "unknown topology {:?} (valid ids: {})",
                self.topology,
                dcnr_topology::zoo::id_list()
            )));
        }
        if self.kind == ScenarioKind::Survivability && self.scale > 100.0 {
            return Err(DcnrError::Usage(format!(
                "survivability scale {} is out of range (zoo builders accept 0 < scale <= 100)",
                self.scale
            )));
        }
        if self.backbone.edges < 2 || self.backbone.vendors < 1 {
            return Err(DcnrError::Config(
                "need at least 2 edges and 1 vendor".into(),
            ));
        }
        self.chaos
            .validate()
            .map_err(|e| DcnrError::Config(format!("chaos: {e}")))
    }

    /// Lowers the scenario to its run plan.
    pub fn plan(&self) -> RunPlan {
        let artifacts: Vec<Experiment> = match self.kind {
            ScenarioKind::Intra => artifacts::registry()
                .iter()
                .filter(|a| a.study == StudyKind::Intra)
                .map(|a| a.id)
                .collect(),
            ScenarioKind::Backbone => artifacts::registry()
                .iter()
                .filter(|a| a.study == StudyKind::Backbone)
                .map(|a| a.id)
                .collect(),
            ScenarioKind::Routes => artifacts::registry()
                .iter()
                .filter(|a| a.study == StudyKind::Routes)
                .map(|a| a.id)
                .collect(),
            ScenarioKind::Survivability => artifacts::registry()
                .iter()
                .filter(|a| a.study == StudyKind::Survivability)
                .map(|a| a.id)
                .collect(),
            ScenarioKind::Chaos => Vec::new(),
        };
        let mut studies: Vec<StudyKind> = Vec::new();
        if self.kind == ScenarioKind::Chaos {
            studies.push(StudyKind::Chaos);
        }
        for e in &artifacts {
            let s = artifacts::descriptor(*e).study;
            if !studies.contains(&s) {
                studies.push(s);
            }
        }
        RunPlan {
            scenario: *self,
            studies,
            artifacts,
        }
    }

    /// The intra-DC study configuration this scenario implies.
    pub fn intra_config(&self) -> StudyConfig {
        StudyConfig {
            scale: self.scale,
            seed: self.seed,
            hazard: self.hazard,
            ..Default::default()
        }
    }

    /// The backbone simulation configuration this scenario implies.
    pub fn backbone_config(&self) -> dcnr_backbone::BackboneSimConfig {
        dcnr_backbone::BackboneSimConfig {
            params: self.backbone,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// The routes study configuration this scenario implies.
    pub fn routes_config(&self) -> RoutesConfig {
        RoutesConfig {
            scale: self.scale,
            seed: self.seed,
            backbone: self.backbone,
        }
    }

    /// The survivability study configuration this scenario implies.
    pub fn survivability_config(&self) -> SurvivabilityConfig {
        SurvivabilityConfig {
            scale: self.scale,
            seed: self.seed,
            topology: self.topology,
        }
    }
}

/// What a scenario resolves to before anything runs: the studies it
/// needs (each executed exactly once) and the artifacts they feed.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// The scenario this plan was lowered from.
    pub scenario: Scenario,
    /// Required studies, deduplicated, in execution order.
    pub studies: Vec<StudyKind>,
    /// Artifacts to render, in paper order (empty for chaos, whose
    /// output is the deviation report rather than paper artifacts).
    pub artifacts: Vec<Experiment>,
}

/// The shared execution context: runs each required study exactly once
/// and caches its output for every artifact that needs it.
///
/// Thread-safe (`OnceLock` caches), so one context can be shared across
/// a process — the bench harness keeps a `static` one.
pub struct RunContext {
    scenario: Scenario,
    intra: OnceLock<IntraDcStudy>,
    inter: OnceLock<InterDcStudy>,
    chaos: OnceLock<ChaosStudyOutput>,
    routes: OnceLock<RoutesStudy>,
    survivability: OnceLock<SurvivabilityStudy>,
}

impl RunContext {
    /// A context that will lazily run whatever `scenario` requires.
    pub fn new(scenario: Scenario) -> Self {
        Self {
            scenario,
            intra: OnceLock::new(),
            inter: OnceLock::new(),
            chaos: OnceLock::new(),
            routes: OnceLock::new(),
            survivability: OnceLock::new(),
        }
    }

    /// A context seeded with pre-built studies (bench fixtures, tests).
    /// The scenario is reconstructed from the studies' own configs; no
    /// study will be re-run.
    pub fn from_studies(intra: IntraDcStudy, inter: InterDcStudy) -> Self {
        let scenario = Scenario {
            scale: intra.config().scale,
            hazard: intra.config().hazard,
            backbone: inter.config().params,
            ..Scenario::intra(intra.config().seed)
        };
        let ctx = Self::new(scenario);
        let _ = ctx.intra.set(intra);
        let _ = ctx.inter.set(inter);
        ctx
    }

    /// The scenario this context executes.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The intra-DC study (run on first use, then cached).
    pub fn intra(&self) -> &IntraDcStudy {
        self.intra
            .get_or_init(|| IntraDcStudy::run(self.scenario.intra_config()))
    }

    /// The backbone study (run on first use, then cached).
    pub fn inter(&self) -> &InterDcStudy {
        self.inter
            .get_or_init(|| InterDcStudy::run(self.scenario.backbone_config()))
    }

    /// The chaos study (run on first use, then cached).
    pub fn chaos(&self) -> &ChaosStudyOutput {
        self.chaos.get_or_init(|| {
            run_study(
                self.scenario.backbone_config(),
                &self.scenario.chaos,
                self.scenario.tolerance,
            )
        })
    }

    /// The routes study (run on first use, then cached).
    pub fn routes(&self) -> &RoutesStudy {
        self.routes
            .get_or_init(|| RoutesStudy::run(self.scenario.routes_config()))
    }

    /// The survivability study (run on first use, then cached).
    pub fn survivability(&self) -> &SurvivabilityStudy {
        self.survivability
            .get_or_init(|| SurvivabilityStudy::run(self.scenario.survivability_config()))
    }

    /// Ensures `kind` has executed (idempotent).
    pub fn ensure(&self, kind: StudyKind) {
        match kind {
            StudyKind::Intra => {
                self.intra();
            }
            StudyKind::Backbone => {
                self.inter();
            }
            StudyKind::Chaos => {
                self.chaos();
            }
            StudyKind::Routes => {
                self.routes();
            }
            StudyKind::Survivability => {
                self.survivability();
            }
        }
    }

    /// Renders one artifact from the cached studies via its registry
    /// descriptor.
    pub fn artifact(&self, e: Experiment) -> ExperimentOutcome {
        (artifacts::descriptor(e).render)(self)
    }

    /// Fallible [`RunContext::execute`]: validates the scenario first
    /// and converts a study/artifact panic into a typed
    /// [`DcnrError::Panic`] instead of unwinding through the caller.
    /// This is the boundary the supervision layer (and the CLI) run
    /// scenarios behind.
    pub fn try_execute(&self) -> Result<ScenarioOutcome, DcnrError> {
        self.scenario.validate()?;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute())).map_err(
            |payload| DcnrError::Panic {
                context: format!(
                    "{} scenario seed {:#x}",
                    self.scenario.kind, self.scenario.seed
                ),
                message: panic_message(payload.as_ref()),
            },
        )
    }

    /// Executes the scenario's full plan and renders the report.
    pub fn execute(&self) -> ScenarioOutcome {
        let plan = self.scenario.plan();
        for kind in &plan.studies {
            self.ensure(*kind);
        }
        match self.scenario.kind {
            ScenarioKind::Intra
            | ScenarioKind::Backbone
            | ScenarioKind::Routes
            | ScenarioKind::Survivability => self.execute_artifacts(&plan),
            ScenarioKind::Chaos => self.execute_chaos(),
        }
    }

    fn execute_artifacts(&self, plan: &RunPlan) -> ScenarioOutcome {
        let mut rendered = String::new();
        let _ = writeln!(rendered, "{}", self.dataset_line());
        let artifacts: Vec<ExperimentOutcome> =
            plan.artifacts.iter().map(|&e| self.artifact(e)).collect();
        let mut comparisons = Vec::new();
        for out in &artifacts {
            let _ = writeln!(rendered);
            rendered.push_str(&artifacts::render_block(out));
            // Qualify metric names with the artifact key: the flattened
            // list must be joinable by name across sweep replicas, and
            // Figs. 15-18 all emit "median (h)", "fit a", ... locally.
            comparisons.extend(out.comparisons.iter().map(|c| Comparison {
                metric: format!("{} {}", out.experiment.key(), c.metric),
                paper: c.paper,
                measured: c.measured,
            }));
        }
        ScenarioOutcome {
            scenario: self.scenario,
            artifacts,
            comparisons,
            rendered,
            passed: true,
        }
    }

    fn execute_chaos(&self) -> ScenarioOutcome {
        let out = self.chaos();
        let mut rendered = String::new();
        let _ = writeln!(rendered, "{}", out.report);
        let _ = writeln!(rendered);
        let _ = writeln!(
            rendered,
            "paper statistics, clean vs chaos (Figures 15-18, Table 4):"
        );
        let mut comparisons = Vec::new();
        for d in &out.deviations {
            let _ = writeln!(rendered, "  {d}");
            // The sweepable value is the *drift*: ideal is zero, so a
            // cross-seed band on it reads directly against the limit.
            comparisons.push(Comparison {
                metric: format!("{} drift", d.metric),
                paper: 0.0,
                measured: d.deviation,
            });
        }
        let _ = writeln!(rendered);
        let _ = writeln!(
            rendered,
            "write-path drill (SEV store + remediation queue):"
        );
        let _ = writeln!(
            rendered,
            "  sev         : {} committed, {} transient failures, {} abandoned, max delay {}",
            out.drill.sev.committed,
            out.drill.sev.transient_failures,
            out.drill.sev.abandoned,
            out.drill.sev.max_delay,
        );
        let _ = writeln!(
            rendered,
            "  remediation : {} committed, {} transient failures, {} abandoned, max delay {}",
            out.drill.remediation.committed,
            out.drill.remediation.transient_failures,
            out.drill.remediation.abandoned,
            out.drill.remediation.max_delay,
        );
        let _ = writeln!(rendered);
        let _ = writeln!(rendered, "annotation for regenerated tables/figures:");
        let _ = writeln!(rendered, "  {}", out.report.annotation());
        let passed = out.within_tolerance();
        let _ = writeln!(rendered);
        if passed {
            let _ = writeln!(
                rendered,
                "verdict: paper statistics within tolerance under injected faults"
            );
        } else {
            let _ = writeln!(
                rendered,
                "verdict: paper statistics drifted outside tolerance under injected faults"
            );
        }
        ScenarioOutcome {
            scenario: self.scenario,
            artifacts: Vec::new(),
            comparisons,
            rendered,
            passed,
        }
    }

    fn dataset_line(&self) -> String {
        match self.scenario.kind {
            ScenarioKind::Intra => {
                let s = self.intra();
                format!(
                    "dataset: {} issues -> {} SEVs (2011-2017)",
                    s.outcomes().len(),
                    s.db().len()
                )
            }
            ScenarioKind::Backbone => {
                let s = self.inter();
                format!(
                    "dataset: {} e-mails -> {} tickets (Oct 2016 - Apr 2018)",
                    s.output().emails.len(),
                    s.tickets().len()
                )
            }
            ScenarioKind::Routes => {
                let s = self.routes();
                let stats = s.forwarding_stats();
                format!(
                    "dataset: {} devices / {} racks; {} table builds, {} invalidations, \
                     {} scoped recomputes",
                    s.devices(),
                    s.racks(),
                    stats.builds,
                    stats.invalidations,
                    stats.devices_recomputed
                )
            }
            ScenarioKind::Survivability => {
                let s = self.survivability();
                format!(
                    "dataset: {} zoo members x {} element classes, {} samples; \
                     lifespan on `{}` ({} devices, {} links)",
                    dcnr_topology::zoo::ZOO.len(),
                    3,
                    s.samples(),
                    s.config().topology,
                    s.lifespan_devices(),
                    s.lifespan_links()
                )
            }
            ScenarioKind::Chaos => String::new(),
        }
    }
}

/// Everything one scenario execution produces.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Rendered artifacts in plan order (empty for chaos).
    pub artifacts: Vec<ExperimentOutcome>,
    /// Every comparison row, flattened in plan order. For chaos these
    /// are the deviation drifts (paper value 0.0 = no drift).
    pub comparisons: Vec<Comparison>,
    /// The full plain-text report (what the CLI prints).
    pub rendered: String,
    /// Whether the run passed its own acceptance (always true for
    /// artifact scenarios; the chaos tolerance verdict otherwise).
    pub passed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(kind: ScenarioKind) -> Scenario {
        Scenario {
            kind,
            scale: 1.0,
            backbone: dcnr_backbone::topo::BackboneParams {
                edges: 40,
                vendors: 16,
                min_links_per_edge: 3,
            },
            ..Scenario::intra(0x5CEA)
        }
    }

    #[test]
    fn plan_requires_exactly_the_needed_studies() {
        let p = small(ScenarioKind::Intra).plan();
        assert_eq!(p.studies, vec![StudyKind::Intra]);
        assert_eq!(p.artifacts.len(), 15, "Tables 1-2 + Figs 2-14");
        let p = small(ScenarioKind::Backbone).plan();
        assert_eq!(p.studies, vec![StudyKind::Backbone]);
        assert_eq!(p.artifacts.len(), 5, "Figs 15-18 + Table 4");
        let p = small(ScenarioKind::Routes).plan();
        assert_eq!(p.studies, vec![StudyKind::Routes]);
        assert_eq!(
            p.artifacts.len(),
            3,
            "routes.{{capacity,severity_mix,workload}}"
        );
        let p = small(ScenarioKind::Survivability).plan();
        assert_eq!(p.studies, vec![StudyKind::Survivability]);
        assert_eq!(p.artifacts.len(), 2, "surv.{{ranking,lifespan}}");
        let p = small(ScenarioKind::Chaos).plan();
        assert_eq!(p.studies, vec![StudyKind::Chaos]);
        assert!(p.artifacts.is_empty());
    }

    #[test]
    fn context_runs_each_study_once_and_caches() {
        let ctx = RunContext::new(small(ScenarioKind::Intra));
        let a = ctx.intra() as *const IntraDcStudy;
        let b = ctx.intra() as *const IntraDcStudy;
        assert_eq!(a, b, "second access must hit the cache");
    }

    #[test]
    fn intra_execution_does_not_touch_the_backbone() {
        let ctx = RunContext::new(small(ScenarioKind::Intra));
        let out = ctx.execute();
        assert!(out.passed);
        assert!(ctx.inter.get().is_none(), "backbone must stay unrun");
        assert!(ctx.chaos.get().is_none(), "chaos must stay unrun");
        assert_eq!(out.artifacts.len(), 15);
        assert!(out.rendered.contains("Table 1"));
        assert!(out.rendered.contains("dataset:"));
    }

    #[test]
    fn backbone_execution_does_not_touch_intra() {
        let ctx = RunContext::new(small(ScenarioKind::Backbone));
        let out = ctx.execute();
        assert!(ctx.intra.get().is_none(), "intra must stay unrun");
        assert_eq!(out.artifacts.len(), 5);
        assert!(out.rendered.contains("Fig. 15"));
    }

    #[test]
    fn routes_execution_stays_inside_the_routes_study() {
        let mut s = small(ScenarioKind::Routes);
        s.scale = 0.25;
        let ctx = RunContext::new(s);
        let out = ctx.execute();
        assert!(out.passed);
        assert!(ctx.intra.get().is_none(), "intra must stay unrun");
        assert!(ctx.inter.get().is_none(), "backbone must stay unrun");
        assert_eq!(out.artifacts.len(), 3);
        assert!(out.rendered.contains("dataset:"));
        assert!(out.rendered.contains("emergent"));
    }

    #[test]
    fn chaos_execution_produces_drift_comparisons() {
        let ctx = RunContext::new(small(ScenarioKind::Chaos));
        let out = ctx.execute();
        // The verdict must agree with the study's own tolerance check
        // (whether it passes depends on topology size and seed).
        assert_eq!(out.passed, ctx.chaos().within_tolerance());
        assert_eq!(out.comparisons.len(), 6, "six deviation rows");
        for c in &out.comparisons {
            assert_eq!(c.paper, 0.0, "{}: ideal drift is zero", c.metric);
            assert!(c.measured.is_finite());
        }
        assert!(out.rendered.contains("verdict:"));
    }

    #[test]
    fn with_seed_rederives_chaos_seed() {
        let a = small(ScenarioKind::Chaos);
        let b = a.with_seed(a.seed + 1);
        assert_ne!(a.chaos.seed, b.chaos.seed);
        assert_eq!(a.chaos.corrupt_rate, b.chaos.corrupt_rate);
        // Same seed → identical derivation (idempotent).
        let c = a.with_seed(a.seed);
        assert_eq!(a.chaos.seed, c.chaos.seed);
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut s = small(ScenarioKind::Intra);
        s.scale = 0.0;
        assert!(s.validate().is_err());
        let mut s = small(ScenarioKind::Backbone);
        s.backbone.edges = 1;
        assert!(s.validate().is_err());
        let mut s = small(ScenarioKind::Chaos);
        s.chaos.loss_rate = 2.0;
        assert!(s.validate().is_err());
        assert!(small(ScenarioKind::Intra).validate().is_ok());
    }

    #[test]
    fn validate_rejects_unknown_topologies_as_usage_errors() {
        let mut s = small(ScenarioKind::Survivability);
        s.topology = "hypercube";
        let err = s.validate().unwrap_err();
        assert_eq!(err.kind(), "usage");
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("dcell"), "lists valid ids: {err}");
        // Out-of-range zoo scale is also a usage error for survivability.
        let mut s = small(ScenarioKind::Survivability);
        s.scale = 101.0;
        let err = s.validate().unwrap_err();
        assert_eq!(err.kind(), "usage");
        // ...but other scenario kinds accept large scales unchanged.
        let mut s = small(ScenarioKind::Intra);
        s.scale = 101.0;
        assert!(s.validate().is_ok());
        assert!(small(ScenarioKind::Survivability).validate().is_ok());
    }

    #[test]
    fn try_execute_rejects_invalid_scenarios_without_running() {
        let mut s = small(ScenarioKind::Intra);
        s.scale = f64::NAN;
        let ctx = RunContext::new(s);
        let err = ctx.try_execute().unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(ctx.intra.get().is_none(), "nothing may run");
    }

    #[test]
    fn try_execute_matches_execute_on_valid_scenarios() {
        let ctx = RunContext::new(small(ScenarioKind::Chaos));
        let out = ctx.try_execute().unwrap();
        assert_eq!(out.rendered, ctx.execute().rendered);
    }

    #[test]
    fn kind_parse_roundtrip() {
        for k in [
            ScenarioKind::Intra,
            ScenarioKind::Backbone,
            ScenarioKind::Chaos,
            ScenarioKind::Routes,
            ScenarioKind::Survivability,
        ] {
            assert_eq!(ScenarioKind::parse(k.name()), Some(k));
        }
        assert_eq!(ScenarioKind::parse("bogus"), None);
    }
}
