//! Serialization of telemetry snapshots: the files behind `--metrics`
//! and `--trace`.
//!
//! Metrics are written either as Prometheus text exposition (the
//! default) or as JSON when the path ends in `.json`; traces are always
//! JSON. Both renderings iterate `BTreeMap` snapshots, so the bytes are
//! deterministic for a given snapshot. JSON goes through
//! [`crate::json::write_str`], the same escape-correct writer the
//! checkpoint format uses — no serde in the build.

use crate::error::DcnrError;
use crate::json::write_str;
use dcnr_telemetry::metrics::{Key, MetricsSnapshot};
use dcnr_telemetry::trace::TraceSnapshot;
use std::fmt::Write as _;
use std::path::Path;

fn push_key(out: &mut String, key: &Key) {
    out.push_str("{\"name\": ");
    write_str(out, &key.name);
    out.push_str(", \"labels\": {");
    for (i, (k, v)) in key.labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_str(out, k);
        out.push_str(": ");
        write_str(out, v);
    }
    out.push('}');
}

/// Renders a metrics snapshot as a JSON document with `counters`,
/// `gauges`, and `histograms` arrays (series in sorted key order).
pub fn render_metrics_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": [");
    for (i, (key, value)) in snapshot.counters.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        push_key(&mut out, key);
        let _ = write!(out, ", \"value\": {value}}}");
    }
    out.push_str("\n  ],\n  \"gauges\": [");
    for (i, (key, value)) in snapshot.gauges.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        push_key(&mut out, key);
        let _ = write!(out, ", \"value\": {value}}}");
    }
    out.push_str("\n  ],\n  \"histograms\": [");
    for (i, (key, h)) in snapshot.histograms.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        push_key(&mut out, key);
        let _ = write!(out, ", \"bounds\": {:?}", h.bounds);
        let _ = write!(out, ", \"counts\": {:?}", h.counts);
        let _ = write!(out, ", \"sum\": {}, \"count\": {}}}", h.sum, h.count);
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders a trace snapshot as a JSON document: retained `head` and
/// `tail` event arrays plus the `seen`/`dropped` accounting.
pub fn render_trace_json(snapshot: &TraceSnapshot) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"seen\": {},", snapshot.seen);
    let _ = writeln!(out, "  \"dropped\": {},", snapshot.dropped());
    for (field, events) in [("head", &snapshot.head), ("tail", &snapshot.tail)] {
        let _ = write!(out, "  \"{field}\": [");
        for (i, e) in events.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(out, "{{\"at_secs\": {}, \"kind\": ", e.at_secs);
            write_str(&mut out, e.kind);
            out.push_str(", \"detail\": ");
            write_str(&mut out, &e.detail);
            out.push('}');
        }
        out.push_str(if field == "head" {
            "\n  ],\n"
        } else {
            "\n  ]\n"
        });
    }
    out.push_str("}\n");
    out
}

fn write_file(path: &str, contents: &str) -> Result<(), DcnrError> {
    std::fs::write(path, contents).map_err(|e| DcnrError::Io {
        path: path.to_string(),
        message: format!("write: {e}"),
    })
}

/// Writes a metrics snapshot to `path`: JSON when the extension is
/// `.json`, Prometheus text exposition otherwise.
pub fn write_metrics_file(path: &str, snapshot: &MetricsSnapshot) -> Result<(), DcnrError> {
    let json = Path::new(path)
        .extension()
        .is_some_and(|ext| ext.eq_ignore_ascii_case("json"));
    let contents = if json {
        render_metrics_json(snapshot)
    } else {
        dcnr_telemetry::prometheus::render(snapshot)
    };
    write_file(path, &contents)
}

/// Writes a trace snapshot to `path` as JSON.
pub fn write_trace_file(path: &str, snapshot: &TraceSnapshot) -> Result<(), DcnrError> {
    write_file(path, &render_trace_json(snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use dcnr_telemetry::metrics::Registry;
    use dcnr_telemetry::trace::{TraceBuffer, TraceEvent};

    fn sample_metrics() -> MetricsSnapshot {
        let r = Registry::default();
        r.counter("dcnr_events_total", &[("kind", "a \"q\"")])
            .add(3);
        r.gauge("dcnr_depth", &[]).add(-2);
        r.histogram("dcnr_lat_micros", &[("phase", "x")], &[10, 100])
            .observe(7);
        r.snapshot()
    }

    #[test]
    fn metrics_json_parses_and_round_trips_values() {
        let text = render_metrics_json(&sample_metrics());
        let doc = json::parse(&text).expect("valid JSON");
        let counters = doc.get("counters").unwrap().as_arr().unwrap();
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].get("value").unwrap().as_u64().unwrap(), 3);
        assert_eq!(
            counters[0]
                .get("labels")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str()
                .unwrap(),
            "a \"q\""
        );
        let hists = doc.get("histograms").unwrap().as_arr().unwrap();
        assert_eq!(hists[0].get("sum").unwrap().as_u64().unwrap(), 7);
        assert_eq!(hists[0].get("counts").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn trace_json_parses_and_keeps_accounting() {
        let b = TraceBuffer::with_capacity(1);
        for i in 0..4u64 {
            b.record(TraceEvent {
                at_secs: i,
                kind: "test",
                detail: format!("e{i}\n"),
            });
        }
        let text = render_trace_json(&b.snapshot());
        let doc = json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("seen").unwrap().as_u64().unwrap(), 4);
        assert_eq!(doc.get("dropped").unwrap().as_u64().unwrap(), 2);
        let head = doc.get("head").unwrap().as_arr().unwrap();
        assert_eq!(head[0].get("detail").unwrap().as_str().unwrap(), "e0\n");
        assert_eq!(doc.get("tail").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn metrics_file_format_follows_the_extension() {
        let dir = std::env::temp_dir().join("dcnr-telemetry-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = sample_metrics();

        let prom = dir.join("metrics.prom");
        write_metrics_file(prom.to_str().unwrap(), &snap).unwrap();
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(dcnr_telemetry::prometheus::validate(&text).is_ok());
        assert!(text.contains("# TYPE dcnr_events_total counter"));

        let as_json = dir.join("metrics.json");
        write_metrics_file(as_json.to_str().unwrap(), &snap).unwrap();
        let text = std::fs::read_to_string(&as_json).unwrap();
        assert!(json::parse(&text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
