//! Sweep checkpointing: per-replica JSON shards plus a manifest.
//!
//! A checkpointed sweep persists every completed replica's comparison
//! rows under a run directory:
//!
//! ```text
//! <dir>/manifest.json       the full sweep configuration
//! <dir>/replica-0003.json   replica 3's rows, verdict, and seed
//! ```
//!
//! Shards double as the cross-sweep **artifact cache**: a rerun (or
//! `dcnr sweep --resume <dir>`) loads valid shards instead of
//! re-executing their replicas, and the manifest guards against reusing
//! shards from a different configuration.
//!
//! Exactness contract: floats are stored as IEEE-754 bit patterns
//! (`u64` JSON integers, with a human-readable `*_text` companion), so
//! a loaded shard reproduces the original [`Comparison`] values **bit
//! for bit** — a resumed sweep aggregates to byte-identical output. A
//! shard written by a retried attempt records which attempt produced
//! it, because retries run under a fresh derived seed.

use crate::error::DcnrError;
use crate::experiments::Comparison;
use crate::json::{self, Json};
use crate::scenario::{Scenario, ScenarioKind};
use crate::sweep::SweepConfig;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The checkpoint format version this build writes and accepts.
pub const CHECKPOINT_VERSION: u64 = 1;

/// One completed replica, as persisted in its shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaRecord {
    /// Replica index within the sweep.
    pub replica: usize,
    /// Which attempt produced the result (0 = first run; retries run
    /// under a fresh derived seed).
    pub attempt: u32,
    /// The seed the successful attempt actually ran under.
    pub seed: u64,
    /// The replica's own acceptance verdict.
    pub passed: bool,
    /// Every comparison row the replica produced, in plan order.
    pub comparisons: Vec<Comparison>,
}

fn io_err(path: &Path, op: &str, e: std::io::Error) -> DcnrError {
    DcnrError::Io {
        path: path.display().to_string(),
        message: format!("{op}: {e}"),
    }
}

fn format_err(path: &Path, message: impl Into<String>) -> DcnrError {
    DcnrError::Checkpoint {
        path: path.display().to_string(),
        message: message.into(),
    }
}

/// Creates the run directory (and parents) if needed.
pub fn prepare_dir(dir: &Path) -> Result<(), DcnrError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create directory", e))
}

/// The shard path for `replica` under `dir`.
pub fn shard_path(dir: &Path, replica: usize) -> PathBuf {
    dir.join(format!("replica-{replica:04}.json"))
}

/// The manifest path under `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

/// Writes `text` atomically: a temp file in the same directory, then a
/// rename, so an interrupted sweep never leaves a half-written shard.
fn write_atomic(path: &Path, text: &str) -> Result<(), DcnrError> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text).map_err(|e| io_err(&tmp, "write", e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, "rename into place", e))
}

fn push_f64_fields(out: &mut String, indent: &str, name: &str, value: f64) {
    let _ = write!(out, "{indent}\"{name}_bits\": {}, ", value.to_bits());
    let _ = write!(out, "\"{name}_text\": ");
    json::write_str(out, &format!("{value}"));
}

fn read_f64_bits(value: &Json, name: &str) -> Result<f64, String> {
    value.get(&format!("{name}_bits"))?.as_f64_bits()
}

/// Serializes a replica record to its shard text.
pub fn render_shard(record: &ReplicaRecord) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"version\": {CHECKPOINT_VERSION},");
    let _ = writeln!(out, "  \"replica\": {},", record.replica);
    let _ = writeln!(out, "  \"attempt\": {},", record.attempt);
    let _ = writeln!(out, "  \"seed\": {},", record.seed);
    let _ = writeln!(out, "  \"passed\": {},", record.passed);
    let _ = writeln!(out, "  \"comparisons\": [");
    for (i, c) in record.comparisons.iter().enumerate() {
        out.push_str("    {\"metric\": ");
        json::write_str(&mut out, &c.metric);
        out.push_str(", ");
        push_f64_fields(&mut out, "", "paper", c.paper);
        out.push_str(", ");
        push_f64_fields(&mut out, "", "measured", c.measured);
        out.push('}');
        if i + 1 < record.comparisons.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Persists `record` as `dir/replica-NNNN.json` (atomically).
pub fn write_shard(dir: &Path, record: &ReplicaRecord) -> Result<(), DcnrError> {
    write_atomic(&shard_path(dir, record.replica), &render_shard(record))
}

/// Loads the shard for `replica`, if present.
///
/// Returns `Ok(None)` when the shard does not exist; a shard that
/// exists but is malformed, claims a different replica index, or is
/// from another checkpoint version yields a named
/// [`DcnrError::Checkpoint`] (the supervisor records the reason and
/// re-executes the replica).
pub fn read_shard(dir: &Path, replica: usize) -> Result<Option<ReplicaRecord>, DcnrError> {
    let path = shard_path(dir, replica);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(&path, "read", e)),
    };
    parse_shard(&text, replica)
        .map(Some)
        .map_err(|m| format_err(&path, m))
}

fn parse_shard(text: &str, replica: usize) -> Result<ReplicaRecord, String> {
    let v = json::parse(text)?;
    let version = v.get("version")?.as_u64()?;
    if version != CHECKPOINT_VERSION {
        return Err(format!(
            "version {version} (this build writes {CHECKPOINT_VERSION})"
        ));
    }
    let stored = v.get("replica")?.as_usize()?;
    if stored != replica {
        return Err(format!("shard claims replica {stored}, expected {replica}"));
    }
    let mut comparisons = Vec::new();
    for item in v.get("comparisons")?.as_arr()? {
        comparisons.push(Comparison {
            metric: item.get("metric")?.as_str()?.to_string(),
            paper: read_f64_bits(item, "paper")?,
            measured: read_f64_bits(item, "measured")?,
        });
    }
    Ok(ReplicaRecord {
        replica,
        attempt: v.get("attempt")?.as_u64()? as u32,
        seed: v.get("seed")?.as_u64()?,
        passed: v.get("passed")?.as_bool()?,
        comparisons,
    })
}

/// The persisted sweep configuration: everything that affects replica
/// results (worker count deliberately excluded — it never does).
///
/// `scenario_debug` is a safety net: resume rebuilds the scenario from
/// the explicit fields and then requires its `Debug` rendering to match
/// the stored one, so any future scenario knob that is not (yet)
/// serialized here fails loudly instead of silently resuming a
/// different workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Scenario kind (CLI name).
    pub kind: ScenarioKind,
    /// The sweep's master seed.
    pub master_seed: u64,
    /// Number of replicas.
    pub seeds: u32,
    /// Bootstrap resamples per metric.
    pub resamples: usize,
    /// Bootstrap confidence level.
    pub confidence: f64,
    /// Intra-DC fleet scale.
    pub scale: f64,
    /// Backbone edge count.
    pub edges: u32,
    /// Backbone vendor count.
    pub vendors: u32,
    /// Backbone minimum links per edge.
    pub min_links_per_edge: u32,
    /// Hazard ablation: automated remediation enabled.
    pub automation: bool,
    /// Hazard ablation: drain policy enabled.
    pub drain: bool,
    /// Chaos fault rates, in the CLI's flag order.
    pub chaos_rates: [f64; 6],
    /// Zoo topology id (the survivability lifespan member).
    pub topology: String,
    /// `format!("{:?}")` of the base scenario, for exact matching.
    pub scenario_debug: String,
}

impl Manifest {
    /// Captures the manifest for `config`.
    pub fn from_config(config: &SweepConfig) -> Self {
        let s = &config.base;
        Self {
            kind: s.kind,
            master_seed: s.seed,
            seeds: config.seeds,
            resamples: config.resamples,
            confidence: config.confidence,
            scale: s.scale,
            edges: s.backbone.edges,
            vendors: s.backbone.vendors,
            min_links_per_edge: s.backbone.min_links_per_edge,
            automation: s.hazard.automation_enabled,
            drain: s.hazard.drain_policy_enabled,
            chaos_rates: [
                s.chaos.corrupt_rate,
                s.chaos.truncate_rate,
                s.chaos.loss_rate,
                s.chaos.dup_rate,
                s.chaos.reorder_rate,
                s.chaos.store_fail_rate,
            ],
            topology: s.topology.to_string(),
            scenario_debug: format!("{s:?}"),
        }
    }

    /// Rebuilds the sweep configuration this manifest describes.
    ///
    /// `jobs` is caller-chosen (it never affects results). Fails with a
    /// named error when the rebuilt scenario's `Debug` rendering does
    /// not reproduce `scenario_debug` — the manifest predates a
    /// scenario knob this build has.
    pub fn to_config(&self, jobs: usize) -> Result<SweepConfig, DcnrError> {
        let mut base = Scenario {
            kind: self.kind,
            ..Scenario::intra(self.master_seed)
        }
        .with_seed(self.master_seed);
        base.scale = self.scale;
        base.backbone.edges = self.edges;
        base.backbone.vendors = self.vendors;
        base.backbone.min_links_per_edge = self.min_links_per_edge;
        base.hazard.automation_enabled = self.automation;
        base.hazard.drain_policy_enabled = self.drain;
        base.chaos.corrupt_rate = self.chaos_rates[0];
        base.chaos.truncate_rate = self.chaos_rates[1];
        base.chaos.loss_rate = self.chaos_rates[2];
        base.chaos.dup_rate = self.chaos_rates[3];
        base.chaos.reorder_rate = self.chaos_rates[4];
        base.chaos.store_fail_rate = self.chaos_rates[5];
        base.topology = dcnr_topology::zoo::find(&self.topology)
            .ok_or_else(|| DcnrError::Checkpoint {
                path: "manifest.json".into(),
                message: format!(
                    "stored topology {:?} is not in this build's zoo (valid ids: {})",
                    self.topology,
                    dcnr_topology::zoo::id_list()
                ),
            })?
            .id;
        let rebuilt = format!("{base:?}");
        if rebuilt != self.scenario_debug {
            return Err(DcnrError::Checkpoint {
                path: "manifest.json".into(),
                message: "the stored scenario has knobs this build cannot rebuild \
                          (manifest written by an incompatible version)"
                    .into(),
            });
        }
        Ok(SweepConfig {
            base,
            seeds: self.seeds,
            jobs,
            resamples: self.resamples,
            confidence: self.confidence,
        })
    }

    /// Requires `self` (the stored manifest) to describe the same sweep
    /// as `current`; the error names the first differing field.
    pub fn ensure_matches(&self, current: &Manifest, dir: &Path) -> Result<(), DcnrError> {
        let mismatch = |field: &str| {
            Err(format_err(
                &manifest_path(dir),
                format!(
                    "existing checkpoint is for a different sweep ({field} differs); \
                     use a fresh directory or matching flags"
                ),
            ))
        };
        if self.kind != current.kind {
            return mismatch("scenario");
        }
        if self.master_seed != current.master_seed {
            return mismatch("master seed");
        }
        if self.seeds != current.seeds {
            return mismatch("seeds");
        }
        if self.resamples != current.resamples {
            return mismatch("resamples");
        }
        if self.confidence.to_bits() != current.confidence.to_bits() {
            return mismatch("confidence");
        }
        if self.scenario_debug != current.scenario_debug {
            return mismatch("scenario knobs");
        }
        Ok(())
    }
}

/// Serializes the manifest text.
pub fn render_manifest(m: &Manifest) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"version\": {CHECKPOINT_VERSION},");
    let _ = writeln!(out, "  \"scenario\": \"{}\",", m.kind.name());
    let _ = writeln!(out, "  \"master_seed\": {},", m.master_seed);
    let _ = writeln!(out, "  \"seeds\": {},", m.seeds);
    let _ = writeln!(out, "  \"resamples\": {},", m.resamples);
    push_f64_fields(&mut out, "  ", "confidence", m.confidence);
    out.push_str(",\n");
    push_f64_fields(&mut out, "  ", "scale", m.scale);
    out.push_str(",\n");
    let _ = writeln!(out, "  \"edges\": {},", m.edges);
    let _ = writeln!(out, "  \"vendors\": {},", m.vendors);
    let _ = writeln!(out, "  \"min_links_per_edge\": {},", m.min_links_per_edge);
    let _ = writeln!(out, "  \"automation\": {},", m.automation);
    let _ = writeln!(out, "  \"drain\": {},", m.drain);
    for (i, name) in CHAOS_RATE_FIELDS.iter().enumerate() {
        push_f64_fields(&mut out, "  ", name, m.chaos_rates[i]);
        out.push_str(",\n");
    }
    out.push_str("  \"topology\": ");
    json::write_str(&mut out, &m.topology);
    out.push_str(",\n");
    out.push_str("  \"scenario_debug\": ");
    json::write_str(&mut out, &m.scenario_debug);
    out.push('\n');
    let _ = writeln!(out, "}}");
    out
}

const CHAOS_RATE_FIELDS: [&str; 6] = [
    "corrupt_rate",
    "truncate_rate",
    "loss_rate",
    "dup_rate",
    "reorder_rate",
    "store_fail_rate",
];

/// Writes `dir/manifest.json` (atomically).
pub fn write_manifest(dir: &Path, m: &Manifest) -> Result<(), DcnrError> {
    write_atomic(&manifest_path(dir), &render_manifest(m))
}

/// Loads `dir/manifest.json`, if present.
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>, DcnrError> {
    let path = manifest_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(&path, "read", e)),
    };
    parse_manifest(&text)
        .map(Some)
        .map_err(|m| format_err(&path, m))
}

fn parse_manifest(text: &str) -> Result<Manifest, String> {
    let v = json::parse(text)?;
    let version = v.get("version")?.as_u64()?;
    if version != CHECKPOINT_VERSION {
        return Err(format!(
            "version {version} (this build writes {CHECKPOINT_VERSION})"
        ));
    }
    let kind_name = v.get("scenario")?.as_str()?;
    let kind = ScenarioKind::parse(kind_name)
        .ok_or_else(|| format!("unknown scenario kind {kind_name:?}"))?;
    let mut chaos_rates = [0.0; 6];
    for (i, name) in CHAOS_RATE_FIELDS.iter().enumerate() {
        chaos_rates[i] = read_f64_bits(&v, name)?;
    }
    Ok(Manifest {
        kind,
        master_seed: v.get("master_seed")?.as_u64()?,
        seeds: v.get("seeds")?.as_u64()? as u32,
        resamples: v.get("resamples")?.as_usize()?,
        confidence: read_f64_bits(&v, "confidence")?,
        scale: read_f64_bits(&v, "scale")?,
        edges: v.get("edges")?.as_u64()? as u32,
        vendors: v.get("vendors")?.as_u64()? as u32,
        min_links_per_edge: v.get("min_links_per_edge")?.as_u64()? as u32,
        automation: v.get("automation")?.as_bool()?,
        drain: v.get("drain")?.as_bool()?,
        chaos_rates,
        // Manifests written before the zoo existed have no topology
        // key; default it so they fail through `to_config`'s clearer
        // debug-string safety net instead of a raw parse error.
        topology: match v.get("topology") {
            Ok(t) => t.as_str()?.to_string(),
            Err(_) => "fat-tree".to_string(),
        },
        scenario_debug: v.get("scenario_debug")?.as_str()?.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ReplicaRecord {
        ReplicaRecord {
            replica: 3,
            attempt: 1,
            seed: 0xDEAD_BEEF_0BAD_F00D,
            passed: true,
            comparisons: vec![
                Comparison {
                    metric: "fig15 median (h)".into(),
                    paper: 1710.0,
                    measured: 1689.4375,
                },
                Comparison {
                    metric: "odd \"name\"\nwith controls \u{2}".into(),
                    paper: 0.1,
                    measured: -0.30000000000000004,
                },
            ],
        }
    }

    #[test]
    fn shard_round_trips_bit_exactly() {
        let rec = record();
        let text = render_shard(&rec);
        let back = parse_shard(&text, 3).unwrap();
        assert_eq!(back, rec);
        assert_eq!(
            back.comparisons[1].measured.to_bits(),
            rec.comparisons[1].measured.to_bits()
        );
    }

    #[test]
    fn shard_rejects_wrong_replica_and_version() {
        let text = render_shard(&record());
        let err = parse_shard(&text, 4).unwrap_err();
        assert!(err.contains("claims replica 3"), "{err}");
        let bumped = text.replace("\"version\": 1", "\"version\": 99");
        assert!(parse_shard(&bumped, 3).unwrap_err().contains("version 99"));
    }

    #[test]
    fn shard_rejects_truncation() {
        let text = render_shard(&record());
        let cut = &text[..text.len() / 2];
        assert!(parse_shard(cut, 3).is_err());
    }

    #[test]
    fn manifest_round_trips_and_rebuilds_the_config() {
        let base = Scenario {
            scale: 0.5,
            ..Scenario::backbone(0xFEED)
        };
        let config = SweepConfig::new(base, 6, 4);
        let m = Manifest::from_config(&config);
        let back = parse_manifest(&render_manifest(&m)).unwrap();
        assert_eq!(back, m);
        let rebuilt = back.to_config(2).unwrap();
        assert_eq!(rebuilt.seeds, 6);
        assert_eq!(rebuilt.jobs, 2, "jobs is caller-chosen");
        assert_eq!(format!("{:?}", rebuilt.base), format!("{base:?}"));
    }

    #[test]
    fn manifest_preserves_the_topology_knob() {
        let base = Scenario {
            scale: 0.25,
            topology: "bcube",
            ..Scenario::survivability(7)
        };
        let m = Manifest::from_config(&SweepConfig::new(base, 3, 2));
        let back = parse_manifest(&render_manifest(&m)).unwrap();
        assert_eq!(back, m);
        let rebuilt = back.to_config(1).unwrap();
        assert_eq!(rebuilt.base.topology, "bcube");
        assert_eq!(format!("{:?}", rebuilt.base), format!("{base:?}"));
        // A manifest naming a topology this build doesn't register is a
        // named checkpoint error, not a silent fat-tree resume.
        let mut alien = back.clone();
        alien.topology = "hypercube".into();
        let err = alien.to_config(1).unwrap_err();
        assert_eq!(err.kind(), "checkpoint");
        assert!(err.to_string().contains("hypercube"), "{err}");
    }

    #[test]
    fn manifest_mismatch_names_the_field() {
        let a = Manifest::from_config(&SweepConfig::new(Scenario::intra(1), 4, 1));
        let mut b = a.clone();
        b.seeds = 8;
        let err = a.ensure_matches(&b, Path::new("/tmp/x")).unwrap_err();
        assert!(err.to_string().contains("seeds"), "{err}");
        let mut c = a.clone();
        c.master_seed = 2;
        let err = a.ensure_matches(&c, Path::new("/tmp/x")).unwrap_err();
        assert!(err.to_string().contains("master seed"), "{err}");
        assert!(a.ensure_matches(&a.clone(), Path::new("/tmp/x")).is_ok());
    }

    #[test]
    fn shard_files_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("dcnr-ckpt-test-{}", std::process::id()));
        prepare_dir(&dir).unwrap();
        let rec = record();
        write_shard(&dir, &rec).unwrap();
        assert_eq!(read_shard(&dir, 3).unwrap(), Some(rec));
        assert_eq!(read_shard(&dir, 7).unwrap(), None);
        // Corrupt shard: named checkpoint error, not a panic.
        std::fs::write(shard_path(&dir, 5), "{ nope").unwrap();
        let err = read_shard(&dir, 5).unwrap_err();
        assert_eq!(err.kind(), "checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
