//! Property-based tests for the statistics foundation.

use dcnr_stats::{
    fit_exponential, fit_linear, Categorical, Ecdf, Exponential, Histogram, LogHistogram,
    QuantileCurve, RenewalLog, Summary, YearSeries,
};
use proptest::prelude::*;

fn finite_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6..1.0e6f64, 1..200)
}

fn positive_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1.0e-3..1.0e6f64, 2..200)
}

proptest! {
    #[test]
    fn summary_bounds_and_monotone_percentiles(data in finite_vec(), p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        let s = Summary::new(&data).unwrap();
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.min() <= s.median() && s.median() <= s.max());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(s.percentile(lo) <= s.percentile(hi) + 1e-9);
        prop_assert!(s.stddev() >= 0.0);
        prop_assert_eq!(s.count(), data.len());
    }

    #[test]
    fn summary_sorted_is_sorted(data in finite_vec()) {
        let s = Summary::new(&data).unwrap();
        prop_assert!(s.sorted().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ecdf_is_a_cdf(data in finite_vec(), x in -1.0e6..1.0e6f64) {
        let e = Ecdf::new(&data).unwrap();
        let v = e.eval(x);
        prop_assert!((0.0..=1.0).contains(&v));
        // Monotone: eval at max element is 1.
        let max = data.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(e.eval(max), 1.0);
    }

    #[test]
    fn ecdf_quantile_inverts_eval(data in finite_vec(), q in 0.01..1.0f64) {
        let e = Ecdf::new(&data).unwrap();
        let v = e.quantile(q);
        // At least a q fraction of the sample is <= quantile(q).
        prop_assert!(e.eval(v) + 1e-12 >= q);
    }

    #[test]
    fn quantile_curve_monotone_in_both_axes(data in positive_vec()) {
        let c = QuantileCurve::new(&data).unwrap();
        let pts = c.points();
        prop_assert!(pts.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        prop_assert!((pts.last().unwrap().0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expfit_recovers_exact_models(a in 0.1..1000.0f64, b in -5.0..5.0f64) {
        let pts: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let x = i as f64 / 30.0;
                (x, a * (b * x).exp())
            })
            .collect();
        let fit = fit_exponential(&pts).unwrap();
        prop_assert!((fit.a - a).abs() / a < 1e-6, "a: {} vs {}", fit.a, a);
        prop_assert!((fit.b - b).abs() < 1e-6, "b: {} vs {}", fit.b, b);
        prop_assert!(fit.r2_log > 0.999999);
    }

    #[test]
    fn linfit_recovers_exact_lines(m in -100.0..100.0f64, c0 in -100.0..100.0f64) {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, m * i as f64 + c0)).collect();
        let fit = fit_linear(&pts).unwrap();
        prop_assert!((fit.slope - m).abs() < 1e-6);
        prop_assert!((fit.intercept - c0).abs() < 1e-4);
    }

    #[test]
    fn categorical_probabilities_sum_to_one(weights in proptest::collection::vec(0.0..100.0f64, 1..20)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let c = Categorical::new(&weights).unwrap();
        let total: f64 = (0..c.len()).map(|i| c.probability(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn categorical_samples_in_range(weights in proptest::collection::vec(0.0..100.0f64, 1..20), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let c = Categorical::new(&weights).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let idx = c.sample_index(&mut rng);
            prop_assert!(idx < weights.len());
            prop_assert!(weights[idx] > 0.0, "zero-weight category sampled");
        }
    }

    #[test]
    fn exponential_quantile_monotone(mean in 0.001..1.0e6f64, q1 in 0.0..0.99f64, q2 in 0.0..0.99f64) {
        let d = Exponential::new(mean);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(d.quantile(lo) <= d.quantile(hi));
        prop_assert!(d.quantile(lo) >= 0.0);
    }

    #[test]
    fn histogram_conserves_count(values in proptest::collection::vec(-100.0..200.0f64, 0..100)) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow + h.overflow, values.len() as u64);
    }

    #[test]
    fn log_histogram_conserves_count(values in proptest::collection::vec(1.0e-7..1.0e3f64, 0..100)) {
        let mut h = LogHistogram::new(-5, 2, 2);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
    }

    #[test]
    fn year_series_addition_is_linear(
        entries in proptest::collection::vec((2011..=2017i32, -100.0..100.0f64), 0..50)
    ) {
        let mut s = YearSeries::new(2011, 2017);
        let mut expected = 0.0;
        for &(y, v) in &entries {
            s.add(y, v);
            expected += v;
        }
        prop_assert!((s.total() - expected).abs() < 1e-6);
    }

    #[test]
    fn renewal_log_conserves_time(
        events in proptest::collection::vec((0.0..1000.0f64, 0.0..50.0f64), 0..40)
    ) {
        let window = 2000.0;
        let mut log = RenewalLog::new(window);
        let mut t = 0.0;
        for &(gap, dur) in &events {
            t += gap + 0.001;
            if t >= window {
                break;
            }
            if log.record_failure(t) {
                let end = (t + dur).min(window - 0.0005);
                if end > t {
                    log.record_recovery(end);
                    t = end;
                }
            }
        }
        prop_assert!((log.uptime() + log.downtime() - window).abs() < 1e-9);
        prop_assert!(log.downtime() >= 0.0);
        if let Some(est) = log.estimate() {
            prop_assert!(est.mtbf >= 0.0 && est.mtbf <= window);
            prop_assert!((0.0..=1.0).contains(&est.availability));
            if let Some(mttr) = est.mttr {
                prop_assert!(mttr >= 0.0);
            }
        }
    }
}
