//! Random samplers for the failure generators.
//!
//! All stochastic behaviour in `dcnr` is driven through these samplers so
//! that the simulator only ever draws from a seeded [`rand::Rng`] —
//! keeping runs byte-for-byte reproducible. The set matches what the
//! failure modelling needs:
//!
//! * [`Exponential`] — inter-failure times of Poisson failure processes
//!   (the paper finds time-to-failure "closely follows exponential
//!   functions", §6).
//! * [`Weibull`] — hardware wear-out hazards with shape ≠ 1 (used for
//!   ablations on the memorylessness assumption).
//! * [`LogNormal`] — repair / resolution durations, which are
//!   multiplicative and heavy-tailed (p75IRT analysis, §5.6).
//! * [`Categorical`] — discrete mixes: root causes (Table 2), remediation
//!   actions (§4.1.3), severity levels (Fig. 4).

use rand::Rng;

/// A distribution from which `f64` samples can be drawn.
pub trait Sampler {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The distribution's mean.
    fn mean(&self) -> f64;
}

/// Exponential distribution with the given mean (`1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite; a zero or
    /// negative mean would make the generated event stream meaningless,
    /// so this is a programming error, not a recoverable condition.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "exponential mean must be positive, got {mean}"
        );
        Self { mean }
    }

    /// Quantile function (inverse CDF) at `q ∈ [0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&q),
            "quantile requires q in [0,1), got {q}"
        );
        -self.mean * (1.0 - q).ln()
    }
}

impl Sampler for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-transform sampling; gen::<f64>() is in [0, 1), so
        // 1 - u is in (0, 1] and ln() is finite.
        let u: f64 = rng.gen();
        -self.mean * (1.0 - u).ln()
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Weibull distribution with scale `λ` and shape `k`.
///
/// `k = 1` degenerates to the exponential; `k > 1` models wear-out
/// (increasing hazard), `k < 1` infant mortality (decreasing hazard).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    scale: f64,
    shape: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Panics
    ///
    /// Panics if `scale` or `shape` are not strictly positive and finite.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "weibull scale must be positive"
        );
        assert!(
            shape > 0.0 && shape.is_finite(),
            "weibull shape must be positive"
        );
        Self { scale, shape }
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }
}

impl Sampler for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.scale * (-(1.0 - u).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu` and `sigma` (i.e. `exp(N(mu, sigma²))`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the underlying normal parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "lognormal mu must be finite");
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "lognormal sigma must be non-negative"
        );
        Self { mu, sigma }
    }

    /// Creates a log-normal with the given *distribution* mean and a
    /// multiplicative spread `sigma` of the underlying normal. This is
    /// the convenient form for "repairs take about `m` hours, give or
    /// take a factor of `e^sigma`".
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "lognormal mean must be positive"
        );
        let mu = mean.ln() - sigma * sigma / 2.0;
        Self::new(mu, sigma)
    }
}

impl Sampler for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Categorical distribution over `0..n` with explicit weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds a categorical distribution from non-negative weights.
    /// Weights need not sum to one; they are normalized.
    ///
    /// Returns `None` if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Some(Self { cumulative })
    }

    /// Draws an index in `0..len`.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point finds the first cumulative weight > u.
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether there are no categories (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of category `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        self.cumulative[i] - prev
    }
}

/// Standard normal via Box–Muller (polar form avoided for determinism of
/// exactly two uniforms per sample).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Lanczos approximation of the gamma function, sufficient for Weibull
/// means (relative error < 1e-10 over the parameter ranges we use).
fn gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9 (Lanczos), kept verbatim from the
    // published table even where they exceed f64 precision.
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDC_2018)
    }

    fn sample_mean<S: Sampler>(s: &S, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| s.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(1710.0);
        let m = sample_mean(&d, 200_000);
        assert!((m - 1710.0).abs() / 1710.0 < 0.02, "mean = {m}");
    }

    #[test]
    fn exponential_quantile() {
        let d = Exponential::new(2.0);
        assert_eq!(d.quantile(0.0), 0.0);
        // median = mean * ln 2
        assert!((d.quantile(0.5) - 2.0 * std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_mean() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(5.0, 1.0);
        assert!((w.mean() - 5.0).abs() < 1e-9);
        let m = sample_mean(&w, 200_000);
        assert!((m - 5.0).abs() / 5.0 < 0.02, "mean = {m}");
    }

    #[test]
    fn weibull_mean_shape_two() {
        // mean = λ·Γ(1.5) = λ·(√π)/2
        let w = Weibull::new(2.0, 2.0);
        let expected = 2.0 * (std::f64::consts::PI).sqrt() / 2.0;
        assert!((w.mean() - expected).abs() < 1e-9);
    }

    #[test]
    fn lognormal_with_mean_has_that_mean() {
        let d = LogNormal::with_mean(10.0, 1.2);
        assert!((d.mean() - 10.0).abs() < 1e-9);
        let m = sample_mean(&d, 400_000);
        assert!((m - 10.0).abs() / 10.0 < 0.05, "mean = {m}");
    }

    #[test]
    fn lognormal_samples_positive() {
        let d = LogNormal::with_mean(3.0, 2.0);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn categorical_normalizes_and_covers() {
        let c = Categorical::new(&[17.0, 13.0, 13.0, 12.0, 10.0, 5.0, 29.0]).unwrap();
        assert_eq!(c.len(), 7);
        let total: f64 = (0..7).map(|i| c.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((c.probability(0) - 0.1717).abs() < 1e-3);
    }

    #[test]
    fn categorical_empirical_frequencies() {
        let c = Categorical::new(&[0.5, 0.3, 0.2]).unwrap();
        let mut r = rng();
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[c.sample_index(&mut r)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.2).abs() < 0.01);
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_none());
        assert!(Categorical::new(&[0.0, 0.0]).is_none());
        assert!(Categorical::new(&[1.0, -0.5]).is_none());
        assert!(Categorical::new(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn categorical_zero_weight_category_never_sampled() {
        let c = Categorical::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            assert_ne!(c.sample_index(&mut r), 1);
        }
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(3.0) - 2.0).abs() < 1e-10);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }
}
