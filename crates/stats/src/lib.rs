//! # dcnr-stats
//!
//! Statistics foundation for the `dcnr` reliability study — the numerical
//! toolkit behind every table and figure of *"A Large Scale Study of Data
//! Center Network Reliability"* (IMC'18).
//!
//! The paper's analysis reduces to a small set of statistical operations,
//! all of which are implemented here from scratch (no external stats
//! dependencies):
//!
//! * **Summaries** ([`summary`]) — mean, variance, standard deviation,
//!   min/max, and percentiles with linear interpolation. Used for every
//!   "50% of edges fail less than once every 1710 h"-style statement.
//! * **Empirical distributions** ([`ecdf`]) — sorted percentile curves of
//!   the kind plotted in Figures 15–18 ("MTBF as a function of the
//!   percentage of edges with that MTBF or lower").
//! * **Exponential model fitting** ([`expfit`]) — least-squares fits of
//!   `y = a·e^(b·p)` with the coefficient of determination `R²`, exactly
//!   the models the paper reports (`MTBF_edge(p) = 462.88·e^{2.3408·p}`,
//!   `R² = 0.94`, and friends).
//! * **Linear fitting and correlation** ([`linfit`]) — used for the
//!   switches-vs-employees proportionality claim (Fig. 6) and the
//!   p75IRT-vs-fleet-size correlation (Fig. 14).
//! * **Samplers** ([`dist`]) — exponential, Weibull, log-normal, and
//!   categorical samplers used by the failure generators.
//! * **Histograms** ([`histogram`]) — linear- and log-binned counting.
//! * **Time series helpers** ([`timeseries`]) — yearly bucketing used by
//!   every longitudinal figure (Figs. 3, 5, 7–13).
//! * **Renewal-process estimators** ([`renewal`]) — MTBF/MTTR estimation
//!   from alternating up/down interval logs, including right-censoring of
//!   the trailing up interval.
//! * **Kaplan–Meier survival estimation** ([`kaplan`]) — the principled
//!   treatment of right-censored time-to-failure data (entities that
//!   never failed inside the observation window).
//! * **Cross-replica aggregation** ([`aggregate`]) — folding per-seed
//!   sweep measurements into mean/σ/percentile bands with bootstrap
//!   confidence intervals for the mean, so paper point estimates can be
//!   compared against a measured band instead of a single realization.
//!
//! Everything is deterministic and allocation-conscious; functions accept
//! slices and never touch global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod bootstrap;
pub mod dist;
pub mod ecdf;
pub mod expfit;
pub mod histogram;
pub mod kaplan;
pub mod linfit;
pub mod renewal;
pub mod summary;
pub mod timeseries;

pub use aggregate::{aggregate, aggregate_partial, bootstrap_mean, fold, Band, PartialBand};
pub use bootstrap::{bootstrap_exponential_fit, BootstrapFit, ParamInterval};
pub use dist::{Categorical, Exponential, LogNormal, Sampler, Weibull};
pub use ecdf::{Ecdf, QuantileCurve};
pub use expfit::{fit_exponential, ExpFit};
pub use histogram::{Histogram, LogHistogram};
pub use kaplan::{KaplanMeier, Observation};
pub use linfit::{fit_linear, pearson_correlation, LinFit};
pub use renewal::{RenewalEstimate, RenewalLog};
pub use summary::Summary;
pub use timeseries::YearSeries;
