//! Yearly time-series bucketing.
//!
//! Every longitudinal figure in §5 (Figs. 3, 5, 7–13) aggregates SEVs into
//! calendar-year buckets over the 2011–2017 study span. [`YearSeries`]
//! is a small fixed-range map from year to an accumulated value, with the
//! arithmetic the figures need (normalization to a baseline, per-capita
//! rates, fractions of a total).

/// A dense year-indexed series of `f64` values over `[first_year, last_year]`.
#[derive(Debug, Clone, PartialEq)]
pub struct YearSeries {
    first_year: i32,
    values: Vec<f64>,
}

impl YearSeries {
    /// Creates a zero-filled series covering `first_year..=last_year`.
    ///
    /// # Panics
    ///
    /// Panics if `last_year < first_year`.
    pub fn new(first_year: i32, last_year: i32) -> Self {
        assert!(last_year >= first_year, "year range reversed");
        Self {
            first_year,
            values: vec![0.0; (last_year - first_year + 1) as usize],
        }
    }

    /// The covered years, in order.
    pub fn years(&self) -> impl Iterator<Item = i32> + '_ {
        (self.first_year..).take(self.values.len())
    }

    /// First covered year.
    pub fn first_year(&self) -> i32 {
        self.first_year
    }

    /// Last covered year.
    pub fn last_year(&self) -> i32 {
        self.first_year + self.values.len() as i32 - 1
    }

    fn index(&self, year: i32) -> Option<usize> {
        if year < self.first_year {
            return None;
        }
        let idx = (year - self.first_year) as usize;
        (idx < self.values.len()).then_some(idx)
    }

    /// Adds `amount` to `year`'s bucket. Out-of-range years are ignored —
    /// incidents outside the study window simply do not appear in the
    /// figures.
    pub fn add(&mut self, year: i32, amount: f64) {
        if let Some(i) = self.index(year) {
            self.values[i] += amount;
        }
    }

    /// Sets `year`'s value, ignoring out-of-range years.
    pub fn set(&mut self, year: i32, value: f64) {
        if let Some(i) = self.index(year) {
            self.values[i] = value;
        }
    }

    /// Value at `year`, or 0.0 outside the range.
    pub fn get(&self, year: i32) -> f64 {
        self.index(year).map_or(0.0, |i| self.values[i])
    }

    /// Sum over all years.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// `(year, value)` pairs in order.
    pub fn points(&self) -> Vec<(i32, f64)> {
        self.years().zip(self.values.iter().copied()).collect()
    }

    /// Element-wise division by `denom`; years where `denom` is zero
    /// yield 0.0 (a device type with no population has no rate — matching
    /// the paper's "some devices have an incident rate of 0, e.g., if they
    /// did not exist in the fleet in a year").
    pub fn per(&self, denom: &YearSeries) -> YearSeries {
        let mut out = self.clone();
        for year in self.years().collect::<Vec<_>>() {
            let d = denom.get(year);
            let v = if d > 0.0 { self.get(year) / d } else { 0.0 };
            out.set(year, v);
        }
        out
    }

    /// Divides every value by a fixed scalar baseline (e.g. "normalized to
    /// the total number of SEVs in 2017", Figs. 8–9).
    pub fn normalized_to(&self, baseline: f64) -> YearSeries {
        assert!(baseline != 0.0, "cannot normalize to a zero baseline");
        let mut out = self.clone();
        for v in &mut out.values {
            *v /= baseline;
        }
        out
    }

    /// Element-wise sum of several series; all must share the same range.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or ranges differ.
    pub fn sum_of(series: &[&YearSeries]) -> YearSeries {
        let first = series.first().expect("sum_of requires at least one series");
        let mut out = YearSeries::new(first.first_year(), first.last_year());
        for s in series {
            assert_eq!(
                (s.first_year(), s.last_year()),
                (first.first_year(), first.last_year()),
                "mismatched year ranges"
            );
            for (year, v) in s.points() {
                out.add(year, v);
            }
        }
        out
    }

    /// Growth factor `last/first` of the series, using the first and last
    /// *nonzero* values (the paper's "total number of network device SEVs
    /// increased by 9.4×" compares 2011 to 2017).
    pub fn growth_factor(&self) -> Option<f64> {
        let nonzero: Vec<f64> = self.values.iter().copied().filter(|v| *v != 0.0).collect();
        match (nonzero.first(), nonzero.last()) {
            (Some(&a), Some(&b)) if nonzero.len() >= 2 => Some(b / a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_and_bounds() {
        let mut s = YearSeries::new(2011, 2017);
        s.add(2011, 2.0);
        s.add(2017, 3.0);
        s.add(2010, 99.0); // ignored
        s.add(2018, 99.0); // ignored
        assert_eq!(s.get(2011), 2.0);
        assert_eq!(s.get(2017), 3.0);
        assert_eq!(s.get(2010), 0.0);
        assert_eq!(s.total(), 5.0);
        assert_eq!(s.first_year(), 2011);
        assert_eq!(s.last_year(), 2017);
    }

    #[test]
    fn years_iterates_in_order() {
        let s = YearSeries::new(2015, 2017);
        assert_eq!(s.years().collect::<Vec<_>>(), vec![2015, 2016, 2017]);
    }

    #[test]
    fn per_capita_handles_zero_population() {
        let mut incidents = YearSeries::new(2011, 2013);
        incidents.add(2012, 10.0);
        incidents.add(2013, 20.0);
        let mut pop = YearSeries::new(2011, 2013);
        pop.set(2012, 100.0);
        pop.set(2013, 200.0);
        // 2011: population zero -> rate zero, not NaN.
        let rate = incidents.per(&pop);
        assert_eq!(rate.get(2011), 0.0);
        assert_eq!(rate.get(2012), 0.1);
        assert_eq!(rate.get(2013), 0.1);
    }

    #[test]
    fn normalized_to_baseline() {
        let mut s = YearSeries::new(2011, 2012);
        s.set(2011, 5.0);
        s.set(2012, 10.0);
        let n = s.normalized_to(10.0);
        assert_eq!(n.get(2011), 0.5);
        assert_eq!(n.get(2012), 1.0);
    }

    #[test]
    #[should_panic(expected = "zero baseline")]
    fn normalize_zero_panics() {
        let s = YearSeries::new(2011, 2012);
        let _ = s.normalized_to(0.0);
    }

    #[test]
    fn sum_of_series() {
        let mut a = YearSeries::new(2011, 2012);
        a.set(2011, 1.0);
        let mut b = YearSeries::new(2011, 2012);
        b.set(2011, 2.0);
        b.set(2012, 3.0);
        let s = YearSeries::sum_of(&[&a, &b]);
        assert_eq!(s.get(2011), 3.0);
        assert_eq!(s.get(2012), 3.0);
    }

    #[test]
    #[should_panic(expected = "mismatched year ranges")]
    fn sum_of_mismatched_panics() {
        let a = YearSeries::new(2011, 2012);
        let b = YearSeries::new(2011, 2013);
        let _ = YearSeries::sum_of(&[&a, &b]);
    }

    #[test]
    fn growth_factor_skips_leading_zeros() {
        let mut s = YearSeries::new(2011, 2017);
        // Device type introduced in 2015 (like FSWs).
        s.set(2015, 2.0);
        s.set(2016, 6.0);
        s.set(2017, 18.8);
        assert!((s.growth_factor().unwrap() - 9.4).abs() < 1e-12);
    }

    #[test]
    fn growth_factor_none_when_insufficient() {
        let mut s = YearSeries::new(2011, 2017);
        assert!(s.growth_factor().is_none());
        s.set(2014, 5.0);
        assert!(s.growth_factor().is_none());
    }
}
