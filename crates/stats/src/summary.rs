//! Descriptive summary statistics.
//!
//! The paper reports means, standard deviations, percentiles, and extrema
//! for edge and vendor MTBF/MTTR (§6.1–§6.3) and percentile resolution
//! times for SEVs (§5.6). [`Summary`] computes all of them in one pass over
//! a sample plus an `O(n log n)` sort for the order statistics.

/// One-shot descriptive statistics over a sample of `f64` observations.
///
/// Construction sorts a copy of the data; all accessors are then `O(1)`
/// except [`Summary::percentile`], which is `O(1)` as well (index
/// arithmetic on the sorted copy).
///
/// # Examples
///
/// ```
/// use dcnr_stats::Summary;
/// let s = Summary::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert_eq!(s.median(), 2.5);
/// ```
#[derive(Debug, Clone)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Summary {
    /// Builds a summary of `data`. Returns `None` if `data` is empty or
    /// contains a non-finite value (NaN/inf would silently poison every
    /// statistic, so they are rejected up front).
    pub fn new(data: &[f64]) -> Option<Self> {
        if data.is_empty() || data.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        // Population variance; the paper's σ values are descriptive, not
        // inferential, so we do not apply Bessel's correction.
        let variance = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Some(Self {
            sorted,
            mean,
            variance,
        })
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.sorted.len() as f64
    }

    /// The `p`-th percentile (`0.0 ..= 100.0`) using linear interpolation
    /// between closest ranks (the "exclusive" definition used by most
    /// spreadsheet software clamps differently; we use the common
    /// `(n-1)·p/100` rank convention).
    ///
    /// `p` outside `[0, 100]` is clamped.
    pub fn percentile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 100.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let rank = (n - 1) as f64 * p / 100.0;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = rank - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// The median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// The 75th percentile — the paper's `p75IRT` statistic (§5.6) uses
    /// this to keep occasional months-long resolutions from dominating.
    pub fn p75(&self) -> f64 {
        self.percentile(75.0)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> f64 {
        self.percentile(90.0)
    }

    /// The 99.99th percentile — used by the capacity-planning module for
    /// conditional risk (§6.1: "We plan edge and link capacity to tolerate
    /// the 99.99th percentile of conditional risk").
    pub fn p9999(&self) -> f64 {
        self.percentile(99.99)
    }

    /// Read-only view of the sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Convenience: mean of a slice, `None` when empty.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::new(&[]).is_none());
    }

    #[test]
    fn rejects_nan_and_inf() {
        assert!(Summary::new(&[1.0, f64::NAN]).is_none());
        assert!(Summary::new(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::new(&[7.5]).unwrap();
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.median(), 7.5);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.percentile(0.0), 7.5);
        assert_eq!(s.percentile(100.0), 7.5);
    }

    #[test]
    fn mean_and_variance() {
        let s = Summary::new(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let s = Summary::new(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        // rank = 3 * 0.5 = 1.5 -> midway between 20 and 30.
        assert!((s.median() - 25.0).abs() < 1e-12);
        // rank = 3 * 0.75 = 2.25 -> 30 + 0.25*10.
        assert!((s.p75() - 32.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let s = Summary::new(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.percentile(-5.0), 1.0);
        assert_eq!(s.percentile(150.0), 3.0);
    }

    #[test]
    fn order_statistics_unsorted_input() {
        let s = Summary::new(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.median(), 5.0);
    }

    #[test]
    fn sum_matches() {
        let s = Summary::new(&[1.5, 2.5, 6.0]).unwrap();
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn free_mean() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }
}
