//! Empirical distributions and percentile curves.
//!
//! Figures 15–18 of the paper plot a reliability statistic (MTBF or MTTR)
//! "as a function of the percentage of edges/vendors with that value or
//! lower" — i.e. the inverse empirical CDF, sampled at each observation.
//! [`QuantileCurve`] produces exactly that series of `(percentile, value)`
//! points, which is then handed to [`crate::expfit::fit_exponential`] to
//! recover the paper's `a·e^{b·p}` models.

/// Empirical cumulative distribution function over a finite sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF. Returns `None` for empty or non-finite input.
    pub fn new(data: &[f64]) -> Option<Self> {
        if data.is_empty() || data.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(Self { sorted })
    }

    /// `P(X <= x)`: fraction of observations at or below `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when we
        // partition on `v <= x`.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse ECDF: the smallest observation `v` such that at least a
    /// `q` fraction (`0.0..=1.0`, clamped) of the sample is `<= v`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if q == 0.0 {
            return self.sorted[0];
        }
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true: construction rejects it).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sorted observations.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// A percentile curve: the `(p, value)` series plotted in Figs. 15–18.
///
/// Each observation `i` (0-based, sorted ascending) is plotted at
/// percentile `p_i = (i + 1) / n`, matching "the percentage of
/// edges with that MTBF or lower" when the i-th edge is included.
#[derive(Debug, Clone)]
pub struct QuantileCurve {
    points: Vec<(f64, f64)>,
}

impl QuantileCurve {
    /// Builds the percentile curve from raw per-entity statistics (e.g.
    /// one MTBF per edge). Returns `None` for empty or non-finite input.
    pub fn new(data: &[f64]) -> Option<Self> {
        let ecdf = Ecdf::new(data)?;
        let n = ecdf.len() as f64;
        let points = ecdf
            .sorted()
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i as f64 + 1.0) / n, v))
            .collect();
        Some(Self { points })
    }

    /// The `(percentile, value)` points, percentile in `(0, 1]`.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Percentile coordinates only.
    pub fn percentiles(&self) -> Vec<f64> {
        self.points.iter().map(|&(p, _)| p).collect()
    }

    /// Value coordinates only.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has no points (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_eval_basic() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn ecdf_quantile_inverts() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.26), 20.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn ecdf_rejects_bad_input() {
        assert!(Ecdf::new(&[]).is_none());
        assert!(Ecdf::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn quantile_curve_points() {
        let q = QuantileCurve::new(&[30.0, 10.0, 20.0]).unwrap();
        let pts = q.points();
        assert_eq!(pts.len(), 3);
        assert!((pts[0].0 - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(pts[0].1, 10.0);
        assert!((pts[2].0 - 1.0).abs() < 1e-12);
        assert_eq!(pts[2].1, 30.0);
    }

    #[test]
    fn quantile_curve_monotone() {
        let q = QuantileCurve::new(&[5.0, 1.0, 4.0, 4.0, 2.0]).unwrap();
        let vals = q.values();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        let ps = q.percentiles();
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
    }
}
