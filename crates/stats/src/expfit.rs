//! Least-squares exponential model fitting.
//!
//! §6.1–§6.2 of the paper model reliability percentile curves as
//! exponential functions of the percentile `p ∈ [0, 1]`:
//!
//! ```text
//! MTBF_edge(p)   = 462.88 · e^(2.3408·p)   (R² = 0.94)
//! MTTR_edge(p)   = 1.513  · e^(4.256·p)    (R² = 0.87)
//! MTTR_vendor(p) = 1.1345 · e^(4.7709·p)   (R² = 0.98)
//! ```
//!
//! "We built the models in this section by fitting an exponential function
//! using the least squares method." We reproduce this with the standard
//! log-linear reduction: fitting `ln y = ln a + b·x` by ordinary least
//! squares, then reporting `R²` both in log space (the space the fit
//! minimizes) and in linear space (goodness against the raw curve).

use crate::linfit::fit_linear;

/// A fitted exponential model `y = a · e^(b·x)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpFit {
    /// Multiplier `a` (the value at `x = 0`).
    pub a: f64,
    /// Exponent rate `b`.
    pub b: f64,
    /// Coefficient of determination computed in log space — the space in
    /// which the least-squares problem is solved.
    pub r2_log: f64,
    /// Coefficient of determination of the back-transformed model against
    /// the raw `y` values. This is the R² a reader would compute against
    /// the plotted curve, and the one we compare to the paper's values.
    pub r2: f64,
}

impl ExpFit {
    /// Evaluates the model at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.a * (self.b * x).exp()
    }

    /// The model's doubling scale: the increase in `x` that doubles `y`.
    pub fn doubling_x(&self) -> f64 {
        std::f64::consts::LN_2 / self.b
    }
}

/// Fits `y = a·e^(b·x)` to `(x, y)` points by least squares on
/// `ln y ~ x`.
///
/// Returns `None` when fewer than two points are supplied, when any `y`
/// is non-positive (its logarithm is undefined), or when all `x` are
/// identical (the slope is indeterminate).
///
/// # Examples
///
/// ```
/// use dcnr_stats::fit_exponential;
/// // Noise-free data from y = 2·e^(3x).
/// let pts: Vec<(f64, f64)> = (0..10)
///     .map(|i| {
///         let x = i as f64 / 10.0;
///         (x, 2.0 * (3.0 * x).exp())
///     })
///     .collect();
/// let fit = fit_exponential(&pts).unwrap();
/// assert!((fit.a - 2.0).abs() < 1e-9);
/// assert!((fit.b - 3.0).abs() < 1e-9);
/// assert!(fit.r2 > 0.999);
/// ```
pub fn fit_exponential(points: &[(f64, f64)]) -> Option<ExpFit> {
    if points.len() < 2 {
        return None;
    }
    if points
        .iter()
        .any(|&(x, y)| !x.is_finite() || y <= 0.0 || !y.is_finite())
    {
        return None;
    }
    let logged: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x, y.ln())).collect();
    let lin = fit_linear(&logged)?;
    let a = lin.intercept.exp();
    let b = lin.slope;

    // R² against the raw (linear-space) values.
    let mean_y = points.iter().map(|&(_, y)| y).sum::<f64>() / points.len() as f64;
    let ss_tot: f64 = points
        .iter()
        .map(|&(_, y)| (y - mean_y) * (y - mean_y))
        .sum();
    let ss_res: f64 = points
        .iter()
        .map(|&(x, y)| {
            let pred = a * (b * x).exp();
            (y - pred) * (y - pred)
        })
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };

    Some(ExpFit {
        a,
        b,
        r2_log: lin.r2,
        r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_points(a: f64, b: f64, n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let x = (i + 1) as f64 / n as f64;
                (x, a * (b * x).exp())
            })
            .collect()
    }

    #[test]
    fn recovers_exact_model() {
        let fit = fit_exponential(&exact_points(462.88, 2.3408, 50)).unwrap();
        assert!((fit.a - 462.88).abs() < 1e-6);
        assert!((fit.b - 2.3408).abs() < 1e-9);
        assert!(fit.r2 > 0.999999);
        assert!(fit.r2_log > 0.999999);
    }

    #[test]
    fn eval_and_doubling() {
        let fit = ExpFit {
            a: 2.0,
            b: std::f64::consts::LN_2,
            r2: 1.0,
            r2_log: 1.0,
        };
        assert!((fit.eval(0.0) - 2.0).abs() < 1e-12);
        assert!((fit.eval(1.0) - 4.0).abs() < 1e-12);
        assert!((fit.doubling_x() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(fit_exponential(&[]).is_none());
        assert!(fit_exponential(&[(0.0, 1.0)]).is_none());
        // Non-positive y.
        assert!(fit_exponential(&[(0.0, 1.0), (1.0, 0.0)]).is_none());
        assert!(fit_exponential(&[(0.0, 1.0), (1.0, -2.0)]).is_none());
        // Constant x.
        assert!(fit_exponential(&[(0.5, 1.0), (0.5, 2.0)]).is_none());
    }

    #[test]
    fn noisy_fit_has_reasonable_r2() {
        // Deterministic "noise": alternate ±10% around the exact model.
        let pts: Vec<(f64, f64)> = exact_points(10.0, 2.0, 40)
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| (x, if i % 2 == 0 { y * 1.1 } else { y * 0.9 }))
            .collect();
        let fit = fit_exponential(&pts).unwrap();
        assert!((fit.b - 2.0).abs() < 0.2, "b = {}", fit.b);
        assert!(fit.r2 > 0.9, "r2 = {}", fit.r2);
    }

    #[test]
    fn r2_is_one_for_constant_target_hit_exactly() {
        // All y equal: ss_tot == 0 and model reproduces them (b ~ 0).
        let pts = [(0.0, 5.0), (0.5, 5.0), (1.0, 5.0)];
        let fit = fit_exponential(&pts).unwrap();
        assert!((fit.a - 5.0).abs() < 1e-9);
        assert!(fit.b.abs() < 1e-12);
        assert_eq!(fit.r2, 1.0);
    }
}
