//! Fixed-bin and logarithmic histograms.
//!
//! Several of the paper's figures are drawn on logarithmic axes spanning
//! many decades (Fig. 3: incident rates from 1e-5 to 1e+1; Fig. 12: MTBI
//! from 1e+3 to 1e+8 device-hours). [`LogHistogram`] buckets observations
//! per decade (or finer) so report rendering can show the same dynamic
//! range; [`Histogram`] covers the linear-axis cases.

/// A linear-bin histogram over `[lo, hi)` with `bins` equal-width buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo`, either bound is non-finite, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "invalid histogram range"
        );
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation. Non-finite values are counted as overflow
    /// rather than dropped, so totals always reconcile.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x >= self.hi {
            self.overflow += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[lo, hi)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

/// A base-10 logarithmic histogram: bucket `i` covers
/// `[10^(min_exp + i/per_decade), 10^(min_exp + (i+1)/per_decade))`.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    min_exp: i32,
    max_exp: i32,
    per_decade: usize,
    counts: Vec<u64>,
    /// Observations below the range, or non-positive.
    pub underflow: u64,
    /// Observations at or above the range, or non-finite.
    pub overflow: u64,
}

impl LogHistogram {
    /// Creates an empty log histogram covering `10^min_exp .. 10^max_exp`
    /// with `per_decade` buckets in each decade.
    ///
    /// # Panics
    ///
    /// Panics if `max_exp <= min_exp` or `per_decade == 0`.
    pub fn new(min_exp: i32, max_exp: i32, per_decade: usize) -> Self {
        assert!(
            max_exp > min_exp,
            "log histogram needs a positive decade span"
        );
        assert!(per_decade > 0, "per_decade must be at least 1");
        let bins = (max_exp - min_exp) as usize * per_decade;
        Self {
            min_exp,
            max_exp,
            per_decade,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation. Non-positive values go to underflow,
    /// non-finite to overflow.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            self.overflow += 1;
            return;
        }
        if x <= 0.0 {
            self.underflow += 1;
            return;
        }
        let pos = (x.log10() - self.min_exp as f64) * self.per_decade as f64;
        if pos < 0.0 {
            self.underflow += 1;
        } else if pos >= self.counts.len() as f64 {
            self.overflow += 1;
        } else {
            self.counts[pos as usize] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[lo, hi)` value range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let step = 1.0 / self.per_decade as f64;
        let lo_exp = self.min_exp as f64 + step * i as f64;
        (10f64.powf(lo_exp), 10f64.powf(lo_exp + step))
    }

    /// The exponent bounds `(min_exp, max_exp)`.
    pub fn exponent_range(&self) -> (i32, i32) {
        (self.min_exp, self.max_exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_range(0), (0.0, 2.0));
    }

    #[test]
    fn linear_nan_goes_to_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn linear_rejects_bad_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn log_binning_decades() {
        // Fig. 3's axis: 1e-5 .. 1e+1, one bucket per decade.
        let mut h = LogHistogram::new(-5, 1, 1);
        h.record(3e-5); // decade [-5, -4)
        h.record(0.5); // decade [-1, 0)
        h.record(5.0); // decade [0, 1)
        h.record(1e-9); // underflow
        h.record(100.0); // overflow
        h.record(0.0); // non-positive -> underflow
        assert_eq!(h.counts().len(), 6);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[4], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.underflow, 2);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn log_bin_range() {
        let h = LogHistogram::new(0, 2, 2);
        let (lo, hi) = h.bin_range(1);
        assert!((lo - 10f64.powf(0.5)).abs() < 1e-9);
        assert!((hi - 10.0).abs() < 1e-9);
        assert_eq!(h.exponent_range(), (0, 2));
    }

    #[test]
    fn log_boundary_values() {
        let mut h = LogHistogram::new(0, 1, 1);
        h.record(1.0); // exactly 10^0 -> first bin
        h.record(10.0); // exactly 10^1 -> overflow
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.overflow, 1);
    }
}
