//! Cross-replica aggregation: folding per-seed measurements into bands.
//!
//! The paper's numbers are point estimates from one seven-year trace.
//! A synthetic apparatus can do better: run the same scenario under N
//! derived seeds and report how much each statistic moves across
//! stochastic realizations. [`Band`] is that answer for one metric —
//! mean, spread, order statistics, and a bootstrap confidence interval
//! for the mean — so a paper value can be judged against a *band* of
//! measurements instead of a single number.
//!
//! The bootstrap here resamples replica-level values (each already an
//! independent realization), reusing the percentile-interval machinery
//! of [`crate::bootstrap`].

use crate::bootstrap::ParamInterval;
use crate::summary::Summary;
use rand::Rng;

/// The cross-seed band for one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Band {
    /// Number of replica values folded in.
    pub n: usize,
    /// Mean across replicas.
    pub mean: f64,
    /// Population standard deviation across replicas.
    pub stddev: f64,
    /// Smallest replica value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Largest replica value.
    pub max: f64,
    /// Bootstrap confidence interval for the mean (`None` when the
    /// sample is a single value — a one-seed "sweep" has no spread).
    pub ci: Option<ParamInterval>,
}

impl Band {
    /// Whether `value` is covered by the band: inside the bootstrap CI
    /// when one exists, otherwise inside the observed `[min, max]`.
    pub fn covers(&self, value: f64) -> bool {
        match &self.ci {
            Some(ci) => ci.contains(value),
            None => (self.min..=self.max).contains(&value),
        }
    }

    /// Half-width of a symmetric two-sigma spread around the mean.
    pub fn two_sigma(&self) -> f64 {
        2.0 * self.stddev
    }
}

/// Folds `values` into a [`Band`] without a confidence interval.
///
/// Returns `None` when `values` is empty or contains a non-finite
/// entry (the same rejection rule as [`Summary::new`]).
pub fn fold(values: &[f64]) -> Option<Band> {
    let s = Summary::new(values)?;
    Some(Band {
        n: s.count(),
        mean: s.mean(),
        stddev: s.stddev(),
        min: s.min(),
        p25: s.percentile(25.0),
        median: s.median(),
        p75: s.p75(),
        max: s.max(),
        ci: None,
    })
}

/// Percentile-bootstrap confidence interval for the mean of `values`.
///
/// Resamples with replacement `resamples` times and takes the two-sided
/// `confidence` percentile interval of the resampled means. Returns
/// `None` for fewer than two values, zero resamples, or a confidence
/// outside `(0, 1)`.
pub fn bootstrap_mean<R: Rng + ?Sized>(
    rng: &mut R,
    values: &[f64],
    resamples: usize,
    confidence: f64,
) -> Option<ParamInterval> {
    if values.len() < 2 || resamples == 0 || !(0.0..1.0).contains(&confidence) {
        return None;
    }
    let estimate = values.iter().sum::<f64>() / values.len() as f64;
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let sum: f64 = (0..values.len())
            .map(|_| values[rng.gen_range(0..values.len())])
            .sum();
        means.push(sum / values.len() as f64);
    }
    means.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let alpha = (1.0 - confidence) / 2.0;
    let n = means.len();
    let lo_idx = ((n as f64 * alpha) as usize).min(n - 1);
    let hi_idx = ((n as f64 * (1.0 - alpha)) as usize).min(n - 1);
    Some(ParamInterval {
        estimate,
        lo: means[lo_idx],
        hi: means[hi_idx],
    })
}

/// [`fold`] plus [`bootstrap_mean`]: the full band for one metric.
///
/// The CI is attached when the sample admits one; a single-value sample
/// still folds (with `ci: None`) so sweeps of one seed degrade
/// gracefully instead of erroring.
pub fn aggregate<R: Rng + ?Sized>(
    rng: &mut R,
    values: &[f64],
    resamples: usize,
    confidence: f64,
) -> Option<Band> {
    let mut band = fold(values)?;
    band.ci = bootstrap_mean(rng, values, resamples, confidence);
    Some(band)
}

/// A [`Band`] computed from a partial result set: the band over the
/// replicas that survived, plus an honest account of how many were
/// planned and how many contributed nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialBand {
    /// The band over the surviving values (`band.n` survivors).
    pub band: Band,
    /// How many replicas were planned (the slot count).
    pub planned: usize,
    /// How many slots were empty (failed, quarantined, killed, or
    /// simply absent from that replica's output).
    pub missing: usize,
}

impl PartialBand {
    /// Whether every planned replica contributed a value.
    pub fn is_complete(&self) -> bool {
        self.missing == 0
    }
}

/// Degraded-mode [`aggregate`]: one `Option<f64>` slot per planned
/// replica, where `None` marks a replica that produced no value for
/// this metric (it crashed, blew its deadline, or was quarantined).
///
/// Survivor values are banded exactly as [`aggregate`] would band them
/// — the same slots with failures elsewhere yield the same band — and
/// the `planned`/`missing` counts let callers report the degradation
/// instead of hiding it. Returns `None` when no slot survived.
pub fn aggregate_partial<R: Rng + ?Sized>(
    rng: &mut R,
    slots: &[Option<f64>],
    resamples: usize,
    confidence: f64,
) -> Option<PartialBand> {
    let survivors: Vec<f64> = slots.iter().copied().flatten().collect();
    let band = aggregate(rng, &survivors, resamples, confidence)?;
    Some(PartialBand {
        band,
        planned: slots.len(),
        missing: slots.len() - survivors.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fold_order_statistics() {
        let b = fold(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(b.n, 4);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 4.0);
        assert!((b.mean - 2.5).abs() < 1e-12);
        assert!((b.median - 2.5).abs() < 1e-12);
        assert!(b.ci.is_none());
    }

    #[test]
    fn fold_rejects_empty_and_nonfinite() {
        assert!(fold(&[]).is_none());
        assert!(fold(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn bootstrap_mean_brackets_the_estimate() {
        let values: Vec<f64> = (0..32).map(|i| 10.0 + (i % 7) as f64).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let ci = bootstrap_mean(&mut rng, &values, 500, 0.95).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        // The CI of the mean is much narrower than the data range.
        assert!(ci.hi - ci.lo < 6.0);
    }

    #[test]
    fn bootstrap_mean_is_deterministic_per_seed() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = bootstrap_mean(&mut StdRng::seed_from_u64(9), &values, 200, 0.9).unwrap();
        let b = bootstrap_mean(&mut StdRng::seed_from_u64(9), &values, 200, 0.9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bootstrap_mean_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(bootstrap_mean(&mut rng, &[1.0], 100, 0.95).is_none());
        assert!(bootstrap_mean(&mut rng, &[1.0, 2.0], 0, 0.95).is_none());
        assert!(bootstrap_mean(&mut rng, &[1.0, 2.0], 100, 1.0).is_none());
    }

    #[test]
    fn aggregate_attaches_ci_and_covers() {
        let values = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10.4];
        let mut rng = StdRng::seed_from_u64(5);
        let band = aggregate(&mut rng, &values, 400, 0.95).unwrap();
        let ci = band.ci.as_ref().expect("ci");
        assert!(ci.contains(band.mean));
        assert!(band.covers(10.0));
        assert!(!band.covers(50.0));
    }

    #[test]
    fn single_value_band_has_no_ci_but_covers_itself() {
        let mut rng = StdRng::seed_from_u64(5);
        let band = aggregate(&mut rng, &[7.0], 400, 0.95).unwrap();
        assert!(band.ci.is_none());
        assert!(band.covers(7.0));
        assert!(!band.covers(7.1));
    }

    #[test]
    fn partial_aggregate_counts_missing_slots() {
        let slots = [Some(1.0), None, Some(3.0), None, Some(2.0)];
        let mut rng = StdRng::seed_from_u64(11);
        let p = aggregate_partial(&mut rng, &slots, 200, 0.95).unwrap();
        assert_eq!(p.planned, 5);
        assert_eq!(p.missing, 2);
        assert_eq!(p.band.n, 3);
        assert!(!p.is_complete());
        assert!((p.band.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_aggregate_matches_full_when_complete() {
        let values = [4.0, 5.5, 3.25, 4.75];
        let slots: Vec<Option<f64>> = values.iter().copied().map(Some).collect();
        let full = aggregate(&mut StdRng::seed_from_u64(2), &values, 300, 0.9).unwrap();
        let partial = aggregate_partial(&mut StdRng::seed_from_u64(2), &slots, 300, 0.9).unwrap();
        assert!(partial.is_complete());
        assert_eq!(partial.band, full, "survivor banding is identical");
    }

    #[test]
    fn partial_aggregate_with_no_survivors_is_none() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(aggregate_partial(&mut rng, &[None, None], 100, 0.95).is_none());
        assert!(aggregate_partial(&mut rng, &[], 100, 0.95).is_none());
    }
}
