//! Ordinary least-squares linear regression and Pearson correlation.
//!
//! Used directly for Fig. 6 (normalized switch count vs. employees — the
//! paper concludes "switches grew in proportion to employees") and Fig. 14
//! (p75 incident resolution time vs. normalized fleet size — "a positive
//! correlation between p75IRT and number of switches"), and indirectly as
//! the solver inside [`crate::expfit`].

/// A fitted line `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination of the fit.
    pub r2: f64,
}

impl LinFit {
    /// Evaluates the fitted line at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a line by ordinary least squares.
///
/// Returns `None` when fewer than two points are given, when any
/// coordinate is non-finite, or when all `x` coincide.
pub fn fit_linear(points: &[(f64, f64)]) -> Option<LinFit> {
    if points.len() < 2 {
        return None;
    }
    if points
        .iter()
        .any(|&(x, y)| !x.is_finite() || !y.is_finite())
    {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|&(x, _)| x).sum::<f64>() / n;
    let mean_y = points.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = points
        .iter()
        .map(|&(x, _)| (x - mean_x) * (x - mean_x))
        .sum();
    let sxy: f64 = points
        .iter()
        .map(|&(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = points
        .iter()
        .map(|&(_, y)| (y - mean_y) * (y - mean_y))
        .sum();
    let ss_res: f64 = points
        .iter()
        .map(|&(x, y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Some(LinFit {
        slope,
        intercept,
        r2,
    })
}

/// Pearson product-moment correlation coefficient `r ∈ [-1, 1]`.
///
/// Returns `None` for fewer than two points, non-finite input, or zero
/// variance in either coordinate.
pub fn pearson_correlation(points: &[(f64, f64)]) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    if points
        .iter()
        .any(|&(x, y)| !x.is_finite() || !y.is_finite())
    {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|&(x, _)| x).sum::<f64>() / n;
    let mean_y = points.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = points
        .iter()
        .map(|&(x, _)| (x - mean_x) * (x - mean_x))
        .sum();
    let syy: f64 = points
        .iter()
        .map(|&(_, y)| (y - mean_y) * (y - mean_y))
        .sum();
    let sxy: f64 = points
        .iter()
        .map(|&(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        let fit = fit_linear(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!((fit.eval(20.0) - 61.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate() {
        assert!(fit_linear(&[]).is_none());
        assert!(fit_linear(&[(1.0, 1.0)]).is_none());
        assert!(fit_linear(&[(1.0, 1.0), (1.0, 2.0)]).is_none());
        assert!(fit_linear(&[(1.0, f64::NAN), (2.0, 1.0)]).is_none());
    }

    #[test]
    fn correlation_signs() {
        let up: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 2.0 * i as f64)).collect();
        let down: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, -2.0 * i as f64)).collect();
        assert!((pearson_correlation(&up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson_correlation(&down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_zero_variance_none() {
        assert!(pearson_correlation(&[(1.0, 2.0), (2.0, 2.0)]).is_none());
        assert!(pearson_correlation(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn noisy_positive_correlation() {
        // y = x with deterministic ± perturbation stays strongly correlated.
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                (x, x + if i % 2 == 0 { 1.0 } else { -1.0 })
            })
            .collect();
        let r = pearson_correlation(&pts).unwrap();
        assert!(r > 0.99, "r = {r}");
    }
}
