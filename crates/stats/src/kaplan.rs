//! Kaplan–Meier survival estimation for right-censored data.
//!
//! The backbone study's observation window truncates time-to-failure
//! observations: an edge that never failed contributes a *censored*
//! uptime, not a failure interval. Naive per-entity MTBF estimates from
//! one or two events are biased toward the window length (which is why
//! [`crate::renewal`]-based distributions exclude single-failure
//! entities). The Kaplan–Meier estimator uses censored observations
//! properly: every at-risk interval contributes to the survival curve
//! whether or not it ended in a failure.
//!
//! `dcnr` uses this to cross-check the Fig. 15 exponential models: the
//! KM median of pooled edge uptimes should agree with the per-edge MTBF
//! median within sampling noise.

/// One observation: a duration and whether it ended in the event
/// (`true`) or was right-censored (`false`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Observed duration (hours, in this codebase's conventions).
    pub duration: f64,
    /// `true` if the event (failure) occurred at `duration`; `false` if
    /// observation stopped there (censoring).
    pub event: bool,
}

/// The Kaplan–Meier product-limit estimator.
#[derive(Debug, Clone)]
pub struct KaplanMeier {
    /// `(time, survival probability just after time)` step points, at
    /// event times only, in increasing time order.
    steps: Vec<(f64, f64)>,
    n: usize,
    events: usize,
}

impl KaplanMeier {
    /// Fits the estimator. Returns `None` if `data` is empty or contains
    /// non-finite or negative durations.
    pub fn fit(data: &[Observation]) -> Option<Self> {
        if data.is_empty()
            || data
                .iter()
                .any(|o| !o.duration.is_finite() || o.duration < 0.0)
        {
            return None;
        }
        let mut sorted: Vec<Observation> = data.to_vec();
        // Sort by time; at equal times, events before censorings (the
        // standard convention: a censored subject at time t was at risk
        // for the event at t).
        sorted.sort_by(|a, b| {
            a.duration
                .partial_cmp(&b.duration)
                .expect("finite")
                .then_with(|| b.event.cmp(&a.event))
        });

        let n = sorted.len();
        let mut at_risk = n as f64;
        let mut survival = 1.0;
        let mut steps = Vec::new();
        let mut events = 0usize;
        let mut i = 0;
        while i < n {
            let t = sorted[i].duration;
            let mut d = 0.0; // events at t
            let mut c = 0.0; // censorings at t
            while i < n && sorted[i].duration == t {
                if sorted[i].event {
                    d += 1.0;
                    events += 1;
                } else {
                    c += 1.0;
                }
                i += 1;
            }
            if d > 0.0 {
                survival *= 1.0 - d / at_risk;
                steps.push((t, survival));
            }
            at_risk -= d + c;
        }
        Some(Self { steps, n, events })
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of uncensored events.
    pub fn events(&self) -> usize {
        self.events
    }

    /// The survival probability `S(t)`: probability of surviving past
    /// `t`. A right-continuous step function starting at 1.
    pub fn survival_at(&self, t: f64) -> f64 {
        let idx = self.steps.partition_point(|&(st, _)| st <= t);
        if idx == 0 {
            1.0
        } else {
            self.steps[idx - 1].1
        }
    }

    /// The step points `(event time, survival)`.
    pub fn steps(&self) -> &[(f64, f64)] {
        &self.steps
    }

    /// Median survival time: the earliest event time where `S(t) ≤ 0.5`,
    /// or `None` if the curve never drops that far (heavy censoring).
    pub fn median(&self) -> Option<f64> {
        self.steps.iter().find(|&&(_, s)| s <= 0.5).map(|&(t, _)| t)
    }

    /// Restricted mean survival time up to `horizon`: the area under
    /// `S(t)` on `[0, horizon]` — a well-defined mean even under
    /// censoring.
    pub fn restricted_mean(&self, horizon: f64) -> f64 {
        let mut area = 0.0;
        let mut prev_t = 0.0;
        let mut prev_s = 1.0;
        for &(t, s) in &self.steps {
            if t >= horizon {
                break;
            }
            area += prev_s * (t - prev_t);
            prev_t = t;
            prev_s = s;
        }
        area + prev_s * (horizon - prev_t).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(duration: f64, event: bool) -> Observation {
        Observation { duration, event }
    }

    #[test]
    fn no_censoring_matches_empirical_survival() {
        let data: Vec<Observation> = [1.0, 2.0, 3.0, 4.0].iter().map(|&d| obs(d, true)).collect();
        let km = KaplanMeier::fit(&data).unwrap();
        assert_eq!(km.survival_at(0.5), 1.0);
        assert!((km.survival_at(1.0) - 0.75).abs() < 1e-12);
        assert!((km.survival_at(2.5) - 0.5).abs() < 1e-12);
        assert!((km.survival_at(4.0) - 0.0).abs() < 1e-12);
        assert_eq!(km.median(), Some(2.0));
        assert_eq!(km.events(), 4);
    }

    #[test]
    fn textbook_censored_example() {
        // Events at 1 and 3; censored at 2 and 4.
        let data = [
            obs(1.0, true),
            obs(2.0, false),
            obs(3.0, true),
            obs(4.0, false),
        ];
        let km = KaplanMeier::fit(&data).unwrap();
        // S(1) = 3/4; at t=3, at-risk = 2 -> S = 3/4 * 1/2 = 3/8.
        assert!((km.survival_at(1.5) - 0.75).abs() < 1e-12);
        assert!((km.survival_at(3.5) - 0.375).abs() < 1e-12);
        assert_eq!(km.median(), Some(3.0));
    }

    #[test]
    fn all_censored_curve_stays_at_one() {
        let data = [obs(5.0, false), obs(9.0, false)];
        let km = KaplanMeier::fit(&data).unwrap();
        assert_eq!(km.survival_at(100.0), 1.0);
        assert_eq!(km.median(), None);
        assert_eq!(km.events(), 0);
        // Restricted mean equals the horizon when nothing ever fails.
        assert!((km.restricted_mean(50.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn censoring_raises_survival_vs_treating_as_events() {
        let censored = [obs(1.0, true), obs(2.0, false), obs(3.0, true)];
        let as_events = [obs(1.0, true), obs(2.0, true), obs(3.0, true)];
        let km_c = KaplanMeier::fit(&censored).unwrap();
        let km_e = KaplanMeier::fit(&as_events).unwrap();
        assert!(km_c.survival_at(2.5) > km_e.survival_at(2.5));
    }

    #[test]
    fn restricted_mean_of_exponential_sample_approximates_mean() {
        // Deterministic exponential-ish grid: quantiles of Exp(100).
        let data: Vec<Observation> = (1..100)
            .map(|i| {
                let q = i as f64 / 100.0;
                obs(-100.0 * (1.0 - q).ln(), true)
            })
            .collect();
        let km = KaplanMeier::fit(&data).unwrap();
        let rm = km.restricted_mean(10_000.0);
        assert!((rm - 100.0).abs() < 10.0, "restricted mean {rm}");
        let med = km.median().unwrap();
        assert!(
            (med - 100.0 * std::f64::consts::LN_2).abs() < 3.0,
            "median {med}"
        );
    }

    #[test]
    fn ties_events_before_censorings() {
        // A censored subject at t was at risk for the event at t.
        let data = [
            obs(2.0, true),
            obs(2.0, false),
            obs(2.0, true),
            obs(5.0, true),
        ];
        let km = KaplanMeier::fit(&data).unwrap();
        // At t=2: 4 at risk, 2 events -> S = 0.5; censoring does not
        // change the denominator for those events.
        assert!((km.survival_at(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(KaplanMeier::fit(&[]).is_none());
        assert!(KaplanMeier::fit(&[obs(-1.0, true)]).is_none());
        assert!(KaplanMeier::fit(&[obs(f64::NAN, true)]).is_none());
    }

    #[test]
    fn survival_is_monotone_nonincreasing() {
        let data: Vec<Observation> = (0..50)
            .map(|i| obs((i * 7 % 23) as f64 + 1.0, i % 3 != 0))
            .collect();
        let km = KaplanMeier::fit(&data).unwrap();
        let mut last = 1.0;
        for &(_, s) in km.steps() {
            assert!(s <= last + 1e-12);
            assert!((0.0..=1.0).contains(&s));
            last = s;
        }
    }
}
