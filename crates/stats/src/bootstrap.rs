//! Bootstrap confidence intervals for fitted models.
//!
//! The paper reports point estimates for its exponential models
//! (`MTBF_edge(p) = 462.88·e^{2.3408p}`) with an R² but no uncertainty.
//! With ~90 edges and ~40 vendors behind those curves, the coefficients
//! carry real sampling error; when we compare our measured fits against
//! the paper's, the honest question is whether the paper's values fall
//! inside our fit's confidence interval — not whether two point
//! estimates coincide.
//!
//! [`bootstrap_exponential_fit`] resamples the underlying per-entity
//! values with replacement, rebuilds the quantile curve, refits, and
//! reports percentile intervals for `a` and `b`.

use crate::ecdf::QuantileCurve;
use crate::expfit::{fit_exponential, ExpFit};
use rand::Rng;

/// A bootstrap interval for one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamInterval {
    /// Point estimate from the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

impl ParamInterval {
    /// Whether `value` falls inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Bootstrap result for an exponential quantile-curve fit.
#[derive(Debug, Clone)]
pub struct BootstrapFit {
    /// The original fit.
    pub fit: ExpFit,
    /// Interval for the multiplier `a`.
    pub a: ParamInterval,
    /// Interval for the rate `b`.
    pub b: ParamInterval,
    /// Number of resamples that admitted a fit.
    pub successful_resamples: usize,
}

/// Bootstraps the exponential quantile fit of `values` with
/// `resamples` draws at the given two-sided `confidence` (e.g. 0.95).
///
/// Returns `None` when the original sample cannot be fitted, fewer than
/// three values exist, or fewer than half the resamples admit a fit.
pub fn bootstrap_exponential_fit<R: Rng + ?Sized>(
    rng: &mut R,
    values: &[f64],
    resamples: usize,
    confidence: f64,
) -> Option<BootstrapFit> {
    if values.len() < 3 || resamples == 0 || !(0.0..1.0).contains(&confidence) {
        return None;
    }
    let curve = QuantileCurve::new(values)?;
    let fit = fit_exponential(curve.points())?;

    let mut a_samples = Vec::with_capacity(resamples);
    let mut b_samples = Vec::with_capacity(resamples);
    let mut resample = vec![0.0f64; values.len()];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = values[rng.gen_range(0..values.len())];
        }
        let Some(c) = QuantileCurve::new(&resample) else {
            continue;
        };
        let Some(f) = fit_exponential(c.points()) else {
            continue;
        };
        a_samples.push(f.a);
        b_samples.push(f.b);
    }
    if a_samples.len() * 2 < resamples {
        return None;
    }
    let alpha = (1.0 - confidence) / 2.0;
    let interval = |samples: &mut Vec<f64>, estimate: f64| {
        samples.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let n = samples.len();
        let lo_idx = ((n as f64 * alpha) as usize).min(n - 1);
        let hi_idx = ((n as f64 * (1.0 - alpha)) as usize).min(n - 1);
        ParamInterval {
            estimate,
            lo: samples[lo_idx],
            hi: samples[hi_idx],
        }
    };
    let successful = a_samples.len();
    Some(BootstrapFit {
        fit,
        a: interval(&mut a_samples, fit.a),
        b: interval(&mut b_samples, fit.b),
        successful_resamples: successful,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exponential_population(a: f64, b: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let p = (i as f64 + 0.5) / n as f64;
                a * (b * p).exp()
            })
            .collect()
    }

    #[test]
    fn intervals_cover_the_truth_for_clean_data() {
        let values = exponential_population(462.88, 2.3408, 90);
        let mut rng = StdRng::seed_from_u64(1);
        let boot = bootstrap_exponential_fit(&mut rng, &values, 400, 0.95).unwrap();
        assert!(boot.a.contains(462.88), "a interval {:?}", boot.a);
        assert!(boot.b.contains(2.3408), "b interval {:?}", boot.b);
        assert!(boot.successful_resamples >= 200);
        assert!(boot.a.lo <= boot.a.estimate && boot.a.estimate <= boot.a.hi);
    }

    #[test]
    fn intervals_shrink_with_sample_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let small =
            bootstrap_exponential_fit(&mut rng, &exponential_population(10.0, 2.0, 15), 300, 0.9)
                .unwrap();
        let large =
            bootstrap_exponential_fit(&mut rng, &exponential_population(10.0, 2.0, 200), 300, 0.9)
                .unwrap();
        assert!(
            large.b.width() < small.b.width(),
            "{} vs {}",
            large.b.width(),
            small.b.width()
        );
    }

    #[test]
    fn degenerate_inputs_are_none() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(bootstrap_exponential_fit(&mut rng, &[1.0, 2.0], 100, 0.95).is_none());
        assert!(bootstrap_exponential_fit(&mut rng, &[1.0, 2.0, 3.0], 0, 0.95).is_none());
        assert!(bootstrap_exponential_fit(&mut rng, &[1.0, 2.0, 3.0], 100, 1.5).is_none());
        // Non-positive values cannot be fitted.
        assert!(bootstrap_exponential_fit(&mut rng, &[0.0, 1.0, 2.0], 100, 0.95).is_none());
    }

    #[test]
    fn deterministic_for_seeded_rng() {
        let values = exponential_population(5.0, 1.5, 40);
        let a =
            bootstrap_exponential_fit(&mut StdRng::seed_from_u64(7), &values, 200, 0.9).unwrap();
        let b =
            bootstrap_exponential_fit(&mut StdRng::seed_from_u64(7), &values, 200, 0.9).unwrap();
        assert_eq!(a.a, b.a);
        assert_eq!(a.b, b.b);
    }

    #[test]
    fn wider_confidence_widens_interval() {
        let values = exponential_population(5.0, 1.5, 40);
        let narrow =
            bootstrap_exponential_fit(&mut StdRng::seed_from_u64(9), &values, 400, 0.5).unwrap();
        let wide =
            bootstrap_exponential_fit(&mut StdRng::seed_from_u64(9), &values, 400, 0.99).unwrap();
        assert!(wide.b.width() >= narrow.b.width());
    }
}
