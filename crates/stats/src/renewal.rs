//! Renewal-process estimators: MTBF/MTTR from up/down interval logs.
//!
//! The backbone study (§6) measures, per edge and per fiber vendor, the
//! mean time between failures and mean time to recovery from repair
//! tickets. A ticket stream for one entity is an alternating sequence of
//! *up* intervals (working) and *down* intervals (being repaired).
//! [`RenewalLog`] accumulates failure/recovery timestamps for one entity
//! and produces a [`RenewalEstimate`].
//!
//! Two measurement subtleties that the estimators handle explicitly:
//!
//! * **Right censoring.** At the end of the observation window most
//!   entities are up; the trailing (incomplete) up interval is *not* an
//!   observed time-between-failures. MTBF uses the standard
//!   operating-time / failure-count estimator, which accounts for the
//!   censored tail without treating it as a full interval.
//! * **Window clipping.** Failures in flight at the window edges yield
//!   partial down intervals; they count toward downtime but a repair that
//!   never completes within the window is excluded from MTTR (its true
//!   duration is unknown).

/// Timestamped up/down history of a single monitored entity, in hours
/// relative to the observation window start.
#[derive(Debug, Clone)]
pub struct RenewalLog {
    window_hours: f64,
    /// (fail_time, recover_time) pairs; `recover_time` is `None` while the
    /// failure is still open.
    outages: Vec<(f64, Option<f64>)>,
}

impl RenewalLog {
    /// Creates an empty log for an observation window of `window_hours`.
    ///
    /// # Panics
    ///
    /// Panics if the window is not strictly positive and finite.
    pub fn new(window_hours: f64) -> Self {
        assert!(
            window_hours > 0.0 && window_hours.is_finite(),
            "observation window must be positive"
        );
        Self {
            window_hours,
            outages: Vec::new(),
        }
    }

    /// Records a failure at time `t` (hours into the window).
    ///
    /// Returns `false` (and ignores the event) if `t` is outside the
    /// window, non-finite, not after the previous event, or if a failure
    /// is already open — a real ticket stream can contain duplicates and
    /// the analysis must be robust to them, mirroring the paper's
    /// automated e-mail parsing pipeline.
    pub fn record_failure(&mut self, t: f64) -> bool {
        if !t.is_finite() || t < 0.0 || t > self.window_hours {
            return false;
        }
        if let Some(&(fail, recover)) = self.outages.last() {
            match recover {
                None => return false, // already down
                Some(r) if t < r || t < fail => return false,
                _ => {}
            }
        }
        self.outages.push((t, None));
        true
    }

    /// Records a recovery at time `t`. Returns `false` if no failure is
    /// open or `t` precedes the open failure or lies outside the window.
    pub fn record_recovery(&mut self, t: f64) -> bool {
        if !t.is_finite() || t < 0.0 || t > self.window_hours {
            return false;
        }
        match self.outages.last_mut() {
            Some((fail, recover @ None)) if t >= *fail => {
                *recover = Some(t);
                true
            }
            _ => false,
        }
    }

    /// Number of failures observed.
    pub fn failures(&self) -> usize {
        self.outages.len()
    }

    /// Whether the entity is down at the end of the window.
    pub fn ends_down(&self) -> bool {
        matches!(self.outages.last(), Some((_, None)))
    }

    /// Total downtime within the window, clipping an open trailing outage
    /// at the window end.
    pub fn downtime(&self) -> f64 {
        self.outages
            .iter()
            .map(|&(fail, recover)| recover.unwrap_or(self.window_hours) - fail)
            .sum()
    }

    /// Total uptime within the window.
    pub fn uptime(&self) -> f64 {
        self.window_hours - self.downtime()
    }

    /// Up-interval observations for survival analysis:
    /// `(duration, ended_in_failure)` per up interval, with the trailing
    /// interval right-censored at the window end when the entity is
    /// still up. Feed these to [`crate::kaplan::KaplanMeier`] for a
    /// censoring-aware time-to-failure distribution.
    pub fn up_observations(&self) -> Vec<(f64, bool)> {
        let mut out = Vec::new();
        let mut cursor = 0.0;
        for &(fail, recover) in &self.outages {
            out.push((fail - cursor, true));
            match recover {
                Some(r) => cursor = r,
                None => return out, // down at window end: no trailing up interval
            }
        }
        if cursor < self.window_hours {
            out.push((self.window_hours - cursor, false));
        }
        out
    }

    /// Produces the MTBF/MTTR estimate, or `None` if no failure was
    /// observed (an entity that never failed contributes no MTBF sample;
    /// the paper's per-entity curves only include entities with failures).
    pub fn estimate(&self) -> Option<RenewalEstimate> {
        if self.outages.is_empty() {
            return None;
        }
        let mtbf = self.uptime() / self.outages.len() as f64;
        let repairs: Vec<f64> = self
            .outages
            .iter()
            .filter_map(|&(fail, recover)| recover.map(|r| r - fail))
            .collect();
        let mttr = if repairs.is_empty() {
            None
        } else {
            Some(repairs.iter().sum::<f64>() / repairs.len() as f64)
        };
        Some(RenewalEstimate {
            mtbf,
            mttr,
            failures: self.outages.len(),
            completed_repairs: repairs.len(),
            availability: self.uptime() / self.window_hours,
        })
    }
}

/// MTBF/MTTR estimate for one entity over one observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenewalEstimate {
    /// Mean operating hours between failures (uptime / failure count).
    pub mtbf: f64,
    /// Mean hours to recovery over *completed* repairs; `None` when every
    /// observed failure is still open at the window end.
    pub mttr: Option<f64>,
    /// Number of failures observed.
    pub failures: usize,
    /// Number of repairs that completed within the window.
    pub completed_repairs: usize,
    /// Fraction of the window the entity was up.
    pub availability: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_no_estimate() {
        let log = RenewalLog::new(100.0);
        assert!(log.estimate().is_none());
        assert_eq!(log.uptime(), 100.0);
    }

    #[test]
    fn single_outage() {
        let mut log = RenewalLog::new(100.0);
        assert!(log.record_failure(40.0));
        assert!(log.record_recovery(50.0));
        let e = log.estimate().unwrap();
        assert_eq!(e.failures, 1);
        assert_eq!(e.completed_repairs, 1);
        assert!((e.mtbf - 90.0).abs() < 1e-12);
        assert_eq!(e.mttr, Some(10.0));
        assert!((e.availability - 0.9).abs() < 1e-12);
    }

    #[test]
    fn open_trailing_outage_clips_at_window() {
        let mut log = RenewalLog::new(100.0);
        log.record_failure(90.0);
        assert!(log.ends_down());
        let e = log.estimate().unwrap();
        // 90 h of uptime / 1 failure.
        assert!((e.mtbf - 90.0).abs() < 1e-12);
        // The open repair contributes no MTTR sample.
        assert_eq!(e.mttr, None);
        assert_eq!(e.completed_repairs, 0);
        assert!((log.downtime() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_outages() {
        let mut log = RenewalLog::new(1000.0);
        for (f, r) in [(100.0, 110.0), (400.0, 430.0), (800.0, 820.0)] {
            assert!(log.record_failure(f));
            assert!(log.record_recovery(r));
        }
        let e = log.estimate().unwrap();
        assert_eq!(e.failures, 3);
        // uptime = 1000 - 60 = 940; MTBF = 940/3.
        assert!((e.mtbf - 940.0 / 3.0).abs() < 1e-9);
        assert!((e.mttr.unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_out_of_order_and_duplicate_events() {
        let mut log = RenewalLog::new(100.0);
        assert!(log.record_failure(50.0));
        assert!(!log.record_failure(60.0)); // already down
        assert!(!log.record_recovery(40.0)); // before the failure
        assert!(log.record_recovery(55.0));
        assert!(!log.record_recovery(56.0)); // nothing open
        assert!(!log.record_failure(10.0)); // goes backwards
        assert!(log.record_failure(70.0));
        assert_eq!(log.failures(), 2);
    }

    #[test]
    fn rejects_outside_window() {
        let mut log = RenewalLog::new(100.0);
        assert!(!log.record_failure(-1.0));
        assert!(!log.record_failure(101.0));
        assert!(!log.record_failure(f64::NAN));
        assert_eq!(log.failures(), 0);
    }

    #[test]
    fn zero_length_repair_allowed() {
        // A repair ticket can open and close in the same reporting
        // granule; MTTR sample is 0 h, not an error.
        let mut log = RenewalLog::new(10.0);
        assert!(log.record_failure(5.0));
        assert!(log.record_recovery(5.0));
        assert_eq!(log.estimate().unwrap().mttr, Some(0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = RenewalLog::new(0.0);
    }

    #[test]
    fn up_observations_with_censored_tail() {
        let mut log = RenewalLog::new(100.0);
        log.record_failure(30.0);
        log.record_recovery(40.0);
        log.record_failure(70.0);
        log.record_recovery(75.0);
        let obs = log.up_observations();
        assert_eq!(obs, vec![(30.0, true), (30.0, true), (25.0, false)]);
    }

    #[test]
    fn up_observations_ending_down_has_no_censored_tail() {
        let mut log = RenewalLog::new(100.0);
        log.record_failure(60.0);
        let obs = log.up_observations();
        assert_eq!(obs, vec![(60.0, true)]);
    }

    #[test]
    fn up_observations_no_failures_is_one_censored_interval() {
        let log = RenewalLog::new(100.0);
        assert_eq!(log.up_observations(), vec![(100.0, false)]);
    }
}
