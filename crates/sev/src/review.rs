//! The SEV review process and root-cause misclassification.
//!
//! §4.2: "Each SEV goes through a review process to verify the accuracy
//! and completeness of the report." §5.1 is frank about the residual
//! noise: "Human classification of root causes implies SEVs can be
//! misclassified" — and 29% of reports end up *undetermined* because
//! "engineers only reported on the incident's symptoms".
//!
//! [`ReviewProcess`] models that noise channel so its effect on Table 2
//! can be quantified: each root cause survives review unchanged with
//! probability `1 − error_rate`; otherwise it is either dropped to
//! undetermined (symptom-only reports) or confused with an adjacent
//! category (maintenance ↔ accident, configuration ↔ bug — the
//! confusions practitioners actually make). The sensitivity experiment:
//! run Table 2 through reviews of increasing error rate and watch how
//! far the distribution drifts.

use crate::record::SevRecord;
use crate::store::SevDb;
use dcnr_faults::RootCause;
use rand::Rng;

/// A model of post-incident review noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReviewProcess {
    /// Probability that a root cause is misrecorded.
    pub error_rate: f64,
    /// Given an error, probability it becomes *undetermined* (the
    /// symptom-only failure mode) rather than a confused category.
    pub undetermined_share: f64,
}

impl ReviewProcess {
    /// A well-run review culture: low error rate, errors mostly
    /// manifesting as undetermined rather than wrong categories.
    pub fn diligent() -> Self {
        Self {
            error_rate: 0.05,
            undetermined_share: 0.8,
        }
    }

    /// Creates a review model.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(error_rate: f64, undetermined_share: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&error_rate),
            "error_rate must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&undetermined_share),
            "undetermined_share must be a probability"
        );
        Self {
            error_rate,
            undetermined_share,
        }
    }

    /// The adjacent-category confusion a reviewer plausibly makes.
    pub fn confused_with(cause: RootCause) -> RootCause {
        match cause {
            // A botched maintenance looks like an accident and vice versa.
            RootCause::Maintenance => RootCause::Accident,
            RootCause::Accident => RootCause::Maintenance,
            // Config errors and software bugs blur together.
            RootCause::Configuration => RootCause::Bug,
            RootCause::Bug => RootCause::Configuration,
            // Hardware misdiagnosed as capacity exhaustion (overload
            // symptoms) and vice versa.
            RootCause::Hardware => RootCause::CapacityPlanning,
            RootCause::CapacityPlanning => RootCause::Hardware,
            // Undetermined stays undetermined.
            RootCause::Undetermined => RootCause::Undetermined,
        }
    }

    /// Reviews one cause.
    pub fn review_cause<R: Rng + ?Sized>(&self, rng: &mut R, cause: RootCause) -> RootCause {
        if rng.gen::<f64>() >= self.error_rate {
            return cause;
        }
        if rng.gen::<f64>() < self.undetermined_share {
            RootCause::Undetermined
        } else {
            Self::confused_with(cause)
        }
    }

    /// Reviews one record in place (deduplicating causes that collapse
    /// together).
    pub fn review_record<R: Rng + ?Sized>(&self, rng: &mut R, record: &mut SevRecord) {
        let mut causes: Vec<RootCause> = record
            .root_causes
            .iter()
            .map(|&c| self.review_cause(rng, c))
            .collect();
        causes.sort();
        causes.dedup();
        record.root_causes = causes;
    }

    /// Produces a reviewed copy of a whole database.
    pub fn review_db<R: Rng + ?Sized>(&self, rng: &mut R, db: &SevDb) -> SevDb {
        db.iter()
            .map(|r| {
                let mut copy = r.clone();
                self.review_record(rng, &mut copy);
                copy
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::severity::SevLevel;
    use dcnr_sim::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db_with_causes(cause: RootCause, n: usize) -> SevDb {
        let mut db = SevDb::new();
        let t = SimTime::from_date(2016, 6, 1).unwrap();
        for i in 0..n {
            db.insert(
                SevLevel::Sev3,
                format!("rsw.dc01.c000.u{:04}", i),
                vec![cause],
                t,
                t,
                "",
            );
        }
        db
    }

    #[test]
    fn zero_error_rate_is_identity() {
        let db = db_with_causes(RootCause::Maintenance, 200);
        let review = ReviewProcess::new(0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let reviewed = review.review_db(&mut rng, &db);
        for (a, b) in db.iter().zip(reviewed.iter()) {
            assert_eq!(a.root_causes, b.root_causes);
        }
    }

    #[test]
    fn full_error_full_undetermined_wipes_categories() {
        let db = db_with_causes(RootCause::Hardware, 100);
        let review = ReviewProcess::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let reviewed = review.review_db(&mut rng, &db);
        for r in reviewed.iter() {
            assert_eq!(r.root_causes, vec![RootCause::Undetermined]);
        }
    }

    #[test]
    fn confusion_is_symmetric_pairs() {
        use RootCause::*;
        for c in RootCause::ALL {
            let confused = ReviewProcess::confused_with(c);
            if c == Undetermined {
                assert_eq!(confused, Undetermined);
            } else {
                assert_ne!(confused, c);
                assert_eq!(ReviewProcess::confused_with(confused), c, "{c} pairing");
            }
        }
    }

    #[test]
    fn error_rate_is_respected_statistically() {
        let db = db_with_causes(RootCause::Configuration, 20_000);
        let review = ReviewProcess::new(0.2, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let reviewed = review.review_db(&mut rng, &db);
        let changed = reviewed
            .iter()
            .filter(|r| r.root_causes != vec![RootCause::Configuration])
            .count() as f64;
        assert!(
            (changed / 20_000.0 - 0.2).abs() < 0.01,
            "changed {}",
            changed / 20_000.0
        );
        // Half of the errors become undetermined, half become Bug.
        let undet = reviewed
            .iter()
            .filter(|r| r.root_causes.contains(&RootCause::Undetermined))
            .count() as f64;
        assert!((undet / 20_000.0 - 0.1).abs() < 0.01);
    }

    #[test]
    fn table2_is_robust_to_diligent_review_noise() {
        // Build a database with the Table 2 mix and verify a diligent
        // review barely moves the distribution (< 3 points absolute).
        let mut db = SevDb::new();
        let t = SimTime::from_date(2015, 3, 1).unwrap();
        let counts = [
            (RootCause::Maintenance, 170),
            (RootCause::Hardware, 130),
            (RootCause::Configuration, 130),
            (RootCause::Bug, 120),
            (RootCause::Accident, 100),
            (RootCause::CapacityPlanning, 50),
            (RootCause::Undetermined, 290),
        ];
        for (cause, n) in counts {
            for i in 0..n {
                db.insert(
                    SevLevel::Sev3,
                    format!("csw.dc01.c000.u{i:04}"),
                    vec![cause],
                    t,
                    t,
                    "",
                );
            }
        }
        let before = db.query().fraction_by_root_cause();
        let mut rng = StdRng::seed_from_u64(4);
        let reviewed = ReviewProcess::diligent().review_db(&mut rng, &db);
        let after = reviewed.query().fraction_by_root_cause();
        // Expected drift: 5% error × 80% to-undetermined × 71%
        // determined mass ≈ 2.9 points on undetermined, less elsewhere.
        for cause in RootCause::ALL {
            let b = before.get(&cause).copied().unwrap_or(0.0);
            let a = after.get(&cause).copied().unwrap_or(0.0);
            assert!((a - b).abs() < 0.04, "{cause}: {b} -> {a}");
        }
        // Undetermined can only grow under review noise.
        assert!(after[&RootCause::Undetermined] >= before[&RootCause::Undetermined] - 1e-9);
    }

    #[test]
    fn review_deduplicates_collapsed_causes() {
        let mut record = SevRecord::new(
            0,
            SevLevel::Sev2,
            "core.dc01.x000.u0000",
            vec![RootCause::Maintenance, RootCause::Accident],
            SimTime::from_date(2014, 1, 1).unwrap(),
            SimTime::from_date(2014, 1, 2).unwrap(),
            "",
        );
        // Full confusion: maintenance<->accident swap; both collapse to
        // the pair, dedup leaves both... run with full undetermined to
        // force a visible collapse instead.
        let review = ReviewProcess::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        review.review_record(&mut rng, &mut record);
        assert_eq!(record.root_causes, vec![RootCause::Undetermined]);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_rate_rejected() {
        let _ = ReviewProcess::new(1.5, 0.5);
    }
}
