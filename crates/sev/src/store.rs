//! The SEV database.
//!
//! "The SEV report dataset resides in a MySQL database. The database
//! contains reports dating to January 2011. ... We use SQL queries to
//! analyze the SEV report dataset for our study." (§4.2)
//!
//! [`SevDb`] is the in-memory stand-in: an append-only table with stable
//! auto-increment ids. The query layer ([`crate::query`]) provides the
//! SQL-shaped operations.

use crate::record::SevRecord;
use crate::severity::SevLevel;
use dcnr_faults::RootCause;
use dcnr_sim::SimTime;

/// An append-only store of SEV reports.
#[derive(Debug, Clone, Default)]
pub struct SevDb {
    records: Vec<SevRecord>,
}

impl SevDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a new report, assigning the next id. Returns the id.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        severity: SevLevel,
        device_name: impl Into<String>,
        root_causes: Vec<RootCause>,
        opened_at: SimTime,
        resolved_at: SimTime,
        impact: impl Into<String>,
    ) -> u64 {
        let id = self.records.len() as u64;
        self.records.push(SevRecord::new(
            id,
            severity,
            device_name,
            root_causes,
            opened_at,
            resolved_at,
            impact,
        ));
        id
    }

    /// Inserts a pre-built record, overwriting its id with the next
    /// auto-increment value. Returns the id.
    pub fn insert_record(&mut self, mut record: SevRecord) -> u64 {
        let id = self.records.len() as u64;
        record.id = id;
        self.records.push(record);
        id
    }

    /// Number of reports.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The report with the given id.
    pub fn get(&self, id: u64) -> Option<&SevRecord> {
        self.records.get(id as usize)
    }

    /// All reports in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &SevRecord> {
        self.records.iter()
    }

    /// All reports as a slice.
    pub fn records(&self) -> &[SevRecord] {
        &self.records
    }
}

impl FromIterator<SevRecord> for SevDb {
    fn from_iter<I: IntoIterator<Item = SevRecord>>(iter: I) -> Self {
        let mut db = SevDb::new();
        for r in iter {
            db.insert_record(r);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(y: i32) -> SimTime {
        SimTime::from_date(y, 6, 1).unwrap()
    }

    #[test]
    fn ids_are_stable_and_sequential() {
        let mut db = SevDb::new();
        let a = db.insert(
            SevLevel::Sev3,
            "rsw.dc01.c000.u0000",
            vec![],
            t(2013),
            t(2013),
            "",
        );
        let b = db.insert(
            SevLevel::Sev2,
            "csw.dc01.c000.u0001",
            vec![],
            t(2014),
            t(2014),
            "",
        );
        assert_eq!((a, b), (0, 1));
        assert_eq!(db.get(0).unwrap().severity, SevLevel::Sev3);
        assert_eq!(db.get(1).unwrap().severity, SevLevel::Sev2);
        assert!(db.get(2).is_none());
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn insert_record_reassigns_id() {
        let mut db = SevDb::new();
        let r = SevRecord::new(
            999,
            SevLevel::Sev1,
            "core.dc01.x000.u0000",
            vec![],
            t(2015),
            t(2015),
            "",
        );
        let id = db.insert_record(r);
        assert_eq!(id, 0);
        assert_eq!(db.get(0).unwrap().id, 0);
    }

    #[test]
    fn from_iterator_collects() {
        let records = (0..5).map(|i| {
            SevRecord::new(
                i,
                SevLevel::Sev3,
                "rsw.dc01.c000.u0000",
                vec![],
                t(2011 + i as i32),
                t(2011 + i as i32),
                "",
            )
        });
        let db: SevDb = records.collect();
        assert_eq!(db.len(), 5);
        assert_eq!(db.iter().count(), 5);
        assert!(!db.is_empty());
    }
}
