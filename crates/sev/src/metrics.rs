//! Reliability metrics over the SEV store (§5.2, §5.6).
//!
//! * **Incident rate** (Fig. 3): `r = i / n` — incidents per active
//!   device of a type in a year. "The incident rate could be larger than
//!   1.0, meaning that each device of the target type caused more than
//!   one network incident on average."
//! * **MTBI** (Fig. 12): mean time between incidents in *device-hours* —
//!   the population's operating hours divided by its incident count.
//! * **p75IRT** (Fig. 13): 75th-percentile incident resolution time,
//!   chosen "to prevent occasional months-long incident recovery times
//!   from dominating the mean".
//!
//! Population-dependent metrics take the population as a closure
//! `Fn(DeviceType, year) -> f64`, keeping this crate independent of the
//! growth model that supplies the numbers.

use crate::severity::SevLevel;
use crate::store::SevDb;
use dcnr_stats::{Summary, YearSeries};
use dcnr_topology::{DeviceType, NetworkDesign};

/// Hours in a calendar year (used for MTBI's device-hours conversion).
fn hours_in_year(year: i32) -> f64 {
    dcnr_sim::StudyCalendar::year(year).hours()
}

/// Metric helpers over a [`SevDb`].
pub trait MetricsExt {
    /// Incidents per active device of `t` in `year` (Fig. 3). Returns
    /// 0.0 when the population is zero ("some devices have an incident
    /// rate of 0, e.g., if they did not exist in the fleet in a year").
    fn incident_rate(
        &self,
        t: DeviceType,
        year: i32,
        population: impl Fn(DeviceType, i32) -> f64,
    ) -> f64;

    /// Mean time between incidents for `t` in `year`, in device-hours
    /// (Fig. 12). `None` when the type recorded no incidents (the figure
    /// leaves those points out rather than plotting infinity).
    fn mtbi_hours(
        &self,
        t: DeviceType,
        year: i32,
        population: impl Fn(DeviceType, i32) -> f64,
    ) -> Option<f64>;

    /// MTBI aggregated over all devices of a network design in `year`
    /// (§5.6's fabric-vs-cluster 3.2× comparison).
    fn design_mtbi_hours(
        &self,
        d: NetworkDesign,
        year: i32,
        population: impl Fn(DeviceType, i32) -> f64,
    ) -> Option<f64>;

    /// 75th-percentile incident resolution time for `t` in `year`, in
    /// hours (Fig. 13). `None` without incidents.
    fn p75irt_hours(&self, t: DeviceType, year: i32) -> Option<f64>;

    /// Per-device SEV rate series by severity level (Fig. 5): yearly
    /// counts of `level` incidents divided by the total fleet size.
    fn sev_rate_series(
        &self,
        level: SevLevel,
        first: i32,
        last: i32,
        total_population: impl Fn(i32) -> f64,
    ) -> YearSeries;
}

impl MetricsExt for SevDb {
    fn incident_rate(
        &self,
        t: DeviceType,
        year: i32,
        population: impl Fn(DeviceType, i32) -> f64,
    ) -> f64 {
        let pop = population(t, year);
        if pop <= 0.0 {
            return 0.0;
        }
        let incidents = self.query().year(year).device_type(t).count();
        incidents as f64 / pop
    }

    fn mtbi_hours(
        &self,
        t: DeviceType,
        year: i32,
        population: impl Fn(DeviceType, i32) -> f64,
    ) -> Option<f64> {
        let incidents = self.query().year(year).device_type(t).count();
        if incidents == 0 {
            return None;
        }
        let pop = population(t, year);
        if pop <= 0.0 {
            return None;
        }
        Some(pop * hours_in_year(year) / incidents as f64)
    }

    fn design_mtbi_hours(
        &self,
        d: NetworkDesign,
        year: i32,
        population: impl Fn(DeviceType, i32) -> f64,
    ) -> Option<f64> {
        let types: Vec<DeviceType> = DeviceType::INTRA_DC
            .iter()
            .copied()
            .filter(|t| t.design() == d)
            .collect();
        let incidents: usize = types
            .iter()
            .map(|&t| self.query().year(year).device_type(t).count())
            .sum();
        if incidents == 0 {
            return None;
        }
        let pop: f64 = types.iter().map(|&t| population(t, year)).sum();
        if pop <= 0.0 {
            return None;
        }
        Some(pop * hours_in_year(year) / incidents as f64)
    }

    fn p75irt_hours(&self, t: DeviceType, year: i32) -> Option<f64> {
        let hours = self.query().year(year).device_type(t).resolution_hours();
        Summary::new(&hours).map(|s| s.p75())
    }

    fn sev_rate_series(
        &self,
        level: SevLevel,
        first: i32,
        last: i32,
        total_population: impl Fn(i32) -> f64,
    ) -> YearSeries {
        let counts = self.query().severity(level).count_by_year(first, last);
        let mut out = YearSeries::new(first, last);
        for (year, c) in counts.points() {
            let pop = total_population(year);
            out.set(year, if pop > 0.0 { c / pop } else { 0.0 });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnr_faults::RootCause;
    use dcnr_sim::{SimDuration, SimTime};

    fn t(y: i32, d: u32) -> SimTime {
        SimTime::from_date(y, 3, d).unwrap()
    }

    fn db_with(n_rsw_2017: usize, n_core_2017: usize) -> SevDb {
        let mut db = SevDb::new();
        for i in 0..n_rsw_2017 {
            let open = t(2017, 1 + (i % 27) as u32);
            db.insert(
                SevLevel::Sev3,
                format!("rsw.dc01.c000.u{:04}", i),
                vec![RootCause::Hardware],
                open,
                open + SimDuration::from_hours(10 + i as u64),
                "",
            );
        }
        for i in 0..n_core_2017 {
            let open = t(2017, 1 + (i % 27) as u32);
            db.insert(
                SevLevel::Sev2,
                format!("core.dc01.x000.u{:04}", i),
                vec![RootCause::Maintenance],
                open,
                open + SimDuration::from_hours(5),
                "",
            );
        }
        db
    }

    #[test]
    fn incident_rate_divides_by_population() {
        let db = db_with(10, 4);
        let rate = db.incident_rate(DeviceType::Rsw, 2017, |_, _| 1000.0);
        assert!((rate - 0.01).abs() < 1e-12);
        // Zero population -> rate 0, not a division blowup.
        assert_eq!(db.incident_rate(DeviceType::Fsw, 2017, |_, _| 0.0), 0.0);
        // No incidents in 2016.
        assert_eq!(db.incident_rate(DeviceType::Rsw, 2016, |_, _| 1000.0), 0.0);
    }

    #[test]
    fn mtbi_device_hours() {
        let db = db_with(10, 0);
        // 1000 devices × 8760 h / 10 incidents = 876 000.
        let mtbi = db.mtbi_hours(DeviceType::Rsw, 2017, |_, _| 1000.0).unwrap();
        assert!((mtbi - 876_000.0).abs() < 1e-6);
        assert!(db.mtbi_hours(DeviceType::Csa, 2017, |_, _| 10.0).is_none());
    }

    #[test]
    fn design_mtbi_pools_types() {
        let mut db = SevDb::new();
        // 2 FSW + 1 SSW incidents in 2017.
        for (name, _) in [
            ("fsw.dc01.p000.u0001", 0),
            ("fsw.dc01.p000.u0002", 0),
            ("ssw.dc01.s000.u0001", 0),
        ] {
            db.insert(SevLevel::Sev3, name, vec![], t(2017, 5), t(2017, 6), "");
        }
        let pop = |ty: DeviceType, _y: i32| match ty {
            DeviceType::Fsw => 100.0,
            DeviceType::Ssw => 50.0,
            DeviceType::Esw => 50.0,
            _ => 0.0,
        };
        let mtbi = db
            .design_mtbi_hours(NetworkDesign::Fabric, 2017, pop)
            .unwrap();
        assert!((mtbi - 200.0 * 8760.0 / 3.0).abs() < 1e-6);
        assert!(db
            .design_mtbi_hours(NetworkDesign::Cluster, 2017, pop)
            .is_none());
    }

    #[test]
    fn p75irt_uses_75th_percentile() {
        let db = db_with(5, 0); // durations 10, 11, 12, 13, 14 h
        let p75 = db.p75irt_hours(DeviceType::Rsw, 2017).unwrap();
        assert!((p75 - 13.0).abs() < 1e-9);
        assert!(db.p75irt_hours(DeviceType::Rsw, 2015).is_none());
    }

    #[test]
    fn sev_rate_series_normalizes_by_fleet() {
        let db = db_with(10, 4);
        let s3 = db.sev_rate_series(SevLevel::Sev3, 2011, 2017, |_| 10_000.0);
        assert!((s3.get(2017) - 0.001).abs() < 1e-12);
        assert_eq!(s3.get(2014), 0.0);
        let s2 = db.sev_rate_series(SevLevel::Sev2, 2011, 2017, |_| 10_000.0);
        assert!((s2.get(2017) - 0.0004).abs() < 1e-12);
    }
}
