//! SEV postmortem document rendering.
//!
//! §4.2 describes what a SEV report contains: "the incident's root
//! cause, the root cause's affect on services, and steps to prevent the
//! incident from happening again" — and walks through three
//! representative reports. [`render_postmortem`] produces that document
//! shape from a [`SevRecord`]: header, timeline, root-cause analysis,
//! and a prevention checklist derived from the cause taxonomy (the
//! "recommended mitigation and recovery procedures" the paper says each
//! report carries).

use crate::record::SevRecord;
use dcnr_faults::RootCause;
use std::fmt::Write as _;

/// Prevention guidance per root cause — distilled from the paper's own
/// implications sections (§5.7, §6.4).
pub fn prevention_checklist(cause: RootCause) -> &'static [&'static str] {
    match cause {
        RootCause::Maintenance => &[
            "Drain traffic from the device before maintenance begins.",
            "Stage the procedure on a canary device first.",
            "Verify automated failover routes around the device under drain.",
        ],
        RootCause::Hardware => &[
            "Confirm automated remediation covers this failure signature.",
            "Review sparing levels and redundancy for the affected tier.",
            "File a vendor RMA and track the faulty component batch.",
        ],
        RootCause::Configuration => &[
            "Require code review for every configuration change.",
            "Canary configuration changes on a small switch set before fleet rollout.",
            "Add an emulation/verification check that would have caught this change.",
        ],
        RootCause::Bug => &[
            "Add a regression test reproducing the crash signature.",
            "Extend fault-injection coverage to this code path.",
            "Schedule the fix for the next firmware/software release train.",
        ],
        RootCause::Accident => &[
            "Label and lock-out equipment adjacent to planned work.",
            "Require a second operator to confirm device-affecting actions.",
        ],
        RootCause::CapacityPlanning => &[
            "Re-run capacity models against observed peak load.",
            "Provision headroom to the p99.99 conditional-risk level.",
        ],
        RootCause::Undetermined => &[
            "Improve monitoring around the affected devices to capture the next occurrence.",
            "Schedule a follow-up review if the symptom recurs within 90 days.",
        ],
    }
}

/// Renders a full postmortem document for one SEV.
pub fn render_postmortem(record: &SevRecord) -> String {
    let mut out = String::new();
    let device = record
        .device_type()
        .map(|t| t.to_string())
        .unwrap_or_else(|_| "unclassified device".to_string());
    let _ = writeln!(
        out,
        "=================================================================="
    );
    let _ = writeln!(out, "{} — SEV report #{}", record.severity, record.id);
    let _ = writeln!(
        out,
        "=================================================================="
    );
    let _ = writeln!(out, "Offending device : {} ({device})", record.device_name);
    let _ = writeln!(
        out,
        "Root cause(s)    : {}",
        record
            .root_causes
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "Timeline");
    let _ = writeln!(out, "--------");
    let _ = writeln!(out, "  {}  root cause manifested", record.opened_at);
    let _ = writeln!(out, "  {}  incident resolved", record.resolved_at);
    let _ = writeln!(out, "  (resolution time: {})", record.resolution_time());
    let _ = writeln!(out);
    let _ = writeln!(out, "Service impact");
    let _ = writeln!(out, "--------------");
    let _ = writeln!(
        out,
        "  {}",
        if record.impact.is_empty() {
            "(not recorded)"
        } else {
            &record.impact
        }
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "Prevention");
    let _ = writeln!(out, "----------");
    for cause in &record.root_causes {
        for step in prevention_checklist(*cause) {
            let _ = writeln!(out, "  [ ] {step}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::severity::SevLevel;
    use dcnr_sim::SimTime;

    fn record() -> SevRecord {
        SevRecord::new(
            42,
            SevLevel::Sev3,
            "rsw.dc04.c021.u0108",
            vec![RootCause::Bug],
            SimTime::from_ymd_hms(2017, 8, 17, 18, 52, 0).unwrap(),
            SimTime::from_ymd_hms(2017, 8, 22, 18, 51, 0).unwrap(),
            "RSW crash whenever software disabled a port.",
        )
    }

    #[test]
    fn postmortem_contains_all_sections() {
        let doc = render_postmortem(&record());
        for needle in [
            "SEV3 — SEV report #42",
            "rsw.dc04.c021.u0108",
            "RSW",
            "bug",
            "Timeline",
            "2017-08-17",
            "2017-08-22",
            "Service impact",
            "RSW crash",
            "Prevention",
            "regression test",
        ] {
            assert!(doc.contains(needle), "missing {needle:?} in:\n{doc}");
        }
    }

    #[test]
    fn every_cause_has_a_nonempty_checklist() {
        for cause in RootCause::ALL {
            assert!(!prevention_checklist(cause).is_empty(), "{cause}");
        }
    }

    #[test]
    fn multi_cause_postmortems_merge_checklists() {
        let mut r = record();
        r.root_causes = vec![RootCause::Maintenance, RootCause::Configuration];
        let doc = render_postmortem(&r);
        assert!(doc.contains("Drain traffic"));
        assert!(doc.contains("code review"));
    }

    #[test]
    fn unclassified_devices_render_gracefully() {
        let mut r = record();
        r.device_name = "dr.pop01.lb.u0001".into();
        let doc = render_postmortem(&r);
        assert!(doc.contains("unclassified device"));
    }

    #[test]
    fn empty_impact_is_marked() {
        let mut r = record();
        r.impact = String::new();
        assert!(render_postmortem(&r).contains("(not recorded)"));
    }
}
