//! One SEV report.
//!
//! "Network SEVs contain details on the incident: the network device
//! implicated in the incident, the duration of the incident (measured
//! from when the root cause manifested until when engineers fixed the
//! root cause), the incident's affects on services." (§4.2)
//!
//! The record deliberately stores only the offending device's *name*;
//! the device type is recovered by parsing the name prefix, as the
//! paper's methodology does (§4.3.1). If a SEV has multiple root causes
//! it counts toward multiple categories; if it has none it is
//! undetermined (§5.1) — the constructor normalizes the empty case.

use crate::severity::SevLevel;
use dcnr_faults::RootCause;
use dcnr_sim::{SimDuration, SimTime};
use dcnr_topology::{parse_device_type, DeviceType, NameError, NetworkDesign};

/// A service-level event report.
#[derive(Debug, Clone, PartialEq)]
pub struct SevRecord {
    /// Stable report id within the owning [`crate::SevDb`].
    pub id: u64,
    /// Severity level (the incident's high-water mark).
    pub severity: SevLevel,
    /// The offending device's convention-formatted name.
    pub device_name: String,
    /// Root causes chosen by the report authors. Never empty: reports
    /// without a determined cause carry `[Undetermined]`.
    pub root_causes: Vec<RootCause>,
    /// When the root cause manifested.
    pub opened_at: SimTime,
    /// When engineers resolved the incident (resolution includes
    /// prevention work, §5.6).
    pub resolved_at: SimTime,
    /// Free-text impact summary (for report rendering; not analyzed).
    pub impact: String,
}

impl SevRecord {
    /// Creates a record, normalizing an empty root-cause list to
    /// `[Undetermined]` and clamping a resolution earlier than the open
    /// time to the open time.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u64,
        severity: SevLevel,
        device_name: impl Into<String>,
        root_causes: Vec<RootCause>,
        opened_at: SimTime,
        resolved_at: SimTime,
        impact: impl Into<String>,
    ) -> Self {
        let root_causes = if root_causes.is_empty() {
            vec![RootCause::Undetermined]
        } else {
            root_causes
        };
        Self {
            id,
            severity,
            device_name: device_name.into(),
            root_causes,
            opened_at,
            resolved_at: resolved_at.max(opened_at),
            impact: impact.into(),
        }
    }

    /// Classifies the offending device by parsing its name prefix —
    /// the §4.3.1 methodology, applied for real.
    pub fn device_type(&self) -> Result<DeviceType, NameError> {
        parse_device_type(&self.device_name)
    }

    /// The network design the offending device belongs to, when the
    /// name parses.
    pub fn design(&self) -> Option<NetworkDesign> {
        self.device_type().ok().map(|t| t.design())
    }

    /// Incident resolution time (open → resolve).
    pub fn resolution_time(&self) -> SimDuration {
        self.resolved_at - self.opened_at
    }

    /// The calendar year the incident opened in — the bucketing key for
    /// every longitudinal figure.
    pub fn year(&self) -> i32 {
        self.opened_at.year()
    }

    /// Whether any root cause matches `cause` (multi-cause SEVs count
    /// toward multiple categories, §5.1).
    pub fn has_root_cause(&self, cause: RootCause) -> bool {
        self.root_causes.contains(&cause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(y: i32, m: u32, d: u32) -> SimTime {
        SimTime::from_date(y, m, d).unwrap()
    }

    #[test]
    fn classification_parses_name() {
        let r = SevRecord::new(
            1,
            SevLevel::Sev3,
            "rsw.dc03.c012.u0431",
            vec![RootCause::Bug],
            t(2017, 8, 17),
            t(2017, 8, 22),
            "switch crash from software bug",
        );
        assert_eq!(r.device_type().unwrap(), DeviceType::Rsw);
        assert_eq!(r.design(), Some(NetworkDesign::Shared));
        assert_eq!(r.year(), 2017);
        assert!((r.resolution_time().as_days() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_device_name_is_an_error_not_a_panic() {
        let r = SevRecord::new(
            2,
            SevLevel::Sev1,
            "dr.pop7.x.1", // the SEV1 case study's DR is not an intra-DC type
            vec![RootCause::Configuration],
            t(2012, 1, 25),
            t(2012, 1, 25),
            "data center outage from incorrect load balancing",
        );
        assert!(r.device_type().is_err());
        assert_eq!(r.design(), None);
    }

    #[test]
    fn empty_root_causes_become_undetermined() {
        let r = SevRecord::new(
            3,
            SevLevel::Sev3,
            "csw.dc01.c000.u0000",
            vec![],
            t(2013, 1, 1),
            t(2013, 1, 2),
            "",
        );
        assert_eq!(r.root_causes, vec![RootCause::Undetermined]);
        assert!(r.has_root_cause(RootCause::Undetermined));
    }

    #[test]
    fn resolution_clamped_to_open() {
        let r = SevRecord::new(
            4,
            SevLevel::Sev2,
            "csa.dc01.x000.u0000",
            vec![RootCause::Hardware],
            t(2013, 10, 25),
            t(2013, 10, 24), // data-entry error: resolved "before" opened
            "",
        );
        assert_eq!(r.resolution_time(), SimDuration::ZERO);
    }

    #[test]
    fn multi_cause_counts_both() {
        let r = SevRecord::new(
            5,
            SevLevel::Sev2,
            "core.dc01.x000.u0001",
            vec![RootCause::Maintenance, RootCause::Configuration],
            t(2015, 3, 1),
            t(2015, 3, 2),
            "",
        );
        assert!(r.has_root_cause(RootCause::Maintenance));
        assert!(r.has_root_cause(RootCause::Configuration));
        assert!(!r.has_root_cause(RootCause::Bug));
    }
}
