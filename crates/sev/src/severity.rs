//! SEV severity levels (§4.2, Table 3).
//!
//! "SEVs fall into three categories of severity ranging from SEV3
//! (lowest severity, no external outage) to SEV1 (highest severity,
//! widespread external outage). ... A SEV level reflects the high water
//! mark for an incident. A SEV's level is never downgraded to reflect
//! progress in resolving the SEV." (§5.3)

use std::fmt;

/// A SEV's severity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SevLevel {
    /// Highest severity: "Entire Facebook product or service outage,
    /// data center outage, major portions of the site are unavailable,
    /// outages that affect multiple products or services." (Table 3)
    Sev1,
    /// "Service outages that affect a particular Facebook feature,
    /// regional network impairment, critical internal tool outages that
    /// put the site at risk."
    Sev2,
    /// Lowest severity: "Redundant or contained system failures, system
    /// impairments that do not affect or only minimally affect customer
    /// experience, internal tool failures."
    Sev3,
}

impl SevLevel {
    /// All levels, most severe first.
    pub const ALL: [SevLevel; 3] = [SevLevel::Sev1, SevLevel::Sev2, SevLevel::Sev3];

    /// Numeric level (1 = most severe).
    pub fn number(self) -> u8 {
        match self {
            SevLevel::Sev1 => 1,
            SevLevel::Sev2 => 2,
            SevLevel::Sev3 => 3,
        }
    }

    /// From a numeric level.
    pub fn from_number(n: u8) -> Option<SevLevel> {
        match n {
            1 => Some(SevLevel::Sev1),
            2 => Some(SevLevel::Sev2),
            3 => Some(SevLevel::Sev3),
            _ => None,
        }
    }

    /// The *high-water-mark* combination rule: an incident's level can
    /// only escalate (toward SEV1), never downgrade.
    pub fn escalate_to(self, other: SevLevel) -> SevLevel {
        if other.number() < self.number() {
            other
        } else {
            self
        }
    }

    /// Whether this level implies externally visible impact.
    pub fn externally_visible(self) -> bool {
        !matches!(self, SevLevel::Sev3)
    }
}

impl fmt::Display for SevLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SEV{}", self.number())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_roundtrip() {
        for l in SevLevel::ALL {
            assert_eq!(SevLevel::from_number(l.number()), Some(l));
        }
        assert_eq!(SevLevel::from_number(0), None);
        assert_eq!(SevLevel::from_number(4), None);
    }

    #[test]
    fn ordering_most_severe_first() {
        assert!(SevLevel::Sev1 < SevLevel::Sev2);
        assert!(SevLevel::Sev2 < SevLevel::Sev3);
    }

    #[test]
    fn high_water_mark_never_downgrades() {
        assert_eq!(SevLevel::Sev3.escalate_to(SevLevel::Sev1), SevLevel::Sev1);
        assert_eq!(SevLevel::Sev1.escalate_to(SevLevel::Sev3), SevLevel::Sev1);
        assert_eq!(SevLevel::Sev2.escalate_to(SevLevel::Sev2), SevLevel::Sev2);
    }

    #[test]
    fn visibility() {
        assert!(SevLevel::Sev1.externally_visible());
        assert!(SevLevel::Sev2.externally_visible());
        assert!(!SevLevel::Sev3.externally_visible());
    }

    #[test]
    fn display() {
        assert_eq!(SevLevel::Sev1.to_string(), "SEV1");
        assert_eq!(SevLevel::Sev3.to_string(), "SEV3");
    }
}
