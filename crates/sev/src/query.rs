//! The query layer: SQL-shaped filters and group-bys over the SEV store.
//!
//! Every figure in §5 reduces to compositions of the operations here:
//!
//! * Fig. 2 — `query().root_cause(c).fraction_by_device_type()`
//! * Fig. 4 — `query().year(2017).severity(s).count_by_device_type()`
//! * Fig. 7 — `query().device_type(t).count_by_year()` ÷ yearly totals
//! * Fig. 8/9 — the same, normalized to the 2017 total
//!
//! A [`SevQuery`] is a borrowed, filtered view; filters compose by value
//! (builder style) and evaluation is lazy until a terminal operation.

use crate::record::SevRecord;
use crate::severity::SevLevel;
use crate::store::SevDb;
use dcnr_faults::RootCause;
use dcnr_stats::YearSeries;
use dcnr_topology::{DeviceType, NetworkDesign};
use std::collections::BTreeMap;

/// A composable filtered view over a [`SevDb`].
#[derive(Clone)]
pub struct SevQuery<'a> {
    records: Vec<&'a SevRecord>,
}

impl SevDb {
    /// Starts a query over all reports.
    pub fn query(&self) -> SevQuery<'_> {
        SevQuery {
            records: self.iter().collect(),
        }
    }
}

impl<'a> SevQuery<'a> {
    /// Restricts to incidents opened in `year`.
    pub fn year(self, year: i32) -> Self {
        self.filter(|r| r.year() == year)
    }

    /// Restricts to incidents opened in `[first, last]`.
    pub fn years(self, first: i32, last: i32) -> Self {
        self.filter(|r| (first..=last).contains(&r.year()))
    }

    /// Restricts to one severity level.
    pub fn severity(self, level: SevLevel) -> Self {
        self.filter(|r| r.severity == level)
    }

    /// Restricts to incidents whose offending device parses to `t`.
    pub fn device_type(self, t: DeviceType) -> Self {
        self.filter(|r| r.device_type().ok() == Some(t))
    }

    /// Restricts to incidents on devices of one network design.
    pub fn design(self, d: NetworkDesign) -> Self {
        self.filter(|r| r.design() == Some(d))
    }

    /// Restricts to incidents carrying `cause` among their root causes.
    pub fn root_cause(self, cause: RootCause) -> Self {
        self.filter(|r| r.has_root_cause(cause))
    }

    /// Generic predicate filter.
    pub fn filter(self, pred: impl Fn(&SevRecord) -> bool) -> Self {
        Self {
            records: self.records.into_iter().filter(|r| pred(r)).collect(),
        }
    }

    // ----- terminals -------------------------------------------------

    /// Number of matching reports.
    pub fn count(&self) -> usize {
        self.records.len()
    }

    /// The matching reports.
    pub fn records(&self) -> &[&'a SevRecord] {
        &self.records
    }

    /// Group count by parsed device type; unparsable names are skipped
    /// (they are outside the intra-DC taxonomy).
    pub fn count_by_device_type(&self) -> BTreeMap<DeviceType, usize> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            if let Ok(t) = r.device_type() {
                *out.entry(t).or_insert(0) += 1;
            }
        }
        out
    }

    /// Group count by severity level.
    pub fn count_by_severity(&self) -> BTreeMap<SevLevel, usize> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            *out.entry(r.severity).or_insert(0) += 1;
        }
        out
    }

    /// Group count by root cause. Multi-cause reports count toward each
    /// of their categories (§5.1's counting rule), so the total can
    /// exceed [`SevQuery::count`].
    pub fn count_by_root_cause(&self) -> BTreeMap<RootCause, usize> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            for &c in &r.root_causes {
                *out.entry(c).or_insert(0) += 1;
            }
        }
        out
    }

    /// Yearly counts over `[first, last]` as a [`YearSeries`].
    pub fn count_by_year(&self, first: i32, last: i32) -> YearSeries {
        let mut s = YearSeries::new(first, last);
        for r in &self.records {
            s.add(r.year(), 1.0);
        }
        s
    }

    /// Fractions by device type (normalized over parsable records).
    pub fn fraction_by_device_type(&self) -> BTreeMap<DeviceType, f64> {
        let counts = self.count_by_device_type();
        let total: usize = counts.values().sum();
        counts
            .into_iter()
            .map(|(t, c)| {
                (
                    t,
                    if total > 0 {
                        c as f64 / total as f64
                    } else {
                        0.0
                    },
                )
            })
            .collect()
    }

    /// Fractions by severity level.
    pub fn fraction_by_severity(&self) -> BTreeMap<SevLevel, f64> {
        let counts = self.count_by_severity();
        let total: usize = counts.values().sum();
        counts
            .into_iter()
            .map(|(l, c)| {
                (
                    l,
                    if total > 0 {
                        c as f64 / total as f64
                    } else {
                        0.0
                    },
                )
            })
            .collect()
    }

    /// Root-cause shares normalized over category counts (matching
    /// Table 2, where multi-cause reports inflate the denominator).
    pub fn fraction_by_root_cause(&self) -> BTreeMap<RootCause, f64> {
        let counts = self.count_by_root_cause();
        let total: usize = counts.values().sum();
        counts
            .into_iter()
            .map(|(c, n)| {
                (
                    c,
                    if total > 0 {
                        n as f64 / total as f64
                    } else {
                        0.0
                    },
                )
            })
            .collect()
    }

    /// Resolution times (hours) of matching reports — the p75IRT input.
    pub fn resolution_hours(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.resolution_time().as_hours())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnr_sim::{SimDuration, SimTime};

    fn db() -> SevDb {
        let mut db = SevDb::new();
        let t = |y: i32, d: u32| SimTime::from_date(y, 6, d).unwrap();
        // 2017: 2 RSW (1x SEV3, 1x SEV1), 1 Core SEV3, 1 FSW SEV2.
        db.insert(
            SevLevel::Sev3,
            "rsw.dc01.c000.u0001",
            vec![RootCause::Hardware],
            t(2017, 1),
            t(2017, 2),
            "",
        );
        db.insert(
            SevLevel::Sev1,
            "rsw.dc01.c000.u0002",
            vec![RootCause::Maintenance, RootCause::Configuration],
            t(2017, 3),
            t(2017, 5),
            "",
        );
        db.insert(
            SevLevel::Sev3,
            "core.dc01.x000.u0000",
            vec![RootCause::Bug],
            t(2017, 4),
            t(2017, 4),
            "",
        );
        db.insert(
            SevLevel::Sev2,
            "fsw.dc02.p000.u0003",
            vec![RootCause::Maintenance],
            t(2017, 8),
            t(2017, 9),
            "",
        );
        // 2016: 1 CSA SEV3; plus one unparsable legacy name.
        db.insert(
            SevLevel::Sev3,
            "csa.dc01.x000.u0000",
            vec![RootCause::Accident],
            t(2016, 1),
            t(2016, 3),
            "",
        );
        db.insert(
            SevLevel::Sev3,
            "legacy-router-7",
            vec![],
            t(2016, 2),
            t(2016, 2),
            "",
        );
        db
    }

    #[test]
    fn filters_compose() {
        let db = db();
        assert_eq!(db.query().year(2017).count(), 4);
        assert_eq!(db.query().year(2017).severity(SevLevel::Sev3).count(), 2);
        assert_eq!(db.query().device_type(DeviceType::Rsw).count(), 2);
        assert_eq!(db.query().design(NetworkDesign::Fabric).count(), 1);
        assert_eq!(db.query().root_cause(RootCause::Maintenance).count(), 2);
        assert_eq!(db.query().years(2016, 2016).count(), 2);
    }

    #[test]
    fn group_by_device_type_skips_unparsable() {
        let counts = db().query().count_by_device_type();
        let total: usize = counts.values().sum();
        assert_eq!(total, 5, "the legacy name contributes nothing");
        assert_eq!(counts[&DeviceType::Rsw], 2);
        assert_eq!(counts[&DeviceType::Csa], 1);
    }

    #[test]
    fn multi_cause_counts_in_both_categories() {
        let counts = db().query().count_by_root_cause();
        assert_eq!(counts[&RootCause::Maintenance], 2);
        assert_eq!(counts[&RootCause::Configuration], 1);
        // The no-cause record was normalized to undetermined.
        assert_eq!(counts[&RootCause::Undetermined], 1);
        let total: usize = counts.values().sum();
        assert_eq!(total, 7, "6 records, one double-counted");
    }

    #[test]
    fn fractions_normalize() {
        let f = db().query().year(2017).fraction_by_severity();
        assert!((f[&SevLevel::Sev3] - 0.5).abs() < 1e-12);
        assert!((f[&SevLevel::Sev2] - 0.25).abs() < 1e-12);
        assert!((f[&SevLevel::Sev1] - 0.25).abs() < 1e-12);
        let sum: f64 = db().query().fraction_by_device_type().values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn count_by_year_series() {
        let s = db().query().count_by_year(2011, 2017);
        assert_eq!(s.get(2016), 2.0);
        assert_eq!(s.get(2017), 4.0);
        assert_eq!(s.get(2013), 0.0);
        assert_eq!(s.total(), 6.0);
    }

    #[test]
    fn resolution_hours() {
        let mut db = SevDb::new();
        let open = SimTime::from_date(2017, 1, 1).unwrap();
        db.insert(
            SevLevel::Sev3,
            "rsw.dc01.c000.u0000",
            vec![],
            open,
            open + SimDuration::from_hours(36),
            "",
        );
        let hours = db.query().resolution_hours();
        assert_eq!(hours, vec![36.0]);
    }

    #[test]
    fn empty_query_terminals() {
        let db = SevDb::new();
        assert_eq!(db.query().count(), 0);
        assert!(db.query().count_by_device_type().is_empty());
        assert!(db.query().fraction_by_severity().is_empty());
        assert_eq!(db.query().count_by_year(2011, 2017).total(), 0.0);
    }
}
