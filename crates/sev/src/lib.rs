//! # dcnr-sev
//!
//! Service-level events (SEVs): the incident records at the heart of the
//! paper's intra-datacenter analysis (§4.2), the in-memory database that
//! stands in for Facebook's MySQL SEV store, the query layer that stands
//! in for their SQL, and the reliability metrics of §5.
//!
//! * [`severity`] — the three SEV levels and their Table 3 rubric
//!   (SEV3: contained; SEV2: feature/regional; SEV1: site-level).
//! * [`record`] — one SEV report: offending device name, root causes,
//!   severity, open/resolve timestamps. Device-type classification
//!   happens by **parsing the device-name prefix** exactly as §4.3.1
//!   describes — the record does not carry a type field.
//! * [`store`] — [`store::SevDb`], an append-only store with
//!   stable ids.
//! * [`query`] — composable filters and group-bys over the store
//!   (by year, severity, device type, network design, root cause) — the
//!   operations every figure of §5 reduces to.
//! * [`review`] — the §4.2 review process and §5.1's misclassification
//!   noise channel, for sensitivity analysis of Table 2.
//! * [`metrics`] — incident rates (Fig. 3), MTBI (Fig. 12), p75 incident
//!   resolution time (Fig. 13), and per-device SEV rates (Fig. 5).
//!   Population-dependent metrics take the population as a closure so
//!   this crate stays decoupled from the growth model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod document;
pub mod metrics;
pub mod query;
pub mod record;
pub mod review;
pub mod severity;
pub mod store;

pub use document::{prevention_checklist, render_postmortem};
pub use metrics::MetricsExt;
pub use query::SevQuery;
pub use record::SevRecord;
pub use review::ReviewProcess;
pub use severity::SevLevel;
pub use store::SevDb;
