//! Property-based tests for the SEV store and query layer.

use dcnr_faults::RootCause;
use dcnr_sev::{SevDb, SevLevel, SevRecord};
use dcnr_sim::{SimDuration, SimTime};
use dcnr_topology::DeviceType;
use proptest::prelude::*;

fn any_level() -> impl Strategy<Value = SevLevel> {
    proptest::sample::select(SevLevel::ALL.to_vec())
}

fn any_cause() -> impl Strategy<Value = RootCause> {
    proptest::sample::select(RootCause::ALL.to_vec())
}

fn any_device_name() -> impl Strategy<Value = String> {
    proptest::sample::select(DeviceType::INTRA_DC.to_vec()).prop_flat_map(|t| {
        (0u16..12, 0u32..40, 0u32..500).prop_map(move |(dc, scope, unit)| {
            dcnr_topology::format_device_name(t, dc, 'c', scope, unit)
        })
    })
}

prop_compose! {
    fn any_record()(
        level in any_level(),
        name in any_device_name(),
        causes in proptest::collection::vec(any_cause(), 0..3),
        year in 2011i32..=2017,
        day in 1u32..=28,
        dur_hours in 0u64..5_000,
    ) -> SevRecord {
        let open = SimTime::from_date(year, 1 + day % 12, day).unwrap();
        SevRecord::new(
            0,
            level,
            name,
            causes,
            open,
            open + SimDuration::from_hours(dur_hours),
            "synthetic",
        )
    }
}

proptest! {
    #[test]
    fn filters_are_restrictions(records in proptest::collection::vec(any_record(), 0..80)) {
        let db: SevDb = records.into_iter().collect();
        let total = db.query().count();
        for level in SevLevel::ALL {
            prop_assert!(db.query().severity(level).count() <= total);
        }
        for t in DeviceType::INTRA_DC {
            prop_assert!(db.query().device_type(t).count() <= total);
        }
        for year in 2011..=2017 {
            prop_assert!(db.query().year(year).count() <= total);
        }
        // Severity partitions the database.
        let by_sev: usize = SevLevel::ALL.iter().map(|&l| db.query().severity(l).count()).sum();
        prop_assert_eq!(by_sev, total);
        // Device types partition it too (all names parse by construction).
        let by_type: usize =
            DeviceType::INTRA_DC.iter().map(|&t| db.query().device_type(t).count()).sum();
        prop_assert_eq!(by_type, total);
    }

    #[test]
    fn fractions_sum_to_one_when_nonempty(records in proptest::collection::vec(any_record(), 1..60)) {
        let db: SevDb = records.into_iter().collect();
        let sev_sum: f64 = db.query().fraction_by_severity().values().sum();
        prop_assert!((sev_sum - 1.0).abs() < 1e-9);
        let type_sum: f64 = db.query().fraction_by_device_type().values().sum();
        prop_assert!((type_sum - 1.0).abs() < 1e-9);
        let cause_sum: f64 = db.query().fraction_by_root_cause().values().sum();
        prop_assert!((cause_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn count_by_year_totals_match(records in proptest::collection::vec(any_record(), 0..60)) {
        let db: SevDb = records.into_iter().collect();
        let series = db.query().count_by_year(2011, 2017);
        prop_assert_eq!(series.total() as usize, db.len());
    }

    #[test]
    fn record_invariants(record in any_record()) {
        prop_assert!(record.resolved_at >= record.opened_at);
        prop_assert!(!record.root_causes.is_empty(), "empty causes become undetermined");
        prop_assert!(record.resolution_time().as_hours() >= 0.0);
        prop_assert!(record.device_type().is_ok());
        prop_assert!((2011..=2017).contains(&record.year()));
    }

    #[test]
    fn ids_are_dense_and_stable(records in proptest::collection::vec(any_record(), 0..40)) {
        let db: SevDb = records.into_iter().collect();
        for (i, r) in db.iter().enumerate() {
            prop_assert_eq!(r.id as usize, i);
            prop_assert_eq!(db.get(r.id).unwrap().id, r.id);
        }
    }

    #[test]
    fn resolution_hours_match_filtered_records(records in proptest::collection::vec(any_record(), 0..40)) {
        let db: SevDb = records.into_iter().collect();
        let q = db.query().severity(SevLevel::Sev3);
        prop_assert_eq!(q.resolution_hours().len(), q.count());
    }
}
