//! # dcnr-bench
//!
//! Shared fixtures for the Criterion benchmark harness that regenerates
//! every table and figure of the paper (see `benches/`).
//!
//! The studies themselves are expensive (seconds) and deterministic, so
//! each bench binary builds them **once** via [`shared_intra`] /
//! [`shared_inter`] and benchmarks the *regeneration* of each artifact —
//! the queries and fits over the SEV/ticket databases — which is the
//! operation a user iterating on the analysis actually repeats.
//! `full_pipeline` benches in `benches/tables.rs` cover the end-to-end
//! cost at reduced scale.

use dcnr_core::backbone::topo::BackboneParams;
use dcnr_core::backbone::BackboneSimConfig;
use dcnr_core::{InterDcStudy, IntraDcStudy, RunContext, StudyConfig};
use std::sync::OnceLock;

/// Fleet scale used by the shared intra-DC fixture. Scale 4 yields
/// roughly two thousand SEVs — enough statistical mass for every figure
/// while keeping fixture construction quick.
pub const BENCH_SCALE: f64 = 4.0;

/// Seed used by all bench fixtures.
pub const BENCH_SEED: u64 = 0xBE_2018;

/// The shared scenario-engine context (built on first use). Both study
/// fixtures are pre-seeded into it, so every artifact render pulls from
/// the same caches the `dcnr` CLI would use.
pub fn shared_context() -> &'static RunContext {
    static CTX: OnceLock<RunContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let intra = IntraDcStudy::run(StudyConfig {
            scale: BENCH_SCALE,
            seed: BENCH_SEED,
            ..Default::default()
        });
        let inter = InterDcStudy::run(BackboneSimConfig {
            seed: BENCH_SEED,
            ..Default::default()
        });
        RunContext::from_studies(intra, inter)
    })
}

/// The shared intra-DC study fixture (built on first use).
pub fn shared_intra() -> &'static IntraDcStudy {
    shared_context().intra()
}

/// The shared backbone study fixture (built on first use).
pub fn shared_inter() -> &'static InterDcStudy {
    shared_context().inter()
}

/// A small backbone configuration for pipeline-cost benchmarks.
pub fn small_backbone_config(seed: u64) -> BackboneSimConfig {
    BackboneSimConfig {
        params: BackboneParams {
            edges: 30,
            vendors: 12,
            min_links_per_edge: 3,
        },
        seed,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert!(shared_intra().db().len() > 1000);
        assert!(shared_inter().tickets().len() > 1000);
    }
}
