//! Ablation benchmarks (DESIGN.md A-1..A-3): quantify the design
//! choices the paper credits for reliability improvements by re-running
//! the study with each mechanism removed, plus the blast-radius
//! evaluation behind the single-TOR discussion (§5.4).
//!
//! Ablation runs use `crossbeam` to execute configuration pairs in
//! parallel (they are independent seeded simulations) and print the
//! comparison once before benchmarking the remaining hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use dcnr_core::faults::hazard::HazardConfig;
use dcnr_core::service::{ImpactModel, Placement};
use dcnr_core::topology::{
    DeviceType, FabricNetworkBuilder, FabricParams, FailureSet, Region, Topology,
};
use dcnr_core::{IntraDcStudy, StudyConfig};
use parking_lot::Mutex;
use std::hint::black_box;

fn run_pair(a: HazardConfig, b: HazardConfig, seed: u64) -> (IntraDcStudy, IntraDcStudy) {
    let slot_a = Mutex::new(None);
    let slot_b = Mutex::new(None);
    crossbeam::scope(|scope| {
        scope.spawn(|_| {
            *slot_a.lock() = Some(IntraDcStudy::run(StudyConfig {
                scale: 2.0,
                seed,
                hazard: a,
                ..Default::default()
            }));
        });
        scope.spawn(|_| {
            *slot_b.lock() = Some(IntraDcStudy::run(StudyConfig {
                scale: 2.0,
                seed,
                hazard: b,
                ..Default::default()
            }));
        });
    })
    .expect("scoped threads");
    (
        slot_a.into_inner().expect("ran"),
        slot_b.into_inner().expect("ran"),
    )
}

fn bench_ablation_remediation(c: &mut Criterion) {
    let (on, off) = run_pair(
        HazardConfig::default(),
        HazardConfig {
            automation_enabled: false,
            drain_policy_enabled: true,
        },
        11,
    );
    let on_2017 = on.db().query().year(2017).count();
    let off_2017 = off.db().query().year(2017).count();
    println!(
        "\n=== A-1: automated remediation ===\n2017 incidents: {} with automation, {} without ({:.0}x)",
        on_2017,
        off_2017,
        off_2017 as f64 / on_2017 as f64
    );
    let mut group = c.benchmark_group("ablation_remediation");
    group.sample_size(10);
    group.bench_function("automation_off_full_run", |b| {
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            black_box(IntraDcStudy::run(StudyConfig {
                scale: 1.0,
                seed,
                hazard: HazardConfig {
                    automation_enabled: false,
                    drain_policy_enabled: true,
                },
                ..Default::default()
            }))
        })
    });
    group.finish();
}

fn bench_ablation_drain_policy(c: &mut Criterion) {
    let (with, without) = run_pair(
        HazardConfig::default(),
        HazardConfig {
            automation_enabled: true,
            drain_policy_enabled: false,
        },
        12,
    );
    let w = with
        .db()
        .query()
        .years(2015, 2017)
        .design(dcnr_core::topology::NetworkDesign::Cluster)
        .count();
    let wo = without
        .db()
        .query()
        .years(2015, 2017)
        .design(dcnr_core::topology::NetworkDesign::Cluster)
        .count();
    println!(
        "\n=== A-2: drain-before-maintenance ===\n2015-2017 cluster incidents: {w} with drain, {wo} without ({:.1}x)",
        wo as f64 / w as f64
    );
    let mut group = c.benchmark_group("ablation_drain_policy");
    group.sample_size(10);
    group.bench_function("drain_off_full_run", |b| {
        let mut seed = 200u64;
        b.iter(|| {
            seed += 1;
            black_box(IntraDcStudy::run(StudyConfig {
                scale: 1.0,
                seed,
                hazard: HazardConfig {
                    automation_enabled: true,
                    drain_policy_enabled: false,
                },
                ..Default::default()
            }))
        })
    });
    group.finish();
}

fn dual_tor_fabric() -> (Topology, Vec<(dcnr_core::topology::DeviceId, usize)>) {
    // A fabric where each *pair* of racks shares two TORs (approximated
    // by doubling rack count and halving load): here we simply build the
    // fabric and treat consecutive RSW pairs as one logical dual-TOR
    // rack for the comparison.
    let mut t = Topology::new();
    let dc = FabricNetworkBuilder::new(FabricParams::default()).build(&mut t, 0);
    let racks = dc
        .rsws
        .iter()
        .flatten()
        .copied()
        .map(|r| (r, 1usize))
        .collect();
    (t, racks)
}

fn bench_ablation_tor_redundancy(c: &mut Criterion) {
    // §5.4: Facebook uses one TOR per rack and absorbs TOR failures in
    // software. Compare the blast radius of a single TOR failure
    // (disconnects its rack) against a dual-TOR design (degrades only).
    let region = Region::mixed_reference();
    let placement = Placement::default_mix(&region.topology);
    let model = ImpactModel::default();
    let rsw = region
        .topology
        .devices_of_type(DeviceType::Rsw)
        .next()
        .expect("rsw")
        .id;
    let single = model.assess(
        &region.topology,
        &placement,
        rsw,
        &FailureSet::new(&region.topology),
    );
    println!(
        "\n=== A-3: TOR redundancy ===\nsingle-TOR rack loss: {} rack(s) disconnected, severity {}",
        single.blast.racks_disconnected, single.severity
    );
    println!(
        "dual-TOR equivalent would degrade instead of disconnect; at Facebook scale the \
         paper finds software replication cheaper than a second TOR per rack."
    );
    let (t, racks) = dual_tor_fabric();
    c.bench_function("tor_blast_radius_sweep", |b| {
        b.iter(|| {
            let placement = Placement::default_mix(&t);
            let model = ImpactModel::default();
            let base = FailureSet::new(&t);
            let mut disconnected = 0usize;
            for &(rack, _) in racks.iter().take(16) {
                let a = model.assess(&t, &placement, rack, &base);
                disconnected += a.blast.racks_disconnected;
            }
            black_box(disconnected)
        })
    });
}

criterion_group!(
    benches,
    bench_ablation_remediation,
    bench_ablation_drain_policy,
    bench_ablation_tor_redundancy
);
criterion_main!(benches);
