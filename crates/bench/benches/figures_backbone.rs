//! Benchmarks regenerating the backbone figures (Figs. 15–18): the
//! percentile curves and least-squares exponential fits of §6. Each
//! bench prints its artifact (measured fit vs. the paper's model) once.
//!
//! The benchmarked unit is the full measurement step: edge/vendor
//! renewal-log construction from the parsed ticket database plus the
//! model fit — what an analyst re-runs when the ticket data changes.

use criterion::{criterion_group, criterion_main, Criterion};
use dcnr_bench::{shared_context, shared_inter};
use dcnr_core::backbone::BackboneMetrics;
use dcnr_core::Experiment;
use std::hint::black_box;

fn print_once(e: Experiment) {
    let out = shared_context().artifact(e);
    println!("\n=== {} ===\n{}", e.title(), out.rendered);
    println!("paper vs measured:");
    for c in &out.comparisons {
        println!(
            "  {:<30} paper {:>12.4} measured {:>12.4}",
            c.metric, c.paper, c.measured
        );
    }
}

fn recompute() -> BackboneMetrics {
    let s = shared_inter();
    BackboneMetrics::compute(s.tickets(), &s.output().topology, s.window()).expect("metrics")
}

fn bench_fig15(c: &mut Criterion) {
    print_once(Experiment::Fig15);
    c.bench_function("fig15_edge_mtbf", |b| {
        b.iter(|| black_box(recompute().edge_mtbf.fit))
    });
}

fn bench_fig16(c: &mut Criterion) {
    print_once(Experiment::Fig16);
    c.bench_function("fig16_edge_mttr", |b| {
        b.iter(|| black_box(recompute().edge_mttr.fit))
    });
}

fn bench_fig17(c: &mut Criterion) {
    print_once(Experiment::Fig17);
    c.bench_function("fig17_vendor_mtbf", |b| {
        b.iter(|| black_box(recompute().vendor_mtbf.fit))
    });
}

fn bench_fig18(c: &mut Criterion) {
    print_once(Experiment::Fig18);
    c.bench_function("fig18_vendor_mttr", |b| {
        b.iter(|| black_box(recompute().vendor_mttr.fit))
    });
}

fn bench_email_ingestion(c: &mut Criterion) {
    // The measurement substrate itself: parse + ingest the full
    // eighteen-month e-mail stream.
    let s = shared_inter();
    let emails = &s.output().emails;
    println!("\n(email ingestion corpus: {} messages)", emails.len());
    c.bench_function("email_parse_and_ingest_stream", |b| {
        b.iter(|| {
            let mut db = dcnr_core::backbone::TicketDb::new();
            for (_, raw) in emails {
                let email = dcnr_core::backbone::parse_email(black_box(raw)).expect("valid");
                db.ingest(&email);
            }
            black_box(db.len())
        })
    });
}

fn bench_risk_planner(c: &mut Criterion) {
    // §6.1's conditional-risk Monte Carlo at 100k trials.
    let s = shared_inter();
    c.bench_function("conditional_risk_100k_trials", |b| {
        b.iter(|| black_box(s.risk_report(100_000)))
    });
}

criterion_group!(
    benches,
    bench_fig15,
    bench_fig16,
    bench_fig17,
    bench_fig18,
    bench_email_ingestion,
    bench_risk_planner
);
criterion_main!(benches);
