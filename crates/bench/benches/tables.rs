//! Benchmarks regenerating the paper's tables (1, 2, 4) plus the
//! end-to-end pipeline costs. Each table bench prints its artifact once
//! so `cargo bench` output doubles as a reproduction report.

use criterion::{criterion_group, criterion_main, Criterion};
use dcnr_bench::{shared_context, shared_inter, shared_intra, small_backbone_config};
use dcnr_core::{report, Experiment, InterDcStudy, IntraDcStudy, StudyConfig};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let intra = shared_intra();
    let out = shared_context().artifact(Experiment::Table1);
    println!("\n=== {} ===\n{}", Experiment::Table1.title(), out.rendered);
    c.bench_function("table1_automated_repair", |b| {
        b.iter(|| black_box(intra.table1_automated_repair()))
    });
}

fn bench_table2(c: &mut Criterion) {
    let intra = shared_intra();
    let out = shared_context().artifact(Experiment::Table2);
    println!("\n=== {} ===\n{}", Experiment::Table2.title(), out.rendered);
    c.bench_function("table2_root_causes", |b| {
        b.iter(|| black_box(intra.table2_root_causes()))
    });
}

fn bench_table4(c: &mut Criterion) {
    let inter = shared_inter();
    let out = shared_context().artifact(Experiment::Table4);
    println!("\n=== {} ===\n{}", Experiment::Table4.title(), out.rendered);
    c.bench_function("table4_continents", |b| {
        b.iter(|| {
            let m = dcnr_core::backbone::BackboneMetrics::compute(
                inter.tickets(),
                &inter.output().topology,
                inter.window(),
            )
            .expect("metrics");
            black_box(report::render_table4(&m.continents))
        })
    });
}

fn bench_full_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_pipeline");
    group.sample_size(10);
    group.bench_function("intra_seven_years_scale1", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(IntraDcStudy::run(StudyConfig {
                scale: 1.0,
                seed,
                ..Default::default()
            }))
        })
    });
    group.bench_function("backbone_18_months_30_edges", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(InterDcStudy::run(small_backbone_config(seed)))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_table4,
    bench_full_pipelines
);
criterion_main!(benches);
