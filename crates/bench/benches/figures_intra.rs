//! Benchmarks regenerating every intra-datacenter figure (Figs. 2–14).
//! One bench per figure; each prints its artifact once so `cargo bench`
//! output doubles as a reproduction report.

use criterion::{criterion_group, criterion_main, Criterion};
use dcnr_bench::{shared_context, shared_intra};
use dcnr_core::Experiment;
use std::hint::black_box;

fn print_once(e: Experiment) {
    let out = shared_context().artifact(e);
    println!("\n=== {} ===\n{}", e.title(), out.rendered);
    println!("paper vs measured:");
    for c in &out.comparisons {
        println!(
            "  {:<40} paper {:>12.4} measured {:>12.4}",
            c.metric, c.paper, c.measured
        );
    }
}

fn bench_fig2(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig2);
    c.bench_function("fig2_rootcause_by_device", |b| {
        b.iter(|| black_box(s.fig2_root_cause_by_device()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig3);
    c.bench_function("fig3_incident_rate", |b| {
        b.iter(|| black_box(s.fig3_incident_rate()))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig4);
    c.bench_function("fig4_severity_by_device", |b| {
        b.iter(|| black_box(s.fig4_severity_by_device()))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig5);
    c.bench_function("fig5_sev_rate_over_time", |b| {
        b.iter(|| black_box(s.fig5_sev_rates()))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig6);
    c.bench_function("fig6_switches_vs_employees", |b| {
        b.iter(|| black_box(s.fig6_switches_vs_employees()))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig7);
    c.bench_function("fig7_incident_fractions", |b| {
        b.iter(|| black_box(s.fig7_incident_fractions()))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig8);
    c.bench_function("fig8_normalized_incidents", |b| {
        b.iter(|| black_box(s.fig8_normalized_incidents()))
    });
}

fn bench_fig9(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig9);
    c.bench_function("fig9_design_incidents", |b| {
        b.iter(|| black_box(s.fig9_design_incidents()))
    });
}

fn bench_fig10(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig10);
    c.bench_function("fig10_design_rate", |b| {
        b.iter(|| black_box(s.fig10_design_rate()))
    });
}

fn bench_fig11(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig11);
    c.bench_function("fig11_population", |b| {
        b.iter(|| black_box(s.fig11_population_fractions()))
    });
}

fn bench_fig12(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig12);
    c.bench_function("fig12_mtbi", |b| b.iter(|| black_box(s.fig12_mtbi())));
}

fn bench_fig13(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig13);
    c.bench_function("fig13_p75irt", |b| b.iter(|| black_box(s.fig13_p75irt())));
}

fn bench_fig14(c: &mut Criterion) {
    let s = shared_intra();
    print_once(Experiment::Fig14);
    c.bench_function("fig14_irt_vs_fleet", |b| {
        b.iter(|| black_box(s.fig14_irt_vs_fleet()))
    });
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14
);
criterion_main!(benches);
