//! Property-based tests for the simulation engine: deterministic
//! ordering, calendar correctness, stream separation.

use dcnr_sim::{derive_seed, EventQueue, SimDuration, SimTime, Simulation, StudyCalendar};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_in_time_then_seq_order(
        times in proptest::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Non-decreasing times; equal times in insertion order.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    #[test]
    fn civil_date_roundtrip(y in 2011i32..2100, m in 1u32..=12, d in 1u32..=28) {
        let t = SimTime::from_date(y, m, d).unwrap();
        prop_assert_eq!(t.ymd(), (y, m, d));
        prop_assert_eq!(t.year(), y);
    }

    #[test]
    fn time_addition_is_consistent(base in 0u64..1_000_000_000, delta in 0u64..1_000_000_000) {
        let t = SimTime::from_secs(base);
        let later = t + SimDuration::from_secs(delta);
        prop_assert_eq!((later - t).as_secs(), delta);
        prop_assert_eq!(later.as_secs(), base + delta);
        // Saturating reverse direction.
        prop_assert_eq!((t - later).as_secs(), base.saturating_sub(base + delta));
    }

    #[test]
    fn duration_hours_roundtrip(h in 0.0..1.0e6f64) {
        let d = SimDuration::from_hours_f64(h);
        prop_assert!((d.as_hours() - h).abs() < 1.0 / 3600.0 + 1e-9);
    }

    #[test]
    fn year_windows_partition_time(y in 2011i32..2030) {
        let w = StudyCalendar::year(y);
        let next = StudyCalendar::year(y + 1);
        prop_assert_eq!(w.end, next.start);
        prop_assert!(w.contains(w.start));
        prop_assert!(!w.contains(w.end));
        // Every second of the window maps to year y.
        prop_assert_eq!(w.start.year(), y);
        prop_assert_eq!(SimTime::from_secs(w.end.as_secs() - 1).year(), y);
    }

    #[test]
    fn derived_seeds_separate_tags(master in any::<u64>(), a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed(master, &a), derive_seed(master, &b));
    }

    #[test]
    fn simulation_dispatches_every_scheduled_event(
        times in proptest::collection::vec(0u64..100_000, 0..100)
    ) {
        let mut sim = Simulation::new(SimTime::EPOCH);
        for &t in &times {
            sim.schedule_at(SimTime::from_secs(t), t);
        }
        let mut seen = 0usize;
        let n = sim.run_to_completion(|_, _| seen += 1);
        prop_assert_eq!(n as usize, times.len());
        prop_assert_eq!(seen, times.len());
        prop_assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn simulation_clock_never_goes_backwards(
        times in proptest::collection::vec(0u64..100_000, 1..100)
    ) {
        let mut sim = Simulation::new(SimTime::EPOCH);
        for &t in &times {
            sim.schedule_at(SimTime::from_secs(t), ());
        }
        let mut last = SimTime::EPOCH;
        sim.run_to_completion(|s, _| {
            assert!(s.now() >= last);
            last = s.now();
        });
    }

    #[test]
    fn horizon_split_is_equivalent_to_single_run(
        times in proptest::collection::vec(0u64..10_000, 0..60),
        split in 0u64..10_000
    ) {
        // Running to `split` then to completion dispatches the same
        // multiset of events as one run.
        let build = || {
            let mut sim = Simulation::new(SimTime::EPOCH);
            for &t in &times {
                sim.schedule_at(SimTime::from_secs(t), t);
            }
            sim
        };
        let mut one = Vec::new();
        build().run_to_completion(|_, e| one.push(e));
        let mut two = Vec::new();
        let mut sim = build();
        sim.run_until(SimTime::from_secs(split), |_, e| two.push(e));
        sim.run_to_completion(|_, e| two.push(e));
        prop_assert_eq!(one, two);
    }
}
