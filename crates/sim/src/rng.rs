//! Seed derivation and per-component random streams.
//!
//! One master seed drives an entire study run, but handing the *same*
//! `Rng` to every subsystem would couple them: adding one extra draw in
//! the maintenance scheduler would shift every subsequent failure sample
//! and make results impossible to compare across configurations
//! (e.g. the drain-policy ablation). Instead, each component derives its
//! own independent stream with [`derive_seed`]`(master, "component.tag")`
//! — a SplitMix64 hash of the master seed and the tag — and constructs a
//! dedicated [`rand::rngs::StdRng`] via [`stream_rng`].

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step — the standard 64-bit mixer (Steele et al.), used both
/// as a stream separator and to hash tag bytes.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a stable sub-seed from `master` and a component `tag`.
///
/// Properties:
/// * deterministic: same `(master, tag)` always yields the same seed;
/// * separating: different tags yield (with overwhelming probability)
///   different streams even for the same master seed;
/// * sensitive: different master seeds yield unrelated streams per tag.
pub fn derive_seed(master: u64, tag: &str) -> u64 {
    let mut state = master ^ 0xA076_1D64_78BD_642F;
    let mut acc = splitmix64(&mut state);
    for chunk in tag.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        state ^= u64::from_le_bytes(word).wrapping_add(chunk.len() as u64);
        acc ^= splitmix64(&mut state);
    }
    // Final avalanche so short tags do not correlate.
    state ^= acc;
    splitmix64(&mut state)
}

/// Builds a dedicated random stream for `(master, tag)`.
///
/// `StdRng` (currently ChaCha12) is `rand`'s reproducible, portable
/// generator; cryptographic strength is irrelevant here, stability and
/// statistical quality are what matter.
pub fn stream_rng(master: u64, tag: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, tag))
}

/// Derives the seed for replica `index` of an indexed fan-out (e.g. a
/// multi-seed sweep): a stable function of `(master, tag, index)`.
///
/// Unlike formatting the index into the tag, this keeps seed derivation
/// allocation-free and makes the indexing scheme explicit: replica `i`
/// always gets the same seed no matter how many replicas run, in what
/// order, or on how many threads.
pub fn derive_indexed_seed(master: u64, tag: &str, index: u64) -> u64 {
    let mut state = derive_seed(master, tag) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    state ^= splitmix64(&mut state);
    splitmix64(&mut state)
}

/// The replica seeds for an `n`-way fan-out: `derive_indexed_seed` for
/// indices `0..n`, in order. A prefix property holds by construction:
/// enlarging `n` never changes the seeds of existing replicas.
pub fn seed_sequence(master: u64, tag: &str, n: u32) -> Vec<u64> {
    (0..u64::from(n))
        .map(|i| derive_indexed_seed(master, tag, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_tag() {
        assert_eq!(derive_seed(42, "faults.rsw"), derive_seed(42, "faults.rsw"));
        let mut a = stream_rng(42, "faults.rsw");
        let mut b = stream_rng(42, "faults.rsw");
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_tags_differ() {
        assert_ne!(derive_seed(42, "faults.rsw"), derive_seed(42, "faults.fsw"));
        assert_ne!(derive_seed(42, "a"), derive_seed(42, "b"));
        // Length-extension-ish collisions: "ab" + "c" vs "a" + "bc".
        assert_ne!(derive_seed(42, "abc"), derive_seed(42, "ab\0c"));
        assert_ne!(derive_seed(42, ""), derive_seed(42, "\0"));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn long_tags_hash_all_bytes() {
        let t1 = "backbone.vendor.0123456789abcdef.link.42";
        let t2 = "backbone.vendor.0123456789abcdef.link.43";
        assert_ne!(derive_seed(7, t1), derive_seed(7, t2));
    }

    #[test]
    fn indexed_seeds_are_stable_and_distinct() {
        let a = derive_indexed_seed(7, "sweep.replica", 0);
        let b = derive_indexed_seed(7, "sweep.replica", 1);
        assert_eq!(a, derive_indexed_seed(7, "sweep.replica", 0));
        assert_ne!(a, b);
        assert_ne!(a, derive_indexed_seed(8, "sweep.replica", 0));
        assert_ne!(a, derive_indexed_seed(7, "sweep.other", 0));
        // 1024 consecutive indices collide with nobody.
        let seeds = seed_sequence(7, "sweep.replica", 1024);
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn seed_sequence_has_prefix_property() {
        let short = seed_sequence(42, "sweep.replica", 4);
        let long = seed_sequence(42, "sweep.replica", 16);
        assert_eq!(&long[..4], &short[..]);
    }

    #[test]
    fn streams_are_statistically_independent_enough() {
        // Crude check: correlation of two streams' uniforms is small.
        let mut a = stream_rng(7, "alpha");
        let mut b = stream_rng(7, "beta");
        let n = 10_000;
        let xs: Vec<f64> = (0..n).map(|_| a.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..n).map(|_| b.gen::<f64>()).collect();
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let cov: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n as f64;
        assert!(cov.abs() < 0.01, "cov = {cov}");
    }
}
