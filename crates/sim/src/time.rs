//! Simulated time and the study calendar.
//!
//! All simulation time is integer **seconds since the study epoch,
//! 2011-01-01T00:00:00Z** — the start of the paper's intra-datacenter
//! observation window. Integer seconds make event ordering exact and
//! runs reproducible; analysis converts to fractional hours only at the
//! statistics boundary (the paper reports hours throughout).
//!
//! The civil-calendar conversion uses the standard days-from-civil
//! algorithm (Howard Hinnant's `chrono`-compatible formulation), valid
//! far beyond the 2011–2018 span we need, with proper leap-year handling
//! (2012 and 2016 fall inside the study).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds in one minute.
pub const SECS_PER_MINUTE: u64 = 60;
/// Seconds in one hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds in one day.
pub const SECS_PER_DAY: u64 = 86_400;

/// A span of simulated time, in whole seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s)
    }

    /// From whole minutes.
    pub const fn from_minutes(m: u64) -> Self {
        Self(m * SECS_PER_MINUTE)
    }

    /// From whole hours.
    pub const fn from_hours(h: u64) -> Self {
        Self(h * SECS_PER_HOUR)
    }

    /// From whole days.
    pub const fn from_days(d: u64) -> Self {
        Self(d * SECS_PER_DAY)
    }

    /// From fractional hours, rounding to the nearest second. Negative or
    /// non-finite inputs clamp to zero — failure models occasionally
    /// produce a 0-length interval and must not panic mid-simulation.
    pub fn from_hours_f64(h: f64) -> Self {
        if !h.is_finite() || h <= 0.0 {
            return Self::ZERO;
        }
        Self((h * SECS_PER_HOUR as f64).round() as u64)
    }

    /// Whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Fractional hours — the unit of every reliability statistic in the
    /// paper (MTBI, MTBF, MTTR, p75IRT are all reported in hours).
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / SECS_PER_HOUR as f64
    }

    /// Fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / SECS_PER_DAY as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }

    /// Saturating addition; sums that overflow clamp to `u64::MAX`
    /// seconds (~585 billion years — effectively "beyond any horizon").
    pub fn saturating_add(self, other: Self) -> Self {
        Self(self.0.saturating_add(other.0))
    }
}

/// Saturating: a sum past `u64::MAX` seconds clamps rather than
/// panicking (debug) or wrapping to a tiny span (release). Fault
/// injection schedules retries near the simulation horizon, where
/// wrapped durations would silently reorder events.
impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / SECS_PER_DAY;
        let h = (self.0 % SECS_PER_DAY) / SECS_PER_HOUR;
        let m = (self.0 % SECS_PER_HOUR) / SECS_PER_MINUTE;
        let s = self.0 % SECS_PER_MINUTE;
        if d > 0 {
            write!(f, "{d}d{h:02}h{m:02}m{s:02}s")
        } else if h > 0 {
            write!(f, "{h}h{m:02}m{s:02}s")
        } else if m > 0 {
            write!(f, "{m}m{s:02}s")
        } else {
            write!(f, "{s}s")
        }
    }
}

/// An instant of simulated time: seconds since 2011-01-01T00:00:00Z.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// The study epoch as a civil date.
pub const EPOCH_YEAR: i32 = 2011;

/// Days from civil epoch 1970-01-01 for year/month/day (proleptic
/// Gregorian). Hinnant's algorithm.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

fn epoch_day() -> i64 {
    days_from_civil(EPOCH_YEAR, 1, 1)
}

impl SimTime {
    /// The study epoch, 2011-01-01T00:00:00Z.
    pub const EPOCH: SimTime = SimTime(0);

    /// From raw seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        Self(s)
    }

    /// Builds an instant from a civil UTC date and time.
    ///
    /// Returns `None` for dates before the epoch or invalid civil fields
    /// (month/day out of range, time-of-day out of range). Day validity is
    /// checked against the actual month length including leap years.
    pub fn from_ymd_hms(y: i32, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> Option<Self> {
        if !(1..=12).contains(&mo) || d < 1 || d > days_in_month(y, mo) {
            return None;
        }
        if h >= 24 || mi >= 60 || s >= 60 {
            return None;
        }
        let days = days_from_civil(y, mo, d) - epoch_day();
        if days < 0 {
            return None;
        }
        Some(Self(
            days as u64 * SECS_PER_DAY
                + h as u64 * SECS_PER_HOUR
                + mi as u64 * SECS_PER_MINUTE
                + s as u64,
        ))
    }

    /// Midnight UTC on the given date.
    pub fn from_date(y: i32, mo: u32, d: u32) -> Option<Self> {
        Self::from_ymd_hms(y, mo, d, 0, 0, 0)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Hours since the epoch.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / SECS_PER_HOUR as f64
    }

    /// The civil UTC `(year, month, day)` of this instant.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(epoch_day() + (self.0 / SECS_PER_DAY) as i64)
    }

    /// Calendar year — the bucketing key of every longitudinal figure.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// Elapsed duration since `earlier`; saturates to zero if `earlier`
    /// is actually later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

/// Saturating: an instant pushed past `u64::MAX` seconds since the
/// epoch clamps to that horizon rather than panicking (debug) or
/// wrapping back before the epoch (release). Downstream interval
/// arithmetic already saturates ([`SimTime::since`]), so a clamped
/// instant degrades to a zero-length interval instead of corrupting
/// event order.
impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_secs()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

/// Saturating: stepping back past the epoch clamps to the epoch.
impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.as_secs()))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d) = self.ymd();
        let rem = self.0 % SECS_PER_DAY;
        let h = rem / SECS_PER_HOUR;
        let mi = (rem % SECS_PER_HOUR) / SECS_PER_MINUTE;
        let s = rem % SECS_PER_MINUTE;
        write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}Z")
    }
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Gregorian leap-year rule.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// The observation windows used by the paper's two datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyCalendar {
    /// Start of the observation window (inclusive).
    pub start: SimTime,
    /// End of the observation window (exclusive).
    pub end: SimTime,
}

impl StudyCalendar {
    /// The intra-datacenter SEV window: January 2011 through the end of
    /// 2017 (the last complete year the figures plot).
    pub fn intra_dc() -> Self {
        Self {
            start: SimTime::from_date(2011, 1, 1).expect("valid"),
            end: SimTime::from_date(2018, 1, 1).expect("valid"),
        }
    }

    /// The backbone window: "eighteen months of recent repair tickets ...
    /// ranging from October 2016 to April 2018" (§4.3.2).
    pub fn backbone() -> Self {
        Self {
            start: SimTime::from_date(2016, 10, 1).expect("valid"),
            end: SimTime::from_date(2018, 4, 1).expect("valid"),
        }
    }

    /// One custom calendar year.
    pub fn year(y: i32) -> Self {
        Self {
            start: SimTime::from_date(y, 1, 1).expect("valid year"),
            end: SimTime::from_date(y + 1, 1, 1).expect("valid year"),
        }
    }

    /// Window length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Window length in fractional hours.
    pub fn hours(&self) -> f64 {
        self.duration().as_hours()
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Hours from window start to `t`, clamped into the window.
    pub fn offset_hours(&self, t: SimTime) -> f64 {
        let clamped = t.clamp(self.start, self.end);
        (clamped - self.start).as_hours()
    }

    /// The calendar years the window spans (inclusive of partial years).
    pub fn years(&self) -> std::ops::RangeInclusive<i32> {
        // `end` is exclusive: a window ending exactly at Jan 1 does not
        // include that year.
        let last = SimTime::from_secs(self.end.as_secs().saturating_sub(1)).year();
        self.start.year()..=last.max(self.start.year())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_2011() {
        assert_eq!(SimTime::EPOCH.ymd(), (2011, 1, 1));
        assert_eq!(SimTime::EPOCH.year(), 2011);
        assert_eq!(format!("{}", SimTime::EPOCH), "2011-01-01T00:00:00Z");
    }

    #[test]
    fn roundtrip_all_study_days() {
        // Every day from 2011-01-01 to 2019-12-31 survives the roundtrip.
        let mut t = SimTime::EPOCH;
        let end = SimTime::from_date(2020, 1, 1).unwrap();
        while t < end {
            let (y, m, d) = t.ymd();
            assert_eq!(SimTime::from_date(y, m, d).unwrap(), t);
            t += SimDuration::from_days(1);
        }
    }

    #[test]
    fn leap_years_in_study() {
        assert!(is_leap_year(2012));
        assert!(is_leap_year(2016));
        assert!(!is_leap_year(2011));
        assert!(!is_leap_year(2017));
        assert!(!is_leap_year(2100));
        assert!(is_leap_year(2000));
        assert_eq!(days_in_month(2012, 2), 29);
        assert_eq!(days_in_month(2013, 2), 28);
        // 2012-02-29 exists; 2013-02-29 does not.
        assert!(SimTime::from_date(2012, 2, 29).is_some());
        assert!(SimTime::from_date(2013, 2, 29).is_none());
    }

    #[test]
    fn rejects_invalid_civil_fields() {
        assert!(SimTime::from_ymd_hms(2011, 0, 1, 0, 0, 0).is_none());
        assert!(SimTime::from_ymd_hms(2011, 13, 1, 0, 0, 0).is_none());
        assert!(SimTime::from_ymd_hms(2011, 1, 0, 0, 0, 0).is_none());
        assert!(SimTime::from_ymd_hms(2011, 4, 31, 0, 0, 0).is_none());
        assert!(SimTime::from_ymd_hms(2011, 1, 1, 24, 0, 0).is_none());
        assert!(SimTime::from_ymd_hms(2011, 1, 1, 0, 60, 0).is_none());
        assert!(SimTime::from_ymd_hms(2010, 12, 31, 23, 59, 59).is_none());
    }

    #[test]
    fn sev_timestamps_from_the_paper() {
        // "The incident occurred on August 17, 2017 at 11:52 am PDT" ->
        // we just check the UTC-ish civil conversion is coherent.
        let t = SimTime::from_ymd_hms(2017, 8, 17, 18, 52, 0).unwrap();
        assert_eq!(t.year(), 2017);
        let r = SimTime::from_ymd_hms(2017, 8, 22, 18, 51, 0).unwrap();
        let dur = r - t;
        assert!((dur.as_days() - 4.999305555).abs() < 1e-6);
    }

    #[test]
    fn duration_arithmetic_and_display() {
        let d = SimDuration::from_days(3) + SimDuration::from_hours(4);
        assert_eq!(d.as_secs(), 3 * 86_400 + 4 * 3_600);
        assert_eq!(format!("{d}"), "3d04h00m00s");
        assert_eq!(format!("{}", SimDuration::from_secs(30)), "30s");
        assert_eq!(format!("{}", SimDuration::from_minutes(4)), "4m00s");
        assert_eq!(format!("{}", SimDuration::from_hours(2)), "2h00m00s");
    }

    #[test]
    fn duration_from_f64_clamps() {
        assert_eq!(SimDuration::from_hours_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_hours_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_hours_f64(1.0).as_secs(), 3_600);
        assert_eq!(SimDuration::from_hours_f64(0.5).as_secs(), 1_800);
    }

    #[test]
    fn time_subtraction_saturates() {
        let a = SimTime::from_secs(100);
        let b = SimTime::from_secs(40);
        assert_eq!((a - b).as_secs(), 60);
        assert_eq!((b - a).as_secs(), 0);
    }

    #[test]
    fn addition_saturates_near_the_horizon() {
        // An instant near u64::MAX plus a large backoff must clamp, not
        // panic or wrap back before the epoch.
        let near_max = SimTime::from_secs(u64::MAX - 10);
        let t = near_max + SimDuration::from_hours(1);
        assert_eq!(t.as_secs(), u64::MAX);

        let mut t2 = near_max;
        t2 += SimDuration::from_days(365);
        assert_eq!(t2.as_secs(), u64::MAX);

        // A clamped instant still orders after every real study time.
        assert!(t > SimTime::from_date(2018, 4, 1).unwrap());
        // And interval arithmetic degrades to a zero-length span.
        assert_eq!((near_max - t).as_secs(), 0);
    }

    #[test]
    fn time_minus_duration_saturates_at_epoch() {
        let t = SimTime::from_secs(100);
        assert_eq!((t - SimDuration::from_secs(40)).as_secs(), 60);
        assert_eq!(t - SimDuration::from_secs(500), SimTime::EPOCH);
    }

    #[test]
    fn duration_addition_saturates() {
        let big = SimDuration::from_secs(u64::MAX - 5);
        assert_eq!((big + SimDuration::from_secs(100)).as_secs(), u64::MAX);
        let mut d = big;
        d += SimDuration::from_secs(100);
        assert_eq!(d.as_secs(), u64::MAX);
        assert_eq!(big.saturating_add(SimDuration::ZERO), big);
        // Well-below-horizon sums are unaffected.
        assert_eq!(
            (SimDuration::from_hours(2) + SimDuration::from_minutes(30)).as_secs(),
            2 * 3_600 + 30 * 60,
        );
    }

    #[test]
    fn intra_dc_window() {
        let w = StudyCalendar::intra_dc();
        assert_eq!(w.years(), 2011..=2017);
        // Seven years: 2011..2018 = 2557 days (2012 and 2016 are leap).
        assert!((w.duration().as_days() - 2557.0).abs() < 1e-9);
        assert!(w.contains(SimTime::from_date(2014, 6, 1).unwrap()));
        assert!(!w.contains(SimTime::from_date(2018, 1, 1).unwrap()));
    }

    #[test]
    fn backbone_window_is_eighteen_months() {
        let w = StudyCalendar::backbone();
        // Oct 2016 .. Apr 2018 = 92 + 365 + 90 = 547 days (~18 months).
        assert!((w.duration().as_days() - 547.0).abs() < 1e-9);
        assert_eq!(w.years(), 2016..=2018);
        assert!((w.hours() - 547.0 * 24.0).abs() < 1e-9);
    }

    #[test]
    fn offset_hours_clamps() {
        let w = StudyCalendar::year(2017);
        assert_eq!(w.offset_hours(SimTime::from_date(2016, 1, 1).unwrap()), 0.0);
        let mid = SimTime::from_date(2017, 1, 2).unwrap();
        assert!((w.offset_hours(mid) - 24.0).abs() < 1e-9);
        assert!((w.offset_hours(SimTime::from_date(2019, 1, 1).unwrap()) - 8760.0).abs() < 1e-9);
    }

    #[test]
    fn year_window_hours() {
        assert!((StudyCalendar::year(2017).hours() - 8760.0).abs() < 1e-9);
        assert!((StudyCalendar::year(2016).hours() - 8784.0).abs() < 1e-9); // leap
    }
}
