//! Deterministic event queue.
//!
//! A binary min-heap keyed by `(time, sequence)`: events at the same
//! instant pop in the order they were scheduled. This removes the classic
//! source of non-determinism in discrete-event simulators (heap tie
//! order), which matters here because the whole study pipeline asserts
//! byte-identical outputs for identical seeds.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a time, ordered for a max-heap turned min-heap.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest first,
        // then lowest sequence number.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use dcnr_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(10), "b");
/// q.push(SimTime::from_secs(5), "a");
/// q.push(SimTime::from_secs(10), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`. Returns the event's sequence number
    /// (monotonically increasing; useful for debugging).
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
        seq
    }

    /// Removes and returns the earliest event, breaking time ties by
    /// scheduling order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(30), 3);
        q.push(SimTime::from_secs(10), 1);
        q.push(SimTime::from_secs(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(42);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let t0 = SimTime::EPOCH;
        q.push(t0 + SimDuration::from_hours(5), "later");
        q.push(t0 + SimDuration::from_hours(1), "first");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "first");
        // Schedule relative to the popped time, earlier than "later".
        q.push(t + SimDuration::from_hours(2), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn scheduled_count_monotonic() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.scheduled_count(), 0);
        q.push(SimTime::EPOCH, ());
        q.push(SimTime::EPOCH, ());
        q.pop();
        assert_eq!(q.scheduled_count(), 2);
    }
}
