//! # dcnr-sim
//!
//! Deterministic discrete-event simulation engine for the `dcnr`
//! reliability study.
//!
//! The paper analyzes seven years (2011–2018) of intra-datacenter
//! service-level events and eighteen months (October 2016 – April 2018)
//! of backbone repair tickets. This crate supplies the clockwork those
//! simulations run on:
//!
//! * [`time`] — [`time::SimTime`] (integer seconds since
//!   2011-01-01T00:00Z) and [`time::SimDuration`], plus a
//!   civil calendar so events can be bucketed by calendar year exactly as
//!   the paper's SQL queries bucket SEVs.
//! * [`event`] — a deterministic [`event::EventQueue`]:
//!   min-heap ordered by `(time, insertion sequence)`, so simultaneous
//!   events dispatch in scheduling order and runs are reproducible.
//! * [`engine`] — the [`engine::Simulation`] driver loop with
//!   a handler-scheduler split that lets handlers schedule follow-up
//!   events while the queue is borrowed.
//! * [`rng`] — seed derivation ([`rng::derive_seed`]) giving
//!   every subsystem an independent, stable random stream from one master
//!   seed: adding draws to one component never perturbs another.
//!
//! Following the guidance in the Rust networking guides bundled with this
//! repository (and the Tokio tutorial's own advice), the engine is fully
//! synchronous: the workload is CPU-bound Monte-Carlo, not I/O.
//!
//! Design rule: **no wall-clock access anywhere** — all time comes from
//! the simulated clock, all randomness from seeded streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod rng;
pub mod time;

pub use engine::{Scheduler, Simulation};
pub use event::EventQueue;
pub use rng::{derive_indexed_seed, derive_seed, seed_sequence, stream_rng};
pub use time::{SimDuration, SimTime, StudyCalendar};
