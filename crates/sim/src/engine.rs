//! The simulation driver loop.
//!
//! [`Simulation`] owns the clock and the event queue and repeatedly pops
//! the earliest event, advancing the clock to it and invoking the
//! caller's handler. The handler receives a [`Scheduler`] — a restricted
//! view that can schedule follow-up events and read the clock but cannot
//! re-enter the run loop, which keeps the borrow structure simple and the
//! execution order obvious (smoltcp-style explicit `poll`, no hidden
//! concurrency).

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};
use dcnr_telemetry::metrics::Counter;

/// Restricted simulation surface available to event handlers.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    horizon: SimTime,
}

impl<'a, E> Scheduler<'a, E> {
    /// Current simulated time (the time of the event being handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run horizon: events scheduled at or beyond it are accepted but
    /// will not be dispatched by the current `run_until` call.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Schedules `event` at absolute time `at`. Events in the past are
    /// clamped to *now* (they dispatch immediately after the current
    /// handler returns), which turns subtle causality bugs into a benign,
    /// deterministic behaviour.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }
}

/// A discrete-event simulation over events of type `E`.
pub struct Simulation<E> {
    now: SimTime,
    queue: EventQueue<E>,
    dispatched: u64,
    /// Resolved once at construction so the dispatch loop bumps a bare
    /// atomic instead of doing a registry lookup per event. `None` when
    /// no telemetry collector is installed — the common case — which
    /// keeps the loop free of telemetry overhead entirely.
    dispatch_counter: Option<Counter>,
}

impl<E> Simulation<E> {
    /// Creates a simulation whose clock starts at `start`.
    pub fn new(start: SimTime) -> Self {
        Self {
            now: start,
            queue: EventQueue::new(),
            dispatched: 0,
            dispatch_counter: dcnr_telemetry::counter("dcnr_sim_events_dispatched_total", &[]),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event at an absolute time. Times before the current
    /// clock are clamped to the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
    }

    /// Schedules an event after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Runs until the queue is exhausted or the next event is at or after
    /// `horizon`. Events exactly at the horizon are *not* dispatched
    /// (half-open window, matching [`crate::time::StudyCalendar`]).
    ///
    /// The handler may schedule further events through the provided
    /// [`Scheduler`]. Returns the number of events dispatched by this
    /// call. The clock ends at the later of its previous value and the
    /// horizon... specifically: it ends at `horizon` if any events
    /// remained, otherwise at the time of the last dispatched event.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Scheduler<'_, E>, E),
    {
        let mut count = 0;
        loop {
            match self.queue.peek_time() {
                Some(t) if t < horizon => {
                    let (time, event) = self.queue.pop().expect("peeked");
                    self.now = time;
                    let mut sched = Scheduler {
                        now: self.now,
                        queue: &mut self.queue,
                        horizon,
                    };
                    handler(&mut sched, event);
                    self.dispatched += 1;
                    count += 1;
                    if let Some(counter) = &self.dispatch_counter {
                        counter.inc();
                    }
                }
                Some(_) => {
                    // Next event beyond horizon: stop with clock at horizon.
                    self.now = self.now.max(horizon);
                    break;
                }
                None => break,
            }
        }
        count
    }

    /// Runs until the queue is exhausted.
    pub fn run_to_completion<F>(&mut self, handler: F) -> u64
    where
        F: FnMut(&mut Scheduler<'_, E>, E),
    {
        self.run_until(SimTime::from_secs(u64::MAX), handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Chain(u32),
    }

    #[test]
    fn dispatches_in_time_order() {
        let mut sim = Simulation::new(SimTime::EPOCH);
        sim.schedule_at(SimTime::from_secs(20), Ev::Tick(2));
        sim.schedule_at(SimTime::from_secs(10), Ev::Tick(1));
        let mut seen = Vec::new();
        let n = sim.run_to_completion(|s, e| {
            if let Ev::Tick(i) = e {
                seen.push((s.now().as_secs(), i));
            }
        });
        assert_eq!(n, 2);
        assert_eq!(seen, vec![(10, 1), (20, 2)]);
        assert_eq!(sim.now(), SimTime::from_secs(20));
        assert_eq!(sim.dispatched(), 2);
    }

    #[test]
    fn handler_can_chain_events() {
        let mut sim = Simulation::new(SimTime::EPOCH);
        sim.schedule_at(SimTime::from_secs(1), Ev::Chain(0));
        let mut count = 0;
        sim.run_to_completion(|s, e| {
            if let Ev::Chain(i) = e {
                count += 1;
                if i < 9 {
                    s.schedule_after(SimDuration::from_secs(5), Ev::Chain(i + 1));
                }
            }
        });
        assert_eq!(count, 10);
        assert_eq!(sim.now(), SimTime::from_secs(1 + 9 * 5));
    }

    #[test]
    fn horizon_is_exclusive() {
        let mut sim = Simulation::new(SimTime::EPOCH);
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        sim.schedule_at(SimTime::from_secs(10), Ev::Tick(2));
        sim.schedule_at(SimTime::from_secs(15), Ev::Tick(3));
        let mut seen = Vec::new();
        let n = sim.run_until(SimTime::from_secs(10), |_, e| {
            if let Ev::Tick(i) = e {
                seen.push(i)
            }
        });
        assert_eq!(n, 1);
        assert_eq!(seen, vec![1]);
        // Clock parked at the horizon, remaining events intact.
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert_eq!(sim.pending(), 2);
        // Resume to completion.
        let n2 = sim.run_to_completion(|_, e| {
            if let Ev::Tick(i) = e {
                seen.push(i)
            }
        });
        assert_eq!(n2, 2);
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim = Simulation::new(SimTime::from_secs(100));
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(1)); // in the past
        let mut at = 0;
        sim.run_to_completion(|s, _| at = s.now().as_secs());
        assert_eq!(at, 100);
    }

    #[test]
    fn handler_scheduling_in_past_clamps() {
        let mut sim = Simulation::new(SimTime::EPOCH);
        sim.schedule_at(SimTime::from_secs(50), Ev::Chain(0));
        let mut times = Vec::new();
        sim.run_to_completion(|s, e| {
            times.push(s.now().as_secs());
            if e == Ev::Chain(0) {
                // Attempt to schedule before now; must clamp, not travel back.
                s.schedule_at(SimTime::from_secs(10), Ev::Tick(9));
            }
        });
        assert_eq!(times, vec![50, 50]);
    }

    #[test]
    fn empty_run_is_noop() {
        let mut sim: Simulation<Ev> = Simulation::new(SimTime::EPOCH);
        assert_eq!(sim.run_to_completion(|_, _| {}), 0);
        assert_eq!(sim.now(), SimTime::EPOCH);
    }

    #[test]
    fn dispatch_counter_feeds_installed_telemetry() {
        let t = dcnr_telemetry::Telemetry::new_handle();
        let _guard = dcnr_telemetry::installed(t.clone());
        let mut sim = Simulation::new(SimTime::EPOCH);
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Tick(2));
        sim.run_to_completion(|_, _| {});
        let snap = t.metrics.snapshot();
        assert_eq!(
            snap.counter_value("dcnr_sim_events_dispatched_total", &[]),
            2
        );
    }

    #[test]
    fn scheduler_exposes_horizon() {
        let mut sim = Simulation::new(SimTime::EPOCH);
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(0));
        let mut h = SimTime::EPOCH;
        sim.run_until(SimTime::from_secs(99), |s, _| h = s.horizon());
        assert_eq!(h, SimTime::from_secs(99));
    }
}
