//! Cross-crate integration tests for the intra-datacenter study:
//! end-to-end pipeline (faults → remediation → service → sev → analysis)
//! verified against the paper's §5 claims.

use dcnr_core::faults::{calibration, RootCause};
use dcnr_core::sev::SevLevel;
use dcnr_core::topology::{DeviceType, NetworkDesign};
use dcnr_core::{IntraDcStudy, StudyConfig};

fn study() -> IntraDcStudy {
    IntraDcStudy::run(StudyConfig {
        scale: 4.0,
        seed: 0xFEED,
        ..Default::default()
    })
}

#[test]
fn dataset_is_thousands_of_incidents() {
    // §4.2: "The dataset comprises thousands of incidents."
    let s = study();
    assert!(s.db().len() > 1_500, "SEVs {}", s.db().len());
}

#[test]
fn observation_1_maintenance_hardware_config_dominate() {
    // §5.1: most determined failures involve maintenance, hardware,
    // misconfiguration; undetermined ≈ 29%.
    let s = study();
    let t2 = s.table2_root_causes();
    assert!((t2[&RootCause::Undetermined] - 0.29).abs() < 0.05);
    let human = t2[&RootCause::Configuration] + t2[&RootCause::Bug];
    let hw = t2[&RootCause::Hardware];
    assert!(human > 1.5 * hw, "human {human} vs hardware {hw}");
}

#[test]
fn observation_2_bandwidth_correlates_with_incident_rate() {
    // §5.2: higher-bisection-bandwidth devices have higher incident
    // rates; commodity fabric devices have lower rates than vendor
    // cluster devices.
    let s = study();
    let rates = s.fig3_incident_rate();
    for year in [2016, 2017] {
        let core = rates[&DeviceType::Core].get(year);
        let rsw = rates[&DeviceType::Rsw].get(year);
        assert!(core > 50.0 * rsw, "{year}: core {core} vs rsw {rsw}");
        let fsw = rates[&DeviceType::Fsw].get(year);
        let csw = rates[&DeviceType::Csw].get(year);
        assert!(fsw < csw, "{year}: fabric {fsw} vs cluster {csw}");
    }
}

#[test]
fn observation_3_rsw_share_about_28_percent() {
    // §5.4: rack switches ≈ 28% of 2017 service-level incidents despite
    // the largest MTBI, because the population is huge.
    let s = study();
    let f7 = s.fig7_incident_fractions();
    let rsw = f7[&DeviceType::Rsw].get(2017);
    assert!((rsw - 0.28).abs() < 0.05, "rsw share {rsw}");
    let mtbi = s.fig12_mtbi();
    let rsw_mtbi = mtbi[&DeviceType::Rsw]
        .iter()
        .find(|&&(y, _)| y == 2017)
        .map(|&(_, m)| m)
        .unwrap();
    assert!(rsw_mtbi > 1.0e6, "rsw MTBI {rsw_mtbi}");
}

#[test]
fn observation_4_core_share_about_34_percent() {
    // §5.4: Core devices ≈ 34% of 2017 incidents.
    let s = study();
    let f7 = s.fig7_incident_fractions();
    let core = f7[&DeviceType::Core].get(2017);
    assert!((core - 0.34).abs() < 0.05, "core share {core}");
}

#[test]
fn observation_5_fabric_half_of_cluster() {
    // §5.5: fabric ≈ 50% of cluster incident volume in 2017, with lower
    // per-device rates.
    let s = study();
    let f9 = s.fig9_design_incidents();
    let ratio = f9[&NetworkDesign::Fabric].get(2017) / f9[&NetworkDesign::Cluster].get(2017);
    assert!((ratio - 0.5).abs() < 0.15, "ratio {ratio}");
    let f10 = s.fig10_design_rate();
    assert!(f10[&NetworkDesign::Fabric].get(2017) < f10[&NetworkDesign::Cluster].get(2017));
}

#[test]
fn observation_6_mtbi_spans_orders_of_magnitude() {
    // §5.6: 2017 MTBI varies by orders of magnitude across types, with
    // the Core and RSW anchors; fabric ≈ 3.2× cluster.
    let s = study();
    let mtbi = s.fig12_mtbi();
    let at = |t: DeviceType| {
        mtbi[&t]
            .iter()
            .find(|&&(y, _)| y == 2017)
            .map(|&(_, m)| m)
            .expect("2017 point")
    };
    let core = at(DeviceType::Core);
    let rsw = at(DeviceType::Rsw);
    assert!(
        (core - calibration::MTBI_CORE_2017_HOURS).abs() / calibration::MTBI_CORE_2017_HOURS < 0.25,
        "core {core}"
    );
    assert!(rsw / core > 100.0, "span {}", rsw / core);
    let (fabric, cluster) = s.design_mtbi(2017);
    let ratio = fabric.unwrap() / cluster.unwrap();
    assert!(ratio > 2.0 && ratio < 5.0, "fabric/cluster {ratio}");
}

#[test]
fn severity_mix_and_high_water_mark() {
    // Fig. 4: overall 2017 mix ≈ 82/13/5.
    let s = study();
    let f4 = s.fig4_severity_by_device();
    let share = |l: SevLevel| f4[&l].0;
    assert!(
        (share(SevLevel::Sev3) - 0.82).abs() < 0.05,
        "sev3 {}",
        share(SevLevel::Sev3)
    );
    assert!((share(SevLevel::Sev2) - 0.13).abs() < 0.05);
    assert!((share(SevLevel::Sev1) - 0.05).abs() < 0.03);
}

#[test]
fn table1_emerges_from_triage_not_constants() {
    // The Table 1 report is measured over triage outcomes; with a
    // different seed the measured ratios still match the policy.
    let a = IntraDcStudy::run(StudyConfig {
        scale: 2.0,
        seed: 1,
        ..Default::default()
    });
    let b = IntraDcStudy::run(StudyConfig {
        scale: 2.0,
        seed: 2,
        ..Default::default()
    });
    for s in [&a, &b] {
        let t1 = s.table1_automated_repair();
        let rsw = t1.row(DeviceType::Rsw).unwrap();
        assert!((rsw.repair_ratio() - 0.997).abs() < 0.003);
        // Wait/exec means match Table 1 within sampling noise.
        assert!((rsw.avg_wait_secs - 86_400.0).abs() / 86_400.0 < 0.10);
        assert!((rsw.avg_exec_secs - 2.91).abs() < 0.3);
    }
}

#[test]
fn classification_goes_through_name_parsing() {
    // Every SEV's device type is recovered from its name prefix; verify
    // the database's names all parse and agree with the query results.
    let s = IntraDcStudy::run(StudyConfig {
        scale: 1.0,
        seed: 11,
        ..Default::default()
    });
    let mut parsed = 0;
    for r in s.db().iter() {
        let t = r
            .device_type()
            .expect("pipeline names follow the convention");
        assert!(r.device_name.starts_with(t.name_prefix()));
        parsed += 1;
    }
    assert_eq!(parsed, s.db().len());
}

#[test]
fn no_fabric_incidents_before_deployment() {
    let s = study();
    for t in [DeviceType::Esw, DeviceType::Ssw, DeviceType::Fsw] {
        for year in 2011..2015 {
            assert_eq!(
                s.db().query().year(year).device_type(t).count(),
                0,
                "{t} in {year}"
            );
        }
    }
}

#[test]
fn esw_has_no_bug_sevs() {
    // §5.1 footnote, preserved through the whole pipeline.
    let s = study();
    assert_eq!(
        s.db()
            .query()
            .device_type(DeviceType::Esw)
            .root_cause(RootCause::Bug)
            .count(),
        0
    );
}
