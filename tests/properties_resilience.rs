//! Property-based tests for the resilience layer: the client backoff
//! schedule (deterministic per seed, jittered within the equal-jitter
//! envelope, monotonically capped) and the zero-rate chaos identity
//! (an all-zero `FaultPlan` injects nothing on any connection, for any
//! seed — the contract behind "chaos off is byte-identical serving").

use dcnr_core::RetryPolicy;
use dcnr_server::chaos::{ChaosState, FaultPlan};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #[test]
    fn backoff_is_deterministic_per_seed(
        seed in 0u64..1_000_000_000,
        attempt in 0u32..40
    ) {
        let policy = RetryPolicy::default();
        prop_assert_eq!(
            policy.backoff(seed, attempt),
            policy.backoff(seed, attempt),
            "the same (seed, attempt) must always draw the same delay"
        );
    }

    #[test]
    fn backoff_jitter_stays_within_the_equal_jitter_envelope(
        seed in 0u64..1_000_000_000,
        attempt in 0u32..100,
        base_ms in 1u64..500,
        cap_ms in 1u64..10_000
    ) {
        let policy = RetryPolicy {
            backoff_base: Duration::from_millis(base_ms),
            backoff_cap: Duration::from_millis(cap_ms),
            ..RetryPolicy::default()
        };
        let envelope = policy.envelope(attempt);
        let delay = policy.backoff(seed, attempt);
        prop_assert!(envelope <= policy.backoff_cap, "envelope exceeds the cap");
        prop_assert!(delay <= envelope, "delay {delay:?} above envelope {envelope:?}");
        // Equal jitter: at least half the envelope always elapses (the
        // micros floor can shave sub-microsecond remainders only).
        prop_assert!(
            delay >= envelope / 2,
            "delay {delay:?} below half the envelope {envelope:?}"
        );
    }

    #[test]
    fn backoff_envelope_is_monotone_until_the_cap(
        base_ms in 1u64..200,
        cap_ms in 1u64..5_000
    ) {
        let policy = RetryPolicy {
            backoff_base: Duration::from_millis(base_ms),
            backoff_cap: Duration::from_millis(cap_ms),
            ..RetryPolicy::default()
        };
        let mut prev = Duration::ZERO;
        let mut capped = false;
        for attempt in 0..80 {
            let env = policy.envelope(attempt);
            prop_assert!(env >= prev, "envelope shrank at attempt {attempt}");
            prop_assert!(env <= policy.backoff_cap);
            if capped {
                prop_assert_eq!(env, policy.backoff_cap, "once capped, stays capped");
            }
            capped = env == policy.backoff_cap;
            prev = env;
        }
        // Doubling from any positive base must eventually hit the cap
        // well within 80 attempts.
        prop_assert!(capped, "the envelope never reached the cap");
    }

    #[test]
    fn zero_rate_chaos_injects_nothing_for_any_seed(
        seed in 0u64..1_000_000_000,
        connections in 1u64..300
    ) {
        let plan = FaultPlan { seed, ..FaultPlan::default() };
        prop_assert!(plan.is_zero());
        let state = ChaosState::new(plan);
        for index in 0..connections {
            let faults = state.faults_for(index);
            prop_assert!(
                faults.is_none(),
                "zero-rate plan injected on connection {index}: {faults:?}"
            );
        }
        prop_assert_eq!(state.stats.total(), 0, "no injection may be counted");
    }
}
