//! End-to-end contract of `dcnr serve`: byte-identity between the HTTP
//! surface and the CLI rendering path (cold cache, warm cache, and
//! under concurrent clients), saturation shedding with 503 +
//! `Retry-After` instead of hangs, a strictly validated Prometheus
//! `/metrics` endpoint, checkpoint-directory sweep reports, and
//! graceful drain via `/admin/shutdown`.

use dcnr_core::serve::{self, ServeOptions};
use dcnr_core::telemetry::prometheus;
use dcnr_core::{Experiment, Scenario, ScenarioKind, SupervisorConfig, SweepConfig};
use dcnr_server::client;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Option<Duration> = Some(Duration::from_secs(30));

/// A fast scenario: quarter scale, small backbone.
const SMALL_QUERY: &str = "seed=11&scale=0.25&edges=40&vendors=16";

fn small_server(admin: bool) -> serve::RunningServer {
    serve::start(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        admin,
        ..ServeOptions::default()
    })
    .expect("bind an ephemeral port")
}

fn get(server: &serve::RunningServer, target: &str) -> client::ClientResponse {
    client::get(&server.addr().to_string(), target, TIMEOUT).expect(target)
}

/// Fetches `/metrics`, asserting it passes the strict text-format
/// validator, and returns the body. Every test that scrapes goes
/// through here, so no response ever skips validation.
fn validated_metrics(server: &serve::RunningServer) -> String {
    let resp = get(server, "/metrics");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let body = String::from_utf8(resp.body.clone()).expect("metrics are UTF-8");
    prometheus::validate(&body).expect("metrics must satisfy the strict validator");
    body
}

/// Sums the samples of `name` (across label sets) in a metrics body.
fn metric_total(body: &str, name: &str) -> f64 {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.split(&[' ', '{'][..])
                .next()
                .is_some_and(|metric| metric == name)
        })
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<f64>().ok()))
        .sum()
}

#[test]
fn basic_routes_respond_and_admin_is_opt_in() {
    let server = small_server(false);
    let health = get(&server, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"ok\n");
    assert_eq!(get(&server, "/readyz").body, b"ready\n");
    assert_eq!(get(&server, "/no/such/route").status, 404);
    assert_eq!(get(&server, "/artifacts/fig99").status, 404);
    // Admin endpoints do not exist unless the server opted in.
    assert_eq!(get(&server, "/admin/shutdown").status, 404);
    assert!(!server.shutdown_requested());
    let body = validated_metrics(&server);
    assert!(body.contains("dcnr_server_requests_total"), "{body}");
    assert!(body.contains("dcnr_server_workers"), "{body}");
    server.shutdown_and_join();
}

#[test]
fn artifact_bodies_are_byte_identical_to_the_cli_render_cold_and_warm() {
    let server = Arc::new(small_server(false));
    let artifacts = [Experiment::Fig15, Experiment::Fig16, Experiment::Table4];

    // The expected bytes, rendered locally through the exact function
    // `dcnr artifact` prints from.
    let expected: Vec<String> = artifacts
        .iter()
        .map(|&e| {
            let scenario = serve::scenario_for_artifact(e, SMALL_QUERY).unwrap();
            serve::render_artifact_text(&scenario, e).unwrap()
        })
        .collect();

    // Two rounds: the first renders into the cache (cold), the second
    // must be served from it (warm). Each round hammers every artifact
    // from 4 clients at once.
    for round in ["cold", "warm"] {
        let mut handles = Vec::new();
        for client_id in 0..4 {
            let server = server.clone();
            handles.push(std::thread::spawn(move || {
                let mut bodies = Vec::new();
                for e in artifacts {
                    let target = format!("/artifacts/{}?{SMALL_QUERY}", e.key());
                    let resp = get(&server, &target);
                    assert_eq!(resp.status, 200, "client {client_id} {target}");
                    bodies.push(String::from_utf8(resp.body).unwrap());
                }
                bodies
            }));
        }
        for handle in handles {
            let bodies = handle.join().expect("client thread");
            assert_eq!(bodies, expected, "{round}: HTTP bytes must equal the CLI's");
        }
    }

    let metrics = validated_metrics(&server);
    let hits = metric_total(&metrics, "dcnr_server_cache_hits_total");
    let misses = metric_total(&metrics, "dcnr_server_cache_misses_total");
    // 8 requests per artifact; every render happens at most a handful of
    // times (concurrent cold-start misses may race), and the warm round
    // alone guarantees at least 4 hits per artifact.
    assert!(hits >= 12.0, "expected a warm cache, got {hits} hits");
    assert!(misses >= 3.0, "each artifact missed at least once");

    match Arc::try_unwrap(server) {
        Ok(server) => server.shutdown_and_join(),
        Err(_) => panic!("client threads were joined; the Arc must be unique"),
    }
}

#[test]
fn query_parameters_reuse_the_cli_parser_and_reject_typos() {
    let server = small_server(false);
    let bad = get(&server, "/artifacts/fig15?bogus=1");
    assert_eq!(bad.status, 400);
    assert!(
        String::from_utf8_lossy(&bad.body).contains("--bogus"),
        "the error names the unknown flag like the CLI does"
    );
    let bad = get(&server, "/artifacts/fig15?seed=banana");
    assert_eq!(bad.status, 400);
    let bad = get(&server, "/artifacts/fig15?scale=-1");
    assert_eq!(
        bad.status, 400,
        "validation failures are the client's fault"
    );
    server.shutdown_and_join();
}

#[test]
fn saturation_sheds_503_with_retry_after_and_the_server_survives() {
    let server = Arc::new(
        serve::start(&ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 1,
            admin: true,
            ..ServeOptions::default()
        })
        .unwrap(),
    );

    // 8 concurrent slow requests against 1 worker + 1 queue slot: at
    // most 2 can be in the building, so most must shed immediately.
    let mut handles = Vec::new();
    for _ in 0..8 {
        let server = server.clone();
        handles.push(std::thread::spawn(move || {
            get(&server, "/admin/sleep?millis=200")
        }));
    }
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let ok = responses.iter().filter(|r| r.status == 200).count();
    let shed = responses.iter().filter(|r| r.status == 503).count();
    assert_eq!(ok + shed, 8, "nothing may hang or error");
    assert!(ok >= 1, "the worker served someone");
    assert!(shed >= 4, "most of the burst must shed, got {shed}");
    for r in responses.iter().filter(|r| r.status == 503) {
        assert!(
            r.header("retry-after").is_some(),
            "shed responses carry Retry-After"
        );
    }

    // The server is still healthy and its metrics report the sheds.
    assert_eq!(get(&server, "/healthz").status, 200);
    let metrics = validated_metrics(&server);
    assert!(
        metric_total(&metrics, "dcnr_server_shed_total") >= shed as f64,
        "{metrics}"
    );

    Arc::try_unwrap(server)
        .unwrap_or_else(|_| panic!("all clients joined"))
        .shutdown_and_join();
}

#[test]
fn sweeps_route_serves_the_checkpoint_report_byte_identically() {
    let root = std::env::temp_dir().join(format!("dcnr-serve-sweeps-{}", std::process::id()));
    let dir = root.join("nightly");
    std::fs::create_dir_all(&dir).unwrap();

    // A tiny supervised sweep that checkpoints into the directory.
    let base = Scenario {
        scale: 0.25,
        backbone: dcnr_core::backbone::topo::BackboneParams {
            edges: 40,
            vendors: 16,
            min_links_per_edge: 3,
        },
        ..Scenario::cli_default(ScenarioKind::Backbone)
    };
    let sup = SupervisorConfig {
        checkpoint: Some(dir.clone()),
        ..SupervisorConfig::default()
    };
    let live = dcnr_core::run_supervised(SweepConfig::new(base, 2, 1), &sup).unwrap();

    let server = serve::start(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        sweep_root: root.clone(),
        ..ServeOptions::default()
    })
    .unwrap();
    let resp = get(&server, "/sweeps/nightly");
    assert_eq!(resp.status, 200);
    assert_eq!(
        String::from_utf8(resp.body).unwrap(),
        live.rendered,
        "the served report must be byte-identical to the live sweep"
    );

    // Traversal and absent checkpoints are rejected, not resolved.
    assert_eq!(get(&server, "/sweeps/..").status, 400);
    assert_eq!(get(&server, "/sweeps/a%2F..%2Fb").status, 400);
    assert_eq!(get(&server, "/sweeps/absent").status, 404);

    server.shutdown_and_join();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn admin_shutdown_flips_readiness_and_drains() {
    let server = small_server(true);
    assert_eq!(get(&server, "/readyz").body, b"ready\n");
    let resp = get(&server, "/admin/shutdown");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"draining\n");
    assert!(server.shutdown_requested());
    // Still serving while the drain is pending (the CLI loop is what
    // notices the flag); readiness now warns traffic away.
    let ready = get(&server, "/readyz");
    assert_eq!(ready.status, 503);
    assert_eq!(ready.body, b"draining\n");
    assert_eq!(get(&server, "/healthz").status, 200);
    server.shutdown_and_join();
}

#[test]
fn admission_metrics_appear_only_when_admission_control_is_on() {
    // S6 contract: the all-off AdmissionConfig default must be
    // invisible on /metrics — no admission series, no sojourn
    // histogram — so a scrape of the pre-admission server and a scrape
    // of an admission-off server expose identical series names.
    let plain = small_server(false);
    let _ = get(&plain, &format!("/artifacts/fig15?{SMALL_QUERY}"));
    let body = validated_metrics(&plain);
    assert!(
        !body.contains("dcnr_server_admission_dropped_total"),
        "admission-off must not export admission counters: {body}"
    );
    assert!(
        !body.contains("dcnr_server_queue_sojourn_micros"),
        "admission-off must not export the sojourn histogram: {body}"
    );
    plain.shutdown_and_join();

    // With any admission knob on, the drop counters (one per cause)
    // and the queue-sojourn histogram appear and survive the strict
    // validator round-trip.
    let server = serve::start(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        admission: dcnr_server::AdmissionConfig {
            sojourn_target: Some(Duration::from_millis(200)),
            priority_depth: 4,
            adaptive_retry_after: true,
        },
        ..ServeOptions::default()
    })
    .unwrap();
    let resp = get(&server, &format!("/artifacts/fig15?{SMALL_QUERY}"));
    assert_eq!(resp.status, 200);
    let body = validated_metrics(&server);
    for cause in ["full", "priority", "sojourn"] {
        assert!(
            body.contains(&format!(
                "dcnr_server_admission_dropped_total{{cause=\"{cause}\"}}"
            )),
            "missing admission cause {cause}: {body}"
        );
    }
    assert!(
        body.contains("dcnr_server_queue_sojourn_micros_bucket"),
        "{body}"
    );
    assert!(
        body.contains("dcnr_server_queue_sojourn_micros_count"),
        "{body}"
    );
    // Every handled connection was stamped, so the histogram has
    // observed at least the artifact fetch and the scrape itself.
    assert!(
        metric_total(&body, "dcnr_server_queue_sojourn_micros_count") >= 1.0,
        "{body}"
    );
    // Nothing was dropped on this idle server.
    assert_eq!(
        metric_total(&body, "dcnr_server_admission_dropped_total"),
        0.0
    );
    server.shutdown_and_join();
}
