//! Pipeline-boundary integration tests: the measurement boundaries the
//! paper describes are actually enforced in code — the SEV analysis
//! sees only what remediation escalates; the backbone analysis sees
//! only what the e-mail parser recovers.

use dcnr_core::backbone::{parse_email, render_email, BackboneSim, BackboneSimConfig, TicketDb};
use dcnr_core::faults::hazard::HazardConfig;
use dcnr_core::faults::{HazardModel, IssueGenerator};
use dcnr_core::remediation::{RemediationEngine, RemediationOutcome};
use dcnr_core::sim::StudyCalendar;
use dcnr_core::{IntraDcStudy, RunContext, Scenario, ScenarioKind, StudyConfig};

#[test]
fn incident_boundary_only_escalations_become_sevs() {
    let seed = 99;
    let gen = IssueGenerator::paper(1.0, seed);
    let issues = gen.generate(StudyCalendar::year(2017));
    let mut engine = RemediationEngine::new(HazardModel::paper(), seed);
    let outcomes = engine.triage_all(issues);
    let escalated = outcomes.iter().filter(|o| o.is_escalated()).count();

    let mut db = dcnr_core::sev::SevDb::new();
    let created = dcnr_core::service::SevGenerator::new(seed).ingest(&outcomes, &mut db);
    assert_eq!(created, escalated, "exactly the escalations became SEVs");
    assert_eq!(db.len(), escalated);

    // The vast majority of issues never reach the SEV database (§4.1).
    assert!(
        escalated * 20 < outcomes.len(),
        "{escalated} of {}",
        outcomes.len()
    );
}

#[test]
fn automation_shield_quantified() {
    // §4.1.2's what-if, end to end: disabling automation multiplies
    // 2017 incidents dramatically while the issue stream is unchanged.
    let on = IntraDcStudy::run(StudyConfig {
        scale: 1.0,
        seed: 5,
        ..Default::default()
    });
    let off = IntraDcStudy::run(StudyConfig {
        scale: 1.0,
        seed: 5,
        hazard: HazardConfig {
            automation_enabled: false,
            drain_policy_enabled: true,
        },
        ..Default::default()
    });
    assert_eq!(
        on.outcomes().len(),
        off.outcomes().len(),
        "same physical issues"
    );
    let on_2017 = on.db().query().year(2017).count() as f64;
    let off_2017 = off.db().query().year(2017).count() as f64;
    assert!(
        off_2017 / on_2017 > 10.0,
        "automation shields: {on_2017} vs {off_2017} incidents"
    );
}

#[test]
fn drain_policy_ablation_raises_cluster_incidents() {
    let with = IntraDcStudy::run(StudyConfig {
        scale: 2.0,
        seed: 8,
        ..Default::default()
    });
    let without = IntraDcStudy::run(StudyConfig {
        scale: 2.0,
        seed: 8,
        hazard: HazardConfig {
            automation_enabled: true,
            drain_policy_enabled: false,
        },
        ..Default::default()
    });
    use dcnr_core::topology::DeviceType;
    let w = with
        .db()
        .query()
        .years(2015, 2017)
        .device_type(DeviceType::Csa)
        .count();
    let wo = without
        .db()
        .query()
        .years(2015, 2017)
        .device_type(DeviceType::Csa)
        .count();
    assert!(
        wo as f64 > 3.0 * w as f64,
        "drain policy matters: {w} vs {wo}"
    );
    // Fabric devices unaffected by the cluster-only policy.
    let fw = with
        .db()
        .query()
        .years(2015, 2017)
        .device_type(DeviceType::Fsw)
        .count();
    let fwo = without
        .db()
        .query()
        .years(2015, 2017)
        .device_type(DeviceType::Fsw)
        .count();
    assert_eq!(fw, fwo);
}

#[test]
fn email_boundary_round_trips_the_whole_stream() {
    // Every simulator e-mail survives render → parse → re-render.
    let out = BackboneSim::new(BackboneSimConfig {
        params: dcnr_core::backbone::topo::BackboneParams {
            edges: 20,
            vendors: 8,
            min_links_per_edge: 3,
        },
        seed: 12,
        ..Default::default()
    })
    .run();
    for (_, raw) in &out.emails {
        let parsed = parse_email(raw).expect("valid");
        let rerendered = render_email(&parsed);
        assert_eq!(
            raw, &rerendered,
            "render/parse is a bijection on the stream"
        );
    }
}

#[test]
fn corrupted_emails_are_dropped_not_fatal() {
    // Feed the ticket DB a stream with injected garbage; the good
    // tickets still land, the bad ones count as rejects.
    let out = BackboneSim::new(BackboneSimConfig {
        params: dcnr_core::backbone::topo::BackboneParams {
            edges: 10,
            vendors: 4,
            min_links_per_edge: 3,
        },
        seed: 13,
        ..Default::default()
    })
    .run();
    let mut db = TicketDb::new();
    let mut parse_failures = 0u64;
    for (i, (_, raw)) in out.emails.iter().enumerate() {
        if i % 10 == 3 {
            // Corrupt every tenth message.
            let garbled = bytes::Bytes::from(format!("X-Event: EXPLODED\r\n{:?}", raw));
            if parse_email(&garbled).is_err() {
                parse_failures += 1;
                continue;
            }
        }
        if let Ok(email) = parse_email(raw) {
            db.ingest(&email);
        }
    }
    assert!(parse_failures > 0);
    assert!(!db.is_empty());
    // Dropped completions leave open tickets; dropped starts cause
    // orphan completions that the DB rejects — all non-fatal.
    assert!(
        db.rejected > 0,
        "orphan completions were rejected, not crashed on"
    );
}

#[test]
fn full_experiment_suite_runs_on_shared_context() {
    // One context serves all 20 artifacts: the intra and backbone
    // studies each execute exactly once, whatever order artifacts ask.
    let scenario = Scenario {
        scale: 1.0,
        backbone: dcnr_core::backbone::topo::BackboneParams {
            edges: 40,
            vendors: 16,
            min_links_per_edge: 3,
        },
        ..Scenario::intra(21)
    };
    let ctx = RunContext::new(scenario);
    let mut rendered_total = 0;
    for a in dcnr_core::artifacts::registry() {
        rendered_total += ctx.artifact(a.id).rendered.len();
    }
    assert!(
        rendered_total > 5_000,
        "all experiments rendered substantial output"
    );
    // The engine's execute() covers the same artifacts for each driver.
    let intra_out = RunContext::new(scenario).execute();
    assert_eq!(intra_out.artifacts.len(), 15);
    let backbone_out = RunContext::new(Scenario {
        kind: ScenarioKind::Backbone,
        ..scenario
    })
    .execute();
    assert_eq!(backbone_out.artifacts.len(), 5);
}

#[test]
fn outcome_variants_partition_the_issue_stream() {
    let seed = 31;
    let gen = IssueGenerator::paper(1.0, seed);
    let issues = gen.generate(StudyCalendar::year(2016));
    let n = issues.len();
    let mut engine = RemediationEngine::new(HazardModel::paper(), seed);
    let outcomes = engine.triage_all(issues);
    assert_eq!(outcomes.len(), n);
    let (mut auto, mut manual, mut esc) = (0, 0, 0);
    for o in &outcomes {
        match o {
            RemediationOutcome::AutoRepaired(_) => auto += 1,
            RemediationOutcome::ManuallyResolved { .. } => manual += 1,
            RemediationOutcome::Escalated { .. } => esc += 1,
        }
    }
    assert_eq!(auto + manual + esc, n);
    assert!(auto > 0 && manual > 0 && esc > 0);
}
