//! Determinism and seed-sensitivity guarantees, end to end.
//!
//! The whole study is a function of `(config, seed)`: identical inputs
//! must produce byte-identical outputs; different seeds must produce
//! different (but statistically equivalent) datasets; and component
//! streams must be isolated — perturbing one subsystem's draws must not
//! reshuffle another's.

use dcnr_core::backbone::BackboneSimConfig;
use dcnr_core::faults::hazard::HazardConfig;
use dcnr_core::{InterDcStudy, IntraDcStudy, StudyConfig};

fn intra(seed: u64) -> IntraDcStudy {
    IntraDcStudy::run(StudyConfig {
        scale: 1.0,
        seed,
        ..Default::default()
    })
}

#[test]
fn intra_identical_seeds_identical_databases() {
    let a = intra(424242);
    let b = intra(424242);
    assert_eq!(a.db().records(), b.db().records());
    assert_eq!(a.outcomes().len(), b.outcomes().len());
}

#[test]
fn intra_different_seeds_differ_but_agree_statistically() {
    let a = intra(1);
    let b = intra(2);
    assert_ne!(a.db().records(), b.db().records());
    // Same calibration: totals within Poisson noise of each other.
    let (na, nb) = (a.db().len() as f64, b.db().len() as f64);
    assert!((na - nb).abs() / na < 0.25, "{na} vs {nb}");
}

#[test]
fn backbone_identical_seeds_identical_emails() {
    let cfg = BackboneSimConfig {
        seed: 777,
        ..Default::default()
    };
    let a = InterDcStudy::run(cfg);
    let b = InterDcStudy::run(cfg);
    assert_eq!(a.output().emails, b.output().emails);
}

#[test]
fn ablation_changes_only_the_escalation_side() {
    // Stream isolation: the ablation flips escalation decisions, but
    // the physical issue stream (count and timing) is identical because
    // the generator draws from its own streams.
    let base = IntraDcStudy::run(StudyConfig {
        scale: 1.0,
        seed: 9,
        ..Default::default()
    });
    let ablated = IntraDcStudy::run(StudyConfig {
        scale: 1.0,
        seed: 9,
        hazard: HazardConfig {
            automation_enabled: false,
            drain_policy_enabled: true,
        },
        ..Default::default()
    });
    assert_eq!(base.outcomes().len(), ablated.outcomes().len());
    for (a, b) in base.outcomes().iter().zip(ablated.outcomes()) {
        assert_eq!(a.issue().at, b.issue().at, "issue timing must not shift");
        assert_eq!(a.issue().device_name, b.issue().device_name);
    }
}

#[test]
fn scale_preserves_rates() {
    // Scaling the fleet scales counts linearly but leaves rates alone.
    use dcnr_core::topology::DeviceType;
    let s1 = IntraDcStudy::run(StudyConfig {
        scale: 1.0,
        seed: 4,
        ..Default::default()
    });
    let s3 = IntraDcStudy::run(StudyConfig {
        scale: 3.0,
        seed: 4,
        ..Default::default()
    });
    let n1 = s1.db().len() as f64;
    let n3 = s3.db().len() as f64;
    assert!((n3 / n1 - 3.0).abs() < 0.5, "count ratio {}", n3 / n1);
    let r1 = s1.fig3_incident_rate()[&DeviceType::Core].get(2017);
    let r3 = s3.fig3_incident_rate()[&DeviceType::Core].get(2017);
    assert!((r1 - r3).abs() / r1 < 0.35, "rates {r1} vs {r3}");
}

#[test]
fn experiment_outcomes_are_reproducible() {
    use dcnr_core::{Experiment, RunContext, Scenario};
    let ctx1 = RunContext::new(Scenario {
        scale: 1.0,
        ..Scenario::intra(55)
    });
    let ctx2 = RunContext::new(Scenario {
        scale: 1.0,
        ..Scenario::intra(55)
    });
    for e in [
        Experiment::Table2,
        Experiment::Fig7,
        Experiment::Fig15,
        Experiment::Table4,
    ] {
        let a = ctx1.artifact(e);
        let b = ctx2.artifact(e);
        assert_eq!(a.rendered, b.rendered, "{e}");
        for (ca, cb) in a.comparisons.iter().zip(&b.comparisons) {
            assert_eq!(ca.measured, cb.measured, "{e}: {}", ca.metric);
        }
    }
}
