//! Integration tests for the extension modules (DESIGN.md §5a): WAN
//! rerouting, cross-DC planes, optical layer, drills, review
//! sensitivity, wear-out sensitivity, and Kaplan–Meier cross-checks —
//! each exercised against a full study run.

use dcnr_core::backbone::optical;
use dcnr_core::backbone::topo::BackboneParams;
use dcnr_core::backbone::wan::{self, RerouteImpact};
use dcnr_core::backbone::{BackboneSimConfig, CrossDcPlanes};
use dcnr_core::faults::RootCause;
use dcnr_core::service::{disaster_drill, FaultInjectionDrill, ImpactModel, Placement};
use dcnr_core::sev::ReviewProcess;
use dcnr_core::topology::Region;
use dcnr_core::{InterDcStudy, IntraDcStudy, StudyConfig};
use std::collections::HashSet;

fn inter() -> InterDcStudy {
    InterDcStudy::run(BackboneSimConfig {
        params: BackboneParams {
            edges: 40,
            vendors: 16,
            min_links_per_edge: 3,
        },
        seed: 0xE47,
        ..Default::default()
    })
}

#[test]
fn reroute_latency_grows_with_cut_size() {
    // §3.2: rerouting around fiber cuts increases end-to-end latency —
    // and more cuts can only make it worse.
    let s = inter();
    let topo = &s.output().topology;
    let all_links: Vec<_> = topo.links().iter().map(|l| l.id).collect();
    let mut last_mean = 1.0;
    for frac in [8, 4] {
        let cut: HashSet<_> = all_links
            .iter()
            .copied()
            .filter(|l| l.index() % frac == 0)
            .collect();
        let impact = RerouteImpact::of_cut(topo, &cut);
        assert!(
            impact.mean_stretch >= last_mean - 1e-9,
            "stretch should grow with cuts"
        );
        assert!(impact.max_stretch >= impact.mean_stretch);
        last_mean = impact.mean_stretch;
    }
    assert!(
        last_mean > 1.0,
        "a quarter of links cut must stretch something"
    );
}

#[test]
fn intercontinental_paths_cost_more() {
    let s = inter();
    let topo = &s.output().topology;
    // Latency from an NA edge to same-continent peers vs. others.
    let na = topo.edges_on(dcnr_core::backbone::Continent::NorthAmerica);
    let au = topo.edges_on(dcnr_core::backbone::Continent::Australia);
    if na.len() >= 2 && !au.is_empty() {
        let dist = wan::shortest_latencies(topo, na[0], &HashSet::new());
        let to_na = dist[na[1].index()].expect("connected");
        let to_au = dist[au[0].index()].expect("connected");
        assert!(to_au > to_na, "NA->AU {to_au} should exceed NA->NA {to_na}");
    }
}

#[test]
fn cross_dc_planes_survive_three_plane_loss() {
    let mut planes = CrossDcPlanes::paper(12);
    planes.fail_plane(0);
    planes.fail_plane(1);
    planes.fail_plane(2);
    assert_eq!(planes.min_pair_capacity(), 0.25);
    for a in 0..12 {
        for b in (a + 1)..12 {
            assert!(!planes.pair_partitioned(a, b));
        }
    }
}

#[test]
fn optical_layer_capacity_reconciles_with_links() {
    let s = inter();
    let topo = &s.output().topology;
    let all = optical::derive_all(topo);
    assert_eq!(all.len(), topo.links().len());
    for (lo, link) in all.iter().zip(topo.links()) {
        assert_eq!(lo.link, link.id);
        assert_eq!(lo.circuits.len(), link.circuits.max(1) as usize);
        // Severing every circuit at its first segment downs the link.
        let cuts: Vec<(u8, u8)> = lo.circuits.iter().map(|c| (c.index, 0)).collect();
        assert!(lo.is_down(&cuts));
        // Severing all but one leaves capacity.
        if cuts.len() > 1 {
            assert!(!lo.is_down(&cuts[1..]));
        }
    }
}

#[test]
fn drills_agree_with_impact_model() {
    let region = Region::mixed_reference();
    let placement = Placement::default_mix(&region.topology);
    let model = ImpactModel::default();
    let drill = FaultInjectionDrill::sweep(&region, &placement, &model);
    // The reference region tolerates any single failure.
    assert!(drill.risky_tiers().is_empty(), "{:?}", drill.risky_tiers());
    // Disaster drills account for every rack exactly once.
    let mut lost = 0;
    for dc in &region.datacenters {
        lost += disaster_drill(&region, &placement, &model, dc).racks_lost;
    }
    assert_eq!(lost, placement.total_racks());
}

#[test]
fn review_noise_cannot_create_determined_causes_from_nothing() {
    let study = IntraDcStudy::run(StudyConfig {
        scale: 1.0,
        seed: 0xAA,
        ..Default::default()
    });
    // Full error, all-undetermined review: everything collapses.
    let wiped = study.table2_with_review(ReviewProcess::new(1.0, 1.0));
    assert!((wiped[&RootCause::Undetermined] - 1.0).abs() < 1e-9);
    for cause in RootCause::ALL {
        if cause != RootCause::Undetermined {
            assert_eq!(wiped.get(&cause).copied().unwrap_or(0.0), 0.0, "{cause}");
        }
    }
}

#[test]
fn wearout_sensitivity_preserves_rsw_anchor() {
    let study = IntraDcStudy::run(StudyConfig {
        scale: 2.0,
        seed: 0xAB,
        ..Default::default()
    });
    let base = study.fig3_incident_rate();
    let worn = study.fig3_with_wearout(2.0);
    // The multiplier is normalized to the RSW 2017 fleet, so the RSW
    // 2017 anchor is preserved exactly.
    use dcnr_core::topology::DeviceType;
    let b = base[&DeviceType::Rsw].get(2017);
    let w = worn[&DeviceType::Rsw].get(2017);
    assert!((b - w).abs() < 1e-12, "{b} vs {w}");
}

#[test]
fn kaplan_meier_cross_check_is_consistent() {
    let s = inter();
    let km = s.metrics().edge_uptime_survival.as_ref().expect("fitted");
    // Pooled intervals: every edge contributes at least one observation.
    assert!(km.n() >= 40);
    assert!(km.events() > 0);
    // The KM median time-to-failure should be the same order as the
    // per-edge MTBF median (pooling weights frequent failers more, so
    // it sits at or below it).
    let per_edge_median = s.metrics().edge_mtbf.summary().median();
    let km_median = km.median().expect("enough failures");
    assert!(
        km_median > per_edge_median / 10.0,
        "{km_median} vs {per_edge_median}"
    );
    assert!(
        km_median < per_edge_median * 3.0,
        "{km_median} vs {per_edge_median}"
    );
    // Survival is a proper tail function.
    assert!(km.survival_at(0.0) <= 1.0);
    assert!(km.survival_at(1e9) >= 0.0);
}

#[test]
fn detection_model_contributes_realistic_delays() {
    use dcnr_core::remediation::DetectionModel;
    let m = DetectionModel::paper();
    // Detection (≈40 s) is negligible against Table 1's wait times
    // (minutes to days) — which is why the paper reports wait/repair
    // and not detection.
    assert!(m.mean_secs() < 60.0);
    let rsw_wait =
        dcnr_core::faults::calibration::repair_wait_secs(dcnr_core::topology::DeviceType::Rsw)
            .unwrap() as f64;
    assert!(m.mean_secs() < rsw_wait / 100.0);
}
