//! End-to-end contract of the open-loop overload harness: `dcnr serve`
//! with deadline-aware admission control under `dcnr loadgen
//! --open-loop`. Covers the accounting invariants (every arrival is
//! dispatched or client-dropped; every dispatch is good, shed, or an
//! error), the two-phase `BENCH_overload.json` record, trace
//! record/replay equivalence, and the health-probe floor.

use dcnr_core::loadgen::{self, LoadgenOptions, OpenLoopOptions};
use dcnr_core::serve::{self, ServeOptions};
use dcnr_core::{json, Experiment};
use dcnr_server::AdmissionConfig;
use std::time::Duration;

/// A server with every admission-control knob enabled, sized so a 2×
/// overload actually queues: two workers, a shallow queue, a sojourn
/// target low enough to trip under pressure.
fn admission_server() -> serve::RunningServer {
    serve::start(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        admission: AdmissionConfig {
            sojourn_target: Some(Duration::from_millis(100)),
            priority_depth: 8,
            adaptive_retry_after: true,
        },
        ..ServeOptions::default()
    })
    .expect("bind an ephemeral port")
}

/// Options for a fast, deterministic overload run: the sustainable
/// rate is given (no calibration phase), the scenario is quarter
/// scale, and the verdict floors are generous — these tests assert the
/// harness's accounting, not a particular machine's performance.
fn overload_options(server: &serve::RunningServer) -> LoadgenOptions {
    LoadgenOptions {
        addr: server.addr().to_string(),
        artifacts: vec![Experiment::Fig15],
        scenario_seeds: 1,
        scenario_args: ["--scale", "0.25", "--edges", "40", "--vendors", "16"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        timeout: Duration::from_secs(10),
        open_loop: Some(OpenLoopOptions {
            rate: Some(400.0),
            overload: 2.0,
            arrivals: 300,
            max_in_flight: 32,
            goodput_floor: 0.02,
            p99_cap: Duration::from_secs(10),
            health_floor: 0.5,
            ..OpenLoopOptions::default()
        }),
        ..LoadgenOptions::default()
    }
}

fn temp_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("dcnr-overload-{}-{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn overload_run_accounts_for_every_arrival_and_writes_the_bench() {
    let server = admission_server();
    let bench = temp_path("bench.json");
    let mut opts = overload_options(&server);
    opts.bench_json = Some(bench.clone());

    let report = loadgen::run_open_loop(&opts).expect("generous floors must pass");

    // Accounting invariants: nothing is lost and nothing is counted
    // twice. Every scheduled arrival was either dispatched or dropped
    // at the client-side in-flight bound, and every dispatched request
    // resolved to exactly one of good / shed / error.
    assert_eq!(report.arrivals, 300);
    assert_eq!(report.dispatched + report.client_dropped, report.arrivals);
    assert_eq!(report.good + report.shed + report.errors, report.dispatched);
    assert!(
        report.stale <= report.good,
        "stale responses are a subset of good"
    );
    assert!(
        report.good > 0,
        "some requests must be admitted: {}",
        report.rendered
    );
    assert_eq!(report.rate_source, "given");
    assert!((report.overload - 2.0).abs() < 1e-9);
    assert!(!report.trace_replayed);
    assert!(report.health_probes > 0, "the health prober must have run");
    assert!(report.verdict_pass());
    assert!(
        report.rendered.contains("overload verdict: PASS"),
        "{}",
        report.rendered
    );

    // The bench record has both phases and parses as strict JSON.
    let text = std::fs::read_to_string(&bench).expect("bench file written");
    let parsed = json::parse(&text).expect("bench record is valid JSON");
    let rendered = format!("{parsed:?}");
    assert!(text.contains("\"phase\": \"calibrate\""), "{text}");
    assert!(text.contains("\"phase\": \"overload\""), "{text}");
    assert!(text.contains("\"verdict\": \"pass\""), "{text}");
    assert!(rendered.contains("sustainable_rps"), "{rendered}");
    let _ = std::fs::remove_file(&bench);
    server.shutdown_and_join();
}

#[test]
fn recorded_traces_replay_against_the_same_mix() {
    let server = admission_server();
    let trace = temp_path("trace.txt");

    // Record: the generated schedule lands in the trace file.
    let mut record = overload_options(&server);
    if let Some(ol) = record.open_loop.as_mut() {
        ol.arrivals = 120;
        ol.trace_out = Some(trace.clone());
    }
    let recorded = loadgen::run_open_loop(&record).expect("record run passes");
    assert!(!recorded.trace_replayed);

    // The emitted trace is self-consistent: parsing and re-emitting it
    // reproduces the exact bytes on disk.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let (cfg, arrivals) = dcnr_core::traffic::parse_trace(&text).expect("trace parses");
    assert_eq!(arrivals.len(), 120);
    assert_eq!(dcnr_core::traffic::emit_trace(&cfg, &arrivals), text);

    // Replay: the same schedule drives a fresh run; the report shows
    // the replay and the arrival count matches the recording.
    let mut replay = overload_options(&server);
    if let Some(ol) = replay.open_loop.as_mut() {
        ol.trace_in = Some(trace.clone());
    }
    let replayed = loadgen::run_open_loop(&replay).expect("replay run passes");
    assert!(replayed.trace_replayed);
    assert_eq!(replayed.arrivals, 120);
    assert_eq!(replayed.dispatched + replayed.client_dropped, 120);
    assert!(
        replayed.rendered.contains("[trace replay]"),
        "{}",
        replayed.rendered
    );

    // A trace recorded against a different mix width is refused as a
    // usage error rather than silently misindexing.
    let mut mismatched = overload_options(&server);
    mismatched.artifacts = vec![Experiment::Fig15, Experiment::Fig16];
    mismatched.scenario_seeds = 2;
    if let Some(ol) = mismatched.open_loop.as_mut() {
        ol.trace_in = Some(trace.clone());
    }
    let err = loadgen::run_open_loop(&mismatched).unwrap_err();
    assert_eq!(err.kind(), "usage");
    let _ = std::fs::remove_file(&trace);
    server.shutdown_and_join();
}

#[test]
fn forced_overload_sheds_yet_health_keeps_answering() {
    // One worker, a slow-ish render mix, and a hard offered rate well
    // beyond what one worker can serve: the run must shed (server 503s,
    // sojourn drops, or client-side bound drops) while the priority
    // lane keeps /healthz and /readyz answering.
    let server = serve::start(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 8,
        admission: AdmissionConfig {
            sojourn_target: Some(Duration::from_millis(50)),
            priority_depth: 8,
            adaptive_retry_after: true,
        },
        ..ServeOptions::default()
    })
    .expect("bind an ephemeral port");
    let mut opts = overload_options(&server);
    if let Some(ol) = opts.open_loop.as_mut() {
        ol.rate = Some(600.0);
        ol.overload = 3.0;
        ol.arrivals = 400;
        ol.max_in_flight = 24;
        ol.health_floor = 0.5;
    }
    let report = loadgen::run_open_loop(&opts).expect("accounting floors are generous");
    let refused = report.shed + report.client_dropped + report.errors;
    assert!(
        refused > 0,
        "a 1-worker server at 1800 req/s offered must refuse load somewhere: {}",
        report.rendered
    );
    assert!(report.health_probes > 0);
    assert!(
        report.health_ok as f64 >= report.health_probes as f64 * 0.5,
        "health must keep answering under overload: {}/{}",
        report.health_ok,
        report.health_probes
    );
    server.shutdown_and_join();
}
