//! Cross-crate integration tests for the backbone study: simulation →
//! e-mail parsing → ticket DB → metrics, verified against the §6 claims.

use dcnr_core::backbone::topo::BackboneParams;
use dcnr_core::backbone::{BackboneSimConfig, PaperModels};
use dcnr_core::InterDcStudy;

fn study() -> InterDcStudy {
    InterDcStudy::run(BackboneSimConfig {
        seed: 0xBEEF,
        ..Default::default()
    })
}

#[test]
fn tens_of_thousands_of_events() {
    // §6: "comprising tens of thousands of real world events" — each
    // ticket is two events (start + complete e-mails).
    let s = study();
    assert!(
        s.output().emails.len() > 10_000,
        "emails {}",
        s.output().emails.len()
    );
    assert_eq!(s.ingest_failures, 0);
}

#[test]
fn edge_failures_on_the_order_of_weeks_to_months() {
    // §6.1: "Backbone links that connect data centers typically fail on
    // the order of weeks to months and typically recover on the order
    // of hours."
    let s = study();
    let mtbf = s.metrics().edge_mtbf.summary();
    assert!(mtbf.median() > 24.0 * 7.0, "median {} h", mtbf.median());
    assert!(mtbf.median() < 24.0 * 150.0, "median {} h", mtbf.median());
    let mttr = s.metrics().edge_mttr.summary();
    assert!(
        mttr.median() > 1.0 && mttr.median() < 48.0,
        "median {} h",
        mttr.median()
    );
}

#[test]
fn edge_mtbf_model_recovered() {
    // Fig. 15: MTBF_edge(p) = 462.88·e^{2.3408p}, R² = 0.94. The
    // generator samples that model (with jitter + continent scaling);
    // the measurement pipeline must recover coefficients in the same
    // regime with a comparable fit quality.
    let s = study();
    let fit = s.metrics().edge_mtbf.fit.expect("fit");
    let paper = PaperModels::edge_mtbf();
    assert!(
        fit.a > paper.a * 0.4 && fit.a < paper.a * 2.5,
        "a = {}",
        fit.a
    );
    assert!(
        fit.b > paper.b * 0.5 && fit.b < paper.b * 1.8,
        "b = {}",
        fit.b
    );
    assert!(fit.r2 > 0.75, "r2 = {}", fit.r2);
}

#[test]
fn edge_mttr_model_recovered() {
    // Fig. 16: MTTR_edge(p) = 1.513·e^{4.256p}, R² = 0.87.
    let s = study();
    let fit = s.metrics().edge_mttr.fit.expect("fit");
    let paper = PaperModels::edge_mttr();
    assert!(
        fit.b > paper.b * 0.4 && fit.b < paper.b * 1.6,
        "b = {}",
        fit.b
    );
    assert!(fit.r2 > 0.6, "r2 = {}", fit.r2);
}

#[test]
fn vendor_variance_spans_orders_of_magnitude() {
    // §6.2: vendor MTBF and MTTR each span multiple orders of magnitude.
    let s = study();
    let mtbf = s.metrics().vendor_mtbf.summary();
    assert!(
        mtbf.max() / mtbf.min() > 100.0,
        "MTBF span {}",
        mtbf.max() / mtbf.min()
    );
    let mttr = s.metrics().vendor_mttr.summary();
    assert!(
        mttr.max() / mttr.min() > 10.0,
        "MTTR span {}",
        mttr.max() / mttr.min()
    );
}

#[test]
fn vendor_mttr_model_recovered() {
    // Fig. 18: MTTR_vendor(p) = 1.1345·e^{4.7709p}, R² = 0.98.
    let s = study();
    let fit = s.metrics().vendor_mttr.fit.expect("fit");
    assert!(fit.b > 1.8, "b = {}", fit.b);
    let median = s.metrics().vendor_mttr.summary().median();
    assert!(median > 4.0 && median < 40.0, "median {median}");
}

#[test]
fn table4_africa_and_australia_outliers() {
    // §6.3: Africa has the longest MTBF and the slowest recovery;
    // Australia recovers fastest.
    let s = study();
    let rows = &s.metrics().continents;
    let get = |c: dcnr_core::backbone::Continent| {
        rows.iter()
            .find(|r| r.continent == c)
            .cloned()
            .expect("row")
    };
    use dcnr_core::backbone::Continent::*;
    let africa = get(Africa);
    for c in [NorthAmerica, Europe, Asia, SouthAmerica] {
        assert!(
            africa.mtbf_hours > get(c).mtbf_hours,
            "africa {} vs {c:?} {}",
            africa.mtbf_hours,
            get(c).mtbf_hours
        );
    }
    let australia = get(Australia);
    for c in [NorthAmerica, Europe, Africa] {
        assert!(
            australia.mttr_hours < get(c).mttr_hours,
            "australia {} vs {c:?} {}",
            australia.mttr_hours,
            get(c).mttr_hours
        );
    }
}

#[test]
fn table4_distribution_matches() {
    let s = study();
    for row in &s.metrics().continents {
        assert!(
            (row.distribution - row.continent.edge_share()).abs() < 0.02,
            "{}: {} vs {}",
            row.continent,
            row.distribution,
            row.continent.edge_share()
        );
    }
}

#[test]
fn no_catastrophic_partitions_but_real_risk() {
    // §3.2: "we have not seen catastrophic network partitions that
    // disconnect data centers" — most of the time everything is up, yet
    // the p99.99 tail is nonzero (why they plan capacity against it).
    let s = study();
    let r = s.risk_report(200_000).expect("report");
    assert!(r.p_all_up > 0.2, "P(all up) {}", r.p_all_up);
    assert!(r.p9999_failures >= 1);
    assert!(r.p9999_failures <= 15, "p9999 {}", r.p9999_failures);
}

#[test]
fn smaller_backbone_still_measures() {
    // The pipeline degrades gracefully to small deployments.
    let s = InterDcStudy::run(BackboneSimConfig {
        params: BackboneParams {
            edges: 10,
            vendors: 4,
            min_links_per_edge: 3,
        },
        seed: 3,
        ..Default::default()
    });
    assert!(s.metrics().edge_mtbf.curve.len() >= 8);
    assert_eq!(s.ingest_failures, 0);
}

#[test]
fn determinism_end_to_end() {
    let a = study();
    let b = study();
    assert_eq!(a.tickets().len(), b.tickets().len());
    let fa = a.metrics().edge_mtbf.fit.unwrap();
    let fb = b.metrics().edge_mtbf.fit.unwrap();
    assert_eq!(fa.a, fb.a);
    assert_eq!(fa.b, fb.b);
}
