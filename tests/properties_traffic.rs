//! Property-based tests for the open-loop traffic model: trace
//! determinism (same seed+config → byte-identical trace, replay ≡
//! generate), interarrival statistics (sample mean tracks the
//! configured rate), and the flat-path identity (a zero-rate burst
//! profile and a zero-amplitude diurnal profile are draw-for-draw the
//! same stream as plain Poisson).

use dcnr_core::traffic::{emit_trace, generate, parse_trace};
use dcnr_core::{BurstProfile, DiurnalProfile, TrafficConfig};
use proptest::prelude::*;
use std::time::Duration;

/// An arbitrary valid config exercising every knob.
fn any_config() -> impl Strategy<Value = TrafficConfig> {
    (
        0u64..1_000_000_000,
        10.0f64..2_000.0,
        1usize..400,
        1u32..12,
        // Burst: an on/off selector plus the profile knobs; off maps to
        // the default (disabled) profile. (The compat proptest shim has
        // no `prop_oneof!`, so arms are encoded as a drawn selector.)
        (0u8..2, 0.5f64..5.0, 1.5f64..8.0, 20u64..300),
        // Diurnal: same selector encoding.
        (0u8..2, 0.05f64..1.0, 200u64..5_000),
    )
        .prop_map(
            |(seed, rate_per_sec, arrivals, mix_entries, (b_on, br, bm, bms), (d_on, da, dms))| {
                TrafficConfig {
                    seed,
                    rate_per_sec,
                    arrivals,
                    mix_entries,
                    burst: if b_on == 1 {
                        BurstProfile {
                            rate_per_sec: br,
                            multiplier: bm,
                            duration: Duration::from_millis(bms),
                        }
                    } else {
                        BurstProfile::default()
                    },
                    diurnal: if d_on == 1 {
                        DiurnalProfile {
                            amplitude: da,
                            period: Duration::from_millis(dms),
                        }
                    } else {
                        DiurnalProfile::default()
                    },
                }
            },
        )
}

proptest! {
    #[test]
    fn traces_are_deterministic_and_replay_equals_generate(cfg in any_config()) {
        let first = generate(&cfg).unwrap();
        let second = generate(&cfg).unwrap();
        prop_assert_eq!(&first, &second, "same config must generate the same stream");
        let trace_a = emit_trace(&cfg, &first);
        let trace_b = emit_trace(&cfg, &second);
        prop_assert_eq!(&trace_a, &trace_b, "same stream must emit identical bytes");
        // Replay: parsing the trace recovers the exact config and
        // arrivals, and re-emitting from the parse is byte-identical.
        let (parsed_cfg, parsed) = parse_trace(&trace_a).unwrap();
        prop_assert_eq!(parsed_cfg, cfg);
        prop_assert_eq!(&parsed, &first, "replaying a trace must equal generating it");
        prop_assert_eq!(emit_trace(&parsed_cfg, &parsed), trace_a);
    }

    #[test]
    fn arrivals_are_monotone_and_mixes_stay_in_range(cfg in any_config()) {
        let arrivals = generate(&cfg).unwrap();
        prop_assert_eq!(arrivals.len(), cfg.arrivals);
        prop_assert!(arrivals.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
        prop_assert!(arrivals.iter().all(|a| a.mix < cfg.mix_entries));
    }

    #[test]
    fn flat_sample_mean_tracks_the_configured_rate(
        seed in 0u64..1_000_000_000,
        rate in 10.0f64..1_000.0,
    ) {
        // 2000 exponential draws: the sample mean of a Poisson
        // process's interarrivals concentrates tightly around 1/rate
        // (relative sd ~ 1/sqrt(2000) ≈ 2.2%; 15% is > 6 sigma).
        let cfg = TrafficConfig {
            seed,
            rate_per_sec: rate,
            arrivals: 2_000,
            mix_entries: 1,
            ..TrafficConfig::default()
        };
        let arrivals = generate(&cfg).unwrap();
        let span_secs = arrivals.last().unwrap().at_micros as f64 / 1e6;
        let empirical = cfg.arrivals as f64 / span_secs;
        prop_assert!(
            (empirical - rate).abs() / rate < 0.15,
            "empirical rate {empirical:.1}/s strays from configured {rate:.1}/s"
        );
    }

    #[test]
    fn disabled_modulation_is_draw_identical_to_plain_poisson(
        seed in 0u64..1_000_000_000,
        rate in 10.0f64..1_000.0,
        arrivals in 1usize..500,
        mix_entries in 1u32..8,
    ) {
        // The flat-path contract: a burst profile at rate zero (or
        // multiplier one) and a diurnal profile at amplitude zero must
        // not just be statistically similar to plain Poisson — they
        // must consume the seed streams identically and produce the
        // exact same arrivals.
        let plain = TrafficConfig {
            seed,
            rate_per_sec: rate,
            arrivals,
            mix_entries,
            burst: BurstProfile::default(),
            diurnal: DiurnalProfile::default(),
        };
        let zero_rate_burst = TrafficConfig {
            burst: BurstProfile {
                rate_per_sec: 0.0,
                multiplier: 5.0,
                duration: Duration::from_millis(100),
            },
            ..plain
        };
        let unit_multiplier = TrafficConfig {
            burst: BurstProfile {
                rate_per_sec: 2.0,
                multiplier: 1.0,
                duration: Duration::from_millis(100),
            },
            ..plain
        };
        let zero_amplitude = TrafficConfig {
            diurnal: DiurnalProfile {
                amplitude: 0.0,
                period: Duration::from_secs(10),
            },
            ..plain
        };
        let want = generate(&plain).unwrap();
        for cfg in [zero_rate_burst, unit_multiplier, zero_amplitude] {
            prop_assert!(cfg.is_flat());
            prop_assert_eq!(&generate(&cfg).unwrap(), &want);
            let modulated = emit_trace(&cfg, &want);
            let flat = emit_trace(&plain, &want);
            prop_assert_eq!(
                modulated.lines().skip(2).collect::<Vec<_>>(),
                flat.lines().skip(2).collect::<Vec<_>>(),
                "arrival lines are identical; only the config header differs"
            );
        }
    }
}
