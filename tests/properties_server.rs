//! Property-based tests for the server substrate: at shard count 1 the
//! sharded LRU must be observation-equivalent to a single [`LruCache`]
//! of the same capacity — same hits, same misses, same residency, same
//! eviction arithmetic, for any interleaving of inserts and lookups.
//! That equivalence is why the thread engine runs on `ShardedLru` with
//! one shard and stays byte-identical to its pre-shard behavior.

use dcnr_server::{LruCache, ShardedLru};
use proptest::prelude::*;

/// One cache operation over a small key universe (small on purpose:
/// collisions, re-inserts, and evictions all happen constantly).
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u16),
    Get(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..2, 0u8..16, any::<u16>()).prop_map(|(tag, k, v)| {
        if tag == 0 {
            Op::Insert(k, v)
        } else {
            Op::Get(k)
        }
    })
}

proptest! {
    #[test]
    fn one_shard_is_observation_equivalent_to_a_single_lru(
        capacity in 1usize..8,
        ops in proptest::collection::vec(op_strategy(), 0..200)
    ) {
        let sharded: ShardedLru<u8, u16> = ShardedLru::new(1, capacity);
        let mut plain: LruCache<u8, u16> = LruCache::new(capacity);
        let mut gets = 0u64;
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    sharded.insert(k, v);
                    plain.insert(k, v);
                }
                Op::Get(k) => {
                    gets += 1;
                    // Lookups must agree (value and presence), and both
                    // refresh recency, so divergence would compound into
                    // different eviction orders — checked implicitly by
                    // every later lookup.
                    prop_assert_eq!(sharded.get(&k), plain.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(sharded.len(), plain.len());
        prop_assert!(sharded.len() <= capacity);
        // The shard counters account for exactly the lookups made.
        let (hits, misses, _) = sharded.shard_snapshots()[0];
        prop_assert_eq!(hits + misses, gets);
    }

    #[test]
    fn eviction_counters_balance_inserts_against_residency(
        capacity in 1usize..8,
        keys in proptest::collection::vec(0u8..32, 0..64)
    ) {
        // Distinct-key inserts only: every insert either grows the
        // shard or displaces exactly one entry, so evictions ==
        // distinct inserts - final residency.
        let sharded: ShardedLru<u8, u8> = ShardedLru::new(1, capacity);
        let mut distinct = std::collections::BTreeSet::new();
        for &k in &keys {
            if distinct.insert(k) {
                sharded.insert(k, k);
            }
        }
        let (_, _, evictions) = sharded.shard_snapshots()[0];
        prop_assert_eq!(
            evictions as usize,
            distinct.len() - sharded.len(),
            "cap {capacity}: {} distinct inserts, {} resident",
            distinct.len(),
            sharded.len()
        );
    }

    #[test]
    fn shard_placement_is_deterministic_and_lookups_survive_sharding(
        shards in 1usize..8,
        keys in proptest::collection::vec(any::<u16>(), 1..32)
    ) {
        // Capacity >= one entry per shard per key, so nothing evicts:
        // whatever the shard count, an inserted key must be found, in
        // the same shard, every time.
        let cache: ShardedLru<u16, u16> = ShardedLru::new(shards, shards * keys.len());
        for &k in &keys {
            cache.insert(k, k.wrapping_add(1));
        }
        prop_assert_eq!(cache.shard_count(), shards);
        for &k in &keys {
            prop_assert_eq!(cache.shard_for(&k), cache.shard_for(&k));
            prop_assert!(cache.shard_for(&k) < shards);
            prop_assert_eq!(cache.get(&k), Some(k.wrapping_add(1)));
        }
    }
}
