//! End-to-end guarantees of the sweep supervision layer: panic
//! isolation, watchdog deadlines, retry with fresh seeds, degraded-mode
//! aggregation, and checkpoint/resume byte-identity.

use dcnr_core::{
    checkpoint, run_supervised, run_sweep, FaultMode, FaultPlan, FaultSpec, ReplicaStatus,
    Scenario, ScenarioKind, SupervisorConfig, SweepConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn small(kind: ScenarioKind, seed: u64) -> Scenario {
    Scenario {
        kind,
        scale: 0.5,
        backbone: dcnr_core::backbone::topo::BackboneParams {
            edges: 30,
            vendors: 12,
            min_links_per_edge: 3,
        },
        ..Scenario::intra(seed)
    }
}

/// A unique temp directory per call: tests run in parallel in one
/// process, so the pid alone is not enough.
fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dcnr-supervision-{tag}-{}-{n}", std::process::id()))
}

fn fault(replica: usize, mode: FaultMode, once: bool) -> FaultSpec {
    FaultSpec {
        replica,
        mode,
        once,
    }
}

#[test]
fn panic_and_hang_degrade_the_sweep_without_moving_survivors() {
    let base = small(ScenarioKind::Backbone, 0xFA_57);
    let config = SweepConfig::new(base, 4, 4);
    let healthy = run_sweep(config).unwrap();

    // Replica 1 panics on every attempt; replica 2 hangs until the
    // watchdog abandons it. The deadline must comfortably exceed a
    // healthy replica's runtime (~1s here) — the watchdog cannot tell
    // slow from hung.
    let sup = SupervisorConfig {
        deadline: Some(Duration::from_secs(10)),
        retries: 1,
        faults: FaultPlan::new(vec![
            fault(1, FaultMode::Panic, false),
            fault(2, FaultMode::Hang, false),
        ]),
        ..SupervisorConfig::default()
    };
    let degraded = run_supervised(config, &sup).unwrap();

    assert_eq!(degraded.failed_replicas, 2);
    assert_eq!(degraded.completed_replicas(), 2);
    assert!(matches!(
        degraded.outcomes[1].status,
        ReplicaStatus::Quarantined { .. }
    ));
    assert_eq!(degraded.outcomes[1].retries, 1, "panic was retried once");
    assert!(matches!(
        degraded.outcomes[2].status,
        ReplicaStatus::DeadlineKilled { .. }
    ));
    assert!(degraded.supervision.contains("quarantined"));
    assert!(degraded.supervision.contains("deadline-killed"));
    assert!(degraded.rendered.contains("DEGRADED"));

    // The survivors' bands cover exactly the healthy replicas 0 and 3:
    // the same order statistics, untouched by the failures elsewhere.
    assert_eq!(degraded.rows.len(), healthy.rows.len());
    for (d, h) in degraded.rows.iter().zip(&healthy.rows) {
        assert_eq!(d.metric, h.metric);
        assert_eq!(d.band.n, 2, "{}", d.metric);
        assert_eq!(d.missing, 2, "{}", d.metric);
        assert!(
            d.band.min >= h.band.min && d.band.max <= h.band.max,
            "{}: survivor range must be inside the full range",
            d.metric
        );
    }

    // The gate: two failures pass a budget of 2, fail a budget of 1.
    assert!(degraded.gate(2).is_ok());
    assert_eq!(degraded.gate(1).unwrap_err().kind(), "failed");
}

#[test]
fn transient_panic_is_retried_on_a_fresh_seed_and_succeeds() {
    let base = small(ScenarioKind::Backbone, 0x7E57);
    let config = SweepConfig::new(base, 3, 2);
    let sup = SupervisorConfig {
        faults: FaultPlan::new(vec![fault(0, FaultMode::Panic, true)]),
        ..SupervisorConfig::default()
    };
    let out = run_supervised(config, &sup).unwrap();
    assert_eq!(out.failed_replicas, 0);
    let ReplicaStatus::Completed {
        attempt, cached, ..
    } = out.outcomes[0].status
    else {
        panic!("replica 0 must complete: {:?}", out.outcomes[0].status);
    };
    assert_eq!(attempt, 1, "succeeded on the retry");
    assert!(!cached);
    assert_eq!(out.outcomes[0].retries, 1);
    assert!(
        out.supervision.contains("after 1 retry"),
        "{}",
        out.supervision
    );
    // Every metric has all three replicas: the retried one contributed
    // (under its fresh derived seed).
    for row in &out.rows {
        assert_eq!(row.band.n, 3, "{}", row.metric);
    }
}

#[test]
fn zero_retries_quarantines_on_first_panic() {
    let base = small(ScenarioKind::Backbone, 0xBEEF);
    let config = SweepConfig::new(base, 2, 2);
    let sup = SupervisorConfig {
        retries: 0,
        faults: FaultPlan::new(vec![fault(0, FaultMode::Panic, true)]),
        ..SupervisorConfig::default()
    };
    let out = run_supervised(config, &sup).unwrap();
    assert_eq!(out.failed_replicas, 1);
    assert_eq!(out.outcomes[0].retries, 0);
    let ReplicaStatus::Quarantined { error } = &out.outcomes[0].status else {
        panic!("expected quarantine");
    };
    assert_eq!(error.kind(), "panic");
    assert!(error.to_string().contains("injected fault"), "{error}");
}

#[test]
fn checkpointed_sweep_resumes_byte_identically_and_only_reruns_missing() {
    let base = small(ScenarioKind::Backbone, 0xC0DE);
    let config = SweepConfig::new(base, 4, 2);
    let dir = temp_dir("resume");

    let sup = SupervisorConfig {
        checkpoint: Some(dir.clone()),
        ..SupervisorConfig::default()
    };
    let first = run_supervised(config, &sup).unwrap();
    assert_eq!(first.cache_hits(), 0);
    for i in 0..4 {
        assert!(
            checkpoint::shard_path(&dir, i).exists(),
            "shard {i} must be persisted"
        );
    }

    // Simulate an interrupted sweep: drop one shard, then resume.
    std::fs::remove_file(checkpoint::shard_path(&dir, 2)).unwrap();
    let resumed = run_supervised(config, &sup).unwrap();
    assert_eq!(resumed.cache_hits(), 3, "only replica 2 re-executes");
    assert_eq!(resumed.rendered, first.rendered, "byte-identical aggregate");
    assert_eq!(first.failed_replicas, 0);
    assert_eq!(resumed.failed_replicas, 0);

    // A corrupt shard is ignored with a note, not fatal.
    std::fs::write(checkpoint::shard_path(&dir, 0), "{ not json").unwrap();
    let healed = run_supervised(config, &sup).unwrap();
    assert_eq!(healed.rendered, first.rendered);
    assert!(healed.outcomes[0].cache_note.is_some(), "shard was ignored");
    assert!(healed.supervision.contains("invalid shard"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_shards_from_a_degraded_run_serve_a_healthy_resume() {
    // A sweep with one deterministic panic, checkpointed; re-running
    // without the fault completes only the quarantined replica and
    // produces the same bytes as a never-faulted checkpointed run.
    let base = small(ScenarioKind::Backbone, 0xD1CE);
    let config = SweepConfig::new(base, 3, 2);
    let dir = temp_dir("degraded");

    let faulty = SupervisorConfig {
        retries: 0,
        checkpoint: Some(dir.clone()),
        faults: FaultPlan::new(vec![fault(1, FaultMode::Panic, false)]),
        ..SupervisorConfig::default()
    };
    let degraded = run_supervised(config, &faulty).unwrap();
    assert_eq!(degraded.failed_replicas, 1);
    assert!(!checkpoint::shard_path(&dir, 1).exists());

    let clean = SupervisorConfig {
        checkpoint: Some(dir.clone()),
        ..SupervisorConfig::default()
    };
    let recovered = run_supervised(config, &clean).unwrap();
    assert_eq!(recovered.failed_replicas, 0);
    assert_eq!(recovered.cache_hits(), 2);

    let reference = run_sweep(config).unwrap();
    assert_eq!(recovered.rendered, reference.rendered);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_dir_rejects_a_different_sweep() {
    let dir = temp_dir("mismatch");
    let sup = SupervisorConfig {
        checkpoint: Some(dir.clone()),
        ..SupervisorConfig::default()
    };
    let a = SweepConfig::new(small(ScenarioKind::Backbone, 1), 2, 1);
    run_supervised(a, &sup).unwrap();
    let b = SweepConfig::new(small(ScenarioKind::Backbone, 2), 2, 1);
    let err = run_supervised(b, &sup).unwrap_err();
    assert_eq!(err.kind(), "checkpoint");
    assert!(err.to_string().contains("master seed"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_round_trips_through_resume_config() {
    let dir = temp_dir("manifest");
    let config = SweepConfig::new(small(ScenarioKind::Chaos, 0xABCD), 2, 2);
    let sup = SupervisorConfig {
        checkpoint: Some(dir.clone()),
        ..SupervisorConfig::default()
    };
    let first = run_supervised(config, &sup).unwrap();

    // What `dcnr sweep --resume` does: rebuild the config from the
    // manifest alone, then run against the same directory.
    let manifest = checkpoint::read_manifest(&dir).unwrap().expect("manifest");
    let rebuilt = manifest.to_config(1).unwrap();
    let resumed = run_supervised(rebuilt, &sup).unwrap();
    assert_eq!(resumed.cache_hits(), 2, "everything served from shards");
    assert_eq!(resumed.rendered, first.rendered);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_chaos_sweep_survives_under_supervision() {
    // The supervisor against the repo's own chaos machinery: a fault
    // mix hostile enough that replicas fail their tolerance gate, yet
    // the sweep still completes, aggregates, and reports honestly.
    let mut base = small(ScenarioKind::Chaos, 0x0DD5);
    base.chaos = dcnr_core::chaos::ChaosConfig::hostile(base.chaos.seed);
    let out = run_sweep(SweepConfig::new(base, 2, 2)).unwrap();
    assert_eq!(out.failed_replicas, 0, "failing acceptance is not a crash");
    assert!(
        out.passed_replicas < 2,
        "the hostile mix must push drift outside tolerance"
    );
    assert!(!out.rows.is_empty());
    assert!(out.gate(0).is_ok(), "acceptance failures are not failures");
}
