//! Engine parity: `dcnr serve --engine events` must put the same bytes
//! on the wire as the default thread pool for every route, cold cache
//! and warm, under concurrent clients — and must keep the overload
//! semantics (503 + `Retry-After` shedding, half-close + drain,
//! graceful `/admin/shutdown`) the thread engine guarantees. The
//! comparison is `cmp`-strength: whole responses, status line and
//! headers included, read straight off a raw socket.

use dcnr_core::serve::{self, Engine, ServeOptions};
use dcnr_core::telemetry::prometheus;
use dcnr_core::Experiment;
use dcnr_server::client;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Option<Duration> = Some(Duration::from_secs(30));

/// A fast scenario: quarter scale, small backbone.
const SMALL_QUERY: &str = "seed=11&scale=0.25&edges=40&vendors=16";

fn engine_server(engine: Engine, admin: bool) -> serve::RunningServer {
    serve::start(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        engine,
        admin,
        ..ServeOptions::default()
    })
    .expect("bind an ephemeral port")
}

/// The complete wire image of one GET — status line, headers, body —
/// so a comparison between engines is equivalent to `cmp` on captured
/// traffic, not just body equality.
fn raw_get(server: &serve::RunningServer, target: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: parity\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect(target);
    bytes
}

fn get(server: &serve::RunningServer, target: &str) -> client::ClientResponse {
    client::get(&server.addr().to_string(), target, TIMEOUT).expect(target)
}

fn validated_metrics(server: &serve::RunningServer) -> String {
    let resp = get(server, "/metrics");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).expect("metrics are UTF-8");
    prometheus::validate(&body).expect("metrics must satisfy the strict validator");
    body
}

#[test]
fn events_engine_serves_wire_bytes_identical_to_threads() {
    let threads = Arc::new(engine_server(Engine::Threads, false));
    let events = Arc::new(engine_server(Engine::Events, false));
    assert_eq!(threads.engine(), Engine::Threads);
    assert_eq!(events.engine(), Engine::Events);
    let artifacts = [Experiment::Fig15, Experiment::Fig16, Experiment::Table4];

    // Two rounds: the first renders into each engine's cache (cold),
    // the second serves from it (warm). Each round hammers all three
    // artifacts from 4 clients at once against both engines.
    for round in ["cold", "warm"] {
        let mut handles = Vec::new();
        for client_id in 0..4 {
            let threads = threads.clone();
            let events = events.clone();
            handles.push(std::thread::spawn(move || {
                artifacts
                    .iter()
                    .map(|e| {
                        let target = format!("/artifacts/{}?{SMALL_QUERY}", e.key());
                        (
                            client_id,
                            raw_get(&threads, &target),
                            raw_get(&events, &target),
                        )
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (i, (client_id, t, e)) in handle
                .join()
                .expect("client thread")
                .into_iter()
                .enumerate()
            {
                assert!(
                    t.starts_with(b"HTTP/1.1 200 OK\r\n"),
                    "{round}: client {client_id} got a non-200 for {:?}",
                    artifacts[i]
                );
                assert_eq!(
                    t, e,
                    "{round}: wire bytes diverge between engines on {:?}",
                    artifacts[i]
                );
            }
        }
    }

    // Non-artifact routes — health, readiness, 404s, and the 400 the
    // query parser raises — must also match byte for byte.
    for target in [
        "/healthz",
        "/readyz",
        "/no/such/route",
        "/artifacts/fig99",
        "/artifacts/fig15?bogus=1",
        // Admin stays opt-in on both engines: same 404.
        "/admin/shutdown",
    ] {
        assert_eq!(
            raw_get(&threads, target),
            raw_get(&events, target),
            "wire bytes diverge on {target}"
        );
    }

    // /metrics is the one sanctioned divergence: the events engine
    // exports shard counters and reactor series; the threads default
    // must not grow any of them.
    let tm = validated_metrics(&threads);
    let em = validated_metrics(&events);
    for name in [
        "dcnr_server_cache_shard_hits_total",
        "dcnr_server_cache_shard_misses_total",
        "dcnr_server_cache_shard_evictions_total",
        "dcnr_server_reactor_wakeups_total",
        "dcnr_server_reactor_ready_events",
    ] {
        assert!(!tm.contains(name), "threads scrape must not export {name}");
        assert!(em.contains(name), "events scrape must export {name}: {em}");
    }
    assert!(
        em.contains("dcnr_server_cache_shard_hits_total{shard=\"0\"}"),
        "shard counters carry the shard label: {em}"
    );

    for server in [threads, events] {
        match Arc::try_unwrap(server) {
            Ok(server) => server.shutdown_and_join(),
            Err(_) => panic!("client threads were joined; the Arc must be unique"),
        }
    }
}

#[test]
fn events_engine_sheds_under_saturation_and_drains_gracefully() {
    let server = Arc::new(
        serve::start(&ServeOptions {
            addr: "127.0.0.1:0".into(),
            engine: Engine::Events,
            workers: 1,
            queue_depth: 1,
            admin: true,
            ..ServeOptions::default()
        })
        .unwrap(),
    );

    // 8 concurrent slow requests against 1 reactor + 1 queue slot: the
    // service slot admits one handler at a time, so at most 2 can be in
    // the building and most of the burst must shed — exactly the
    // thread-engine arithmetic.
    let mut handles = Vec::new();
    for _ in 0..8 {
        let server = server.clone();
        handles.push(std::thread::spawn(move || {
            get(&server, "/admin/sleep?millis=200")
        }));
    }
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let ok = responses.iter().filter(|r| r.status == 200).count();
    let shed = responses.iter().filter(|r| r.status == 503).count();
    assert_eq!(ok + shed, 8, "nothing may hang or error");
    assert!(ok >= 1, "the reactor served someone");
    assert!(shed >= 4, "most of the burst must shed, got {shed}");
    for r in responses.iter().filter(|r| r.status == 503) {
        assert!(
            r.header("retry-after").is_some(),
            "shed responses carry Retry-After"
        );
        assert_eq!(r.body, b"server busy; retry later\n");
    }

    // The shed path half-closes and drains, so a client that reads the
    // 503 saw a FIN, not an RST — read_to_end above already proved it
    // by not erroring. The server is still healthy and counts sheds.
    assert_eq!(get(&server, "/healthz").status, 200);
    let metrics = validated_metrics(&server);
    let counted: f64 = metrics
        .lines()
        .filter(|l| l.starts_with("dcnr_server_shed_total"))
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<f64>().ok()))
        .sum();
    assert!(counted >= shed as f64, "{metrics}");

    // Graceful drain: /admin/shutdown flips readiness, keeps serving
    // while pending, and shutdown_and_join returns (reactors exit).
    let resp = get(&server, "/admin/shutdown");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"draining\n");
    assert!(server.shutdown_requested());
    let ready = get(&server, "/readyz");
    assert_eq!(ready.status, 503);
    assert_eq!(ready.body, b"draining\n");
    assert_eq!(get(&server, "/healthz").status, 200);

    Arc::try_unwrap(server)
        .unwrap_or_else(|_| panic!("all clients joined"))
        .shutdown_and_join();
}
