//! Scenario-engine and sweep determinism guarantees, end to end.
//!
//! The sweep's contract is that parallelism is invisible: the same
//! scenario and seed produce byte-identical reports whether one worker
//! or eight execute the replicas, and the aggregated bands are a
//! function of (scenario, seeds) alone.

use dcnr_core::{run_sweep, RunContext, Scenario, ScenarioKind, SweepConfig};

fn small(kind: ScenarioKind, seed: u64) -> Scenario {
    Scenario {
        kind,
        scale: 0.5,
        backbone: dcnr_core::backbone::topo::BackboneParams {
            edges: 30,
            vendors: 12,
            min_links_per_edge: 3,
        },
        ..Scenario::intra(seed)
    }
}

#[test]
fn scenario_report_is_identical_across_repeat_executions() {
    // The engine itself is deterministic: two fresh contexts over the
    // same scenario render byte-identical reports.
    for kind in [
        ScenarioKind::Intra,
        ScenarioKind::Backbone,
        ScenarioKind::Chaos,
    ] {
        let a = RunContext::new(small(kind, 77)).execute();
        let b = RunContext::new(small(kind, 77)).execute();
        assert_eq!(a.rendered, b.rendered, "{kind}");
        assert_eq!(a.passed, b.passed, "{kind}");
    }
}

#[test]
fn sweep_report_is_byte_identical_for_any_worker_count() {
    let base = small(ScenarioKind::Backbone, 0xFA_57);
    let serial = run_sweep(SweepConfig::new(base, 4, 1)).unwrap();
    let parallel = run_sweep(SweepConfig::new(base, 4, 8)).unwrap();
    assert_eq!(serial.rendered, parallel.rendered);
    assert_eq!(serial.replica_seeds, parallel.replica_seeds);
    assert_eq!(serial.rows.len(), parallel.rows.len());
    for (a, b) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(a.metric, b.metric);
        assert_eq!(a.band, b.band, "{}", a.metric);
    }
}

#[test]
fn intra_sweep_aggregate_is_independent_of_worker_count() {
    let base = small(ScenarioKind::Intra, 0x1A_77);
    let a = run_sweep(SweepConfig::new(base, 3, 1)).unwrap();
    let b = run_sweep(SweepConfig::new(base, 3, 3)).unwrap();
    assert_eq!(a.rendered, b.rendered);
}

#[test]
fn sweep_bands_quantify_cross_seed_spread() {
    let out = run_sweep(SweepConfig::new(
        small(ScenarioKind::Backbone, 0xBA_4D),
        4,
        2,
    ))
    .unwrap();
    assert_eq!(out.passed_replicas, 4);
    // Every metric was measured in all four replicas and has a CI.
    for row in &out.rows {
        assert_eq!(row.band.n, 4, "{}", row.metric);
        let ci = row.band.ci.as_ref().expect("n=4 admits a bootstrap CI");
        assert!(
            ci.lo <= ci.estimate && ci.estimate <= ci.hi,
            "{}",
            row.metric
        );
    }
    // Seeds genuinely differ: at least one metric has nonzero spread.
    assert!(out.rows.iter().any(|r| r.band.stddev > 0.0));
    assert!(out.rendered.contains("paper"));
}

#[test]
fn different_master_seeds_give_different_replica_sets() {
    let a = run_sweep(SweepConfig::new(small(ScenarioKind::Backbone, 1), 3, 2)).unwrap();
    let b = run_sweep(SweepConfig::new(small(ScenarioKind::Backbone, 2), 3, 2)).unwrap();
    assert_ne!(a.replica_seeds, b.replica_seeds);
    assert_ne!(a.rendered, b.rendered);
}
