//! End-to-end guarantees of the topology-zoo survivability study: the
//! scenario renders both `surv.*` artifacts deterministically, the
//! element-class ranking flip is visible in the report, and multi-seed
//! sweeps carry cross-seed bands with checkpoint/resume byte-identity.

use dcnr_core::survivability::{ElementClass, SurvivabilityConfig, SurvivabilityStudy, FRACTIONS};
use dcnr_core::{
    checkpoint, run_supervised, run_sweep, RunContext, Scenario, SupervisorConfig, SweepConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A quarter-scale survivability scenario: every zoo member is tiny
/// (the fat-tree collapses to k=4, DCell to n=2) so the full sweep and
/// lifespan replay run in well under a second.
fn quarter(seed: u64) -> Scenario {
    Scenario {
        scale: 0.25,
        topology: "dcell",
        ..Scenario::survivability(seed)
    }
}

/// A unique temp directory per call: tests run in parallel in one
/// process, so the pid alone is not enough.
fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dcnr-surv-{tag}-{}-{n}", std::process::id()))
}

#[test]
fn scenario_renders_both_surv_artifacts_deterministically() {
    let a = RunContext::new(quarter(0x51)).execute();
    let b = RunContext::new(quarter(0x51)).execute();
    assert_eq!(a.rendered, b.rendered, "same scenario, same bytes");
    assert!(a.passed);
    for line in [
        "surv.ranking: zoo survivability vs failed fraction",
        "surv.lifespan: Monte-Carlo fleet lifespan",
        "survivability ranking @30% switch loss:",
        "lifespan band [lo hi]",
        "lifespan on `dcell`",
    ] {
        assert!(
            a.rendered.contains(line),
            "missing {line:?}:\n{}",
            a.rendered
        );
    }
    // A different master seed draws different failure sets.
    let c = RunContext::new(quarter(0x52)).execute();
    assert_ne!(a.rendered, c.rendered);
}

#[test]
fn element_class_rankings_flip_between_switch_and_server_loss() {
    // The headline result of the zoo (cf. arXiv:1510.02735 §4): under
    // switch loss the server-centric DCell out-survives the fat-tree
    // (servers relay around dead switches), while under server loss the
    // ranking flips — fat-tree pairs only die with their endpoints, so
    // its curve is the no-relay baseline, and DCell falls below it as
    // dead servers take relay capacity with them.
    let study = SurvivabilityStudy::run(SurvivabilityConfig {
        scale: 0.25,
        seed: 11,
        topology: "fat-tree",
    });
    assert!(study.ranking_flip(), "ranking flip must hold");

    let by_switch = study.ranking(ElementClass::Switch, FRACTIONS[3]);
    let by_server = study.ranking(ElementClass::Server, FRACTIONS[3]);
    assert_ne!(
        by_switch, by_server,
        "element-class rankings must differ: switch {by_switch:?} vs server {by_server:?}"
    );

    // And the flip survives into the rendered artifact.
    let out = RunContext::new(quarter(0xF11)).execute();
    assert!(
        out.rendered
            .contains("ranking flip (dcell vs fat-tree, switch loss vs server loss): true"),
        "{}",
        out.rendered
    );
}

#[test]
fn survivability_sweep_is_byte_identical_for_any_worker_count() {
    let base = quarter(0x5EED);
    let serial = run_sweep(SweepConfig::new(base, 4, 1)).unwrap();
    let parallel = run_sweep(SweepConfig::new(base, 4, 2)).unwrap();
    assert_eq!(serial.rendered, parallel.rendered);
    assert_eq!(serial.replica_seeds, parallel.replica_seeds);

    // The sweep carries genuine cross-seed bands: every surv metric was
    // measured in all four replicas, and the seeded failure draws give
    // at least one metric nonzero spread.
    let surv_rows: Vec<_> = serial
        .rows
        .iter()
        .filter(|r| r.metric.starts_with("surv."))
        .collect();
    assert!(!surv_rows.is_empty(), "sweep must aggregate surv.* metrics");
    for row in &surv_rows {
        assert_eq!(row.band.n, 4, "{}", row.metric);
    }
    assert!(surv_rows.iter().any(|r| r.band.stddev > 0.0));
    // The structural invariants hold in every replica, so their bands
    // are degenerate at 1.0.
    let flip = surv_rows
        .iter()
        .find(|r| r.metric.contains("ranking flip"))
        .expect("ranking-flip metric is swept");
    assert_eq!(flip.band.mean, 1.0, "flip holds across all seeds");
}

#[test]
fn survivability_checkpoint_resumes_byte_identically() {
    let config = SweepConfig::new(quarter(0xC4), 3, 2);
    let dir = temp_dir("resume");
    let sup = SupervisorConfig {
        checkpoint: Some(dir.clone()),
        ..SupervisorConfig::default()
    };
    let first = run_supervised(config, &sup).unwrap();
    for i in 0..3 {
        assert!(checkpoint::shard_path(&dir, i).exists(), "shard {i}");
    }

    // Drop one shard; the resume re-executes only that replica and
    // renders the same bytes.
    std::fs::remove_file(checkpoint::shard_path(&dir, 1)).unwrap();
    let resumed = run_supervised(config, &sup).unwrap();
    assert_eq!(first.rendered, resumed.rendered);
    assert_eq!(resumed.cache_hits(), 2, "two replicas served from shards");
    std::fs::remove_dir_all(&dir).ok();
}
