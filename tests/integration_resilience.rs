//! End-to-end resilience contract of `dcnr serve` under transport
//! chaos: zero-rate plans leave every response byte-identical, the
//! `loadgen --chaos` harness reaches its eventual-success floor with
//! zero undetected corruption, mid-write clients still receive the
//! shed `503` (the half-close + drain regression), and the per-route
//! circuit breaker opens, serves stale, and recovers through a
//! half-open probe — all visible on a strictly validated `/metrics`.

use dcnr_core::serve::{self, RenderFaultPlan, ServeOptions};
use dcnr_core::telemetry::prometheus;
use dcnr_core::{loadgen, LoadgenOptions, RetryPolicy};
use dcnr_server::breaker::BreakerConfig;
use dcnr_server::chaos::FaultPlan;
use dcnr_server::client;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Option<Duration> = Some(Duration::from_secs(30));

/// A fast scenario: quarter scale, small backbone.
const SMALL_QUERY: &str = "seed=11&scale=0.25&edges=40&vendors=16";

fn get(server: &serve::RunningServer, target: &str) -> client::ClientResponse {
    client::get(&server.addr().to_string(), target, TIMEOUT).expect(target)
}

/// Fetches `/metrics` through the strict text-format validator.
fn validated_metrics(server: &serve::RunningServer) -> String {
    let resp = get(server, "/metrics");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body.clone()).expect("metrics are UTF-8");
    prometheus::validate(&body).expect("metrics must satisfy the strict validator");
    body
}

/// Sums the samples of `name` whose label set contains every `(k, v)`
/// pair in `labels`.
fn labeled_total(body: &str, name: &str, labels: &[(&str, &str)]) -> f64 {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.split(&[' ', '{'][..])
                .next()
                .is_some_and(|metric| metric == name)
        })
        .filter(|l| {
            labels
                .iter()
                .all(|(k, v)| l.contains(&format!("{k}=\"{v}\"")))
        })
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<f64>().ok()))
        .sum()
}

/// One raw HTTP/1.1 GET, returning the exact bytes the server put on
/// the wire (headers and all) — the byte-identity tests compare these.
fn raw_get(addr: &str, target: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: dcnr\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read response");
    bytes
}

#[test]
fn zero_rate_chaos_serving_is_byte_identical_to_chaos_off() {
    let plain = serve::start(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        ..ServeOptions::default()
    })
    .unwrap();
    // A zero-rate plan with a non-default seed: the shim is installed
    // and drawing, but must never perturb a single byte.
    let shimmed = serve::start(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        chaos: Some(FaultPlan {
            seed: 0xBEEF,
            ..FaultPlan::default()
        }),
        ..ServeOptions::default()
    })
    .unwrap();
    assert!(shimmed.chaos().is_some(), "the shim is actually installed");

    let targets = [
        format!("/artifacts/fig15?{SMALL_QUERY}"),
        format!("/artifacts/table4?{SMALL_QUERY}"),
        "/healthz".to_string(),
        "/no/such/route".to_string(),
    ];
    // Two rounds per target: cold (renders) and warm (cache hits) must
    // both match on the wire, status line through last body byte.
    for round in ["cold", "warm"] {
        for target in &targets {
            let want = raw_get(&plain.addr().to_string(), target);
            let got = raw_get(&shimmed.addr().to_string(), target);
            assert!(
                got == want,
                "{round} {target}: zero-rate chaos changed the wire bytes"
            );
        }
    }
    assert_eq!(
        shimmed.chaos().unwrap().stats.total(),
        0,
        "a zero-rate plan must never count an injection"
    );

    plain.shutdown_and_join();
    shimmed.shutdown_and_join();
}

#[test]
fn loadgen_chaos_harness_passes_with_zero_undetected_corruption() {
    let mut plan = FaultPlan {
        seed: 7,
        ..FaultPlan::default()
    };
    for (key, value) in [
        ("read-delay-rate", "0.10"),
        ("write-delay-rate", "0.10"),
        ("delay-ms", "5"),
        ("reset-rate", "0.06"),
        ("truncate-rate", "0.06"),
        ("corrupt-rate", "0.06"),
        ("stall-rate", "0.03"),
        ("stall-ms", "50"),
    ] {
        plan.set(key, value).unwrap();
    }
    let server = serve::start(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        chaos: Some(plan),
        ..ServeOptions::default()
    })
    .unwrap();

    let report = loadgen::run(&LoadgenOptions {
        addr: server.addr().to_string(),
        clients: 3,
        requests: 8,
        scenario_seeds: 1,
        scenario_args: vec![
            "--scale".into(),
            "0.25".into(),
            "--edges".into(),
            "40".into(),
            "--vendors".into(),
            "16".into(),
        ],
        chaos: true,
        timeout: Duration::from_secs(10),
        ..LoadgenOptions::default()
    })
    .expect("the chaos harness must pass at these fault rates");

    assert!(report.chaos, "the report records harness mode");
    assert!(report.verdict_pass(), "verdict: {}", report.rendered);
    assert_eq!(
        report.verify_failures, 0,
        "every corruption must be caught by the integrity layer"
    );
    assert!(
        report.eventual_success_rate() >= report.min_success,
        "eventual success {} under floor {}",
        report.eventual_success_rate(),
        report.min_success
    );
    // At these rates some faults certainly fired across ~24 requests,
    // and the clients survived them via retries.
    assert!(
        server.chaos().unwrap().stats.total() >= 1,
        "no injection was ever applied"
    );
    assert!(report.rendered.contains("chaos verdict: PASS"));

    // The scrape itself runs under chaos, so it retries like any client.
    let scrape = dcnr_core::resilient_get(
        &server.addr().to_string(),
        "/metrics",
        &RetryPolicy::default(),
        0x5C4A,
    );
    assert!(scrape.outcome.is_success(), "scrape failed: {scrape:?}");
    let metrics =
        String::from_utf8(scrape.response.expect("scrape body").body).expect("UTF-8 metrics");
    prometheus::validate(&metrics).expect("metrics must satisfy the strict validator");
    assert!(
        metrics.contains("dcnr_server_chaos_injections_total"),
        "injections are exported: {metrics}"
    );
    server.shutdown_and_join();
}

/// The half-close + drain regression: a client still mid-way through
/// *writing* its request when the queue fills must receive the shed
/// `503` + `Retry-After`, not a connection reset that destroys it.
#[test]
fn mid_write_clients_still_receive_the_shed_response() {
    let server = Arc::new(
        serve::start(&ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 1,
            admin: true,
            ..ServeOptions::default()
        })
        .unwrap(),
    );

    // Saturate: 1 worker sleeping + 1 queue slot held for a full second.
    let mut sleepers = Vec::new();
    for _ in 0..4 {
        let server = server.clone();
        sleepers.push(std::thread::spawn(move || {
            get(&server, "/admin/sleep?millis=1000")
        }));
    }
    // Wait until the server has dispositioned all 4 sleepers: with 1
    // worker sleeping and 1 queue slot, two of them must have shed,
    // which proves the queue is full and stays full for the sleep's
    // duration. (A fixed sleep races the scheduler on a loaded 1-CPU
    // host and the writer below slips in before saturation.)
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = server.stats();
        let accepted = stats.accepted.load(std::sync::atomic::Ordering::SeqCst);
        let shed = stats.shed.load(std::sync::atomic::Ordering::SeqCst);
        if accepted >= 4 && shed >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sleepers never saturated the server (accepted {accepted}, shed {shed})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // A slow writer: half the request line, a pause, then the rest.
    // The shed answer is written at accept time, before any of this
    // arrives, and the server half-closes + drains so the 503 survives.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let request = format!("GET /artifacts/fig15?{SMALL_QUERY} HTTP/1.1\r\nHost: dcnr\r\n\r\n");
    let (head, tail) = request.split_at(request.len() / 2);
    stream.write_all(head.as_bytes()).unwrap();
    stream.flush().ok();
    std::thread::sleep(Duration::from_millis(50));
    // The server may already have dropped us after its bounded drain;
    // a write error here is fine — the 503 is already in our buffer.
    let _ = stream.write_all(tail.as_bytes());
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
        }
    }
    let text = String::from_utf8_lossy(&bytes).to_ascii_lowercase();
    assert!(
        text.starts_with("http/1.1 503"),
        "mid-write client must see the shed 503, got: {text:?}"
    );
    assert!(
        text.contains("retry-after:"),
        "the shed response carries Retry-After: {text:?}"
    );

    for sleeper in sleepers {
        let resp = sleeper.join().unwrap();
        assert!(matches!(resp.status, 200 | 503), "got {}", resp.status);
    }
    assert_eq!(get(&server, "/healthz").status, 200, "server survives");
    Arc::try_unwrap(server)
        .unwrap_or_else(|_| panic!("all clients joined"))
        .shutdown_and_join();
}

#[test]
fn breaker_opens_serves_stale_and_recovers_via_half_open_probe() {
    // Render attempts are numbered globally: 0 = fig15 (ok), 1 = fig16
    // (ok, evicts fig15 from the 1-entry cache), 2..5 = scripted
    // failures, 5.. = healthy again. Breaker: 3 failures open it,
    // cooldown 200ms, then a half-open probe closes it.
    let server = serve::start(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        cache_entries: 1,
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(200),
        },
        render_faults: RenderFaultPlan {
            rate: 1.0,
            skip: 2,
            limit: 3,
            ..RenderFaultPlan::default()
        },
        ..ServeOptions::default()
    })
    .unwrap();
    let fig15 = format!("/artifacts/fig15?{SMALL_QUERY}");
    let fig16 = format!("/artifacts/fig16?{SMALL_QUERY}");

    // Healthy renders populate both the cache and the stale store.
    let fresh = get(&server, &fig15);
    assert_eq!(fresh.status, 200);
    assert_eq!(fresh.header("x-dcnr-stale"), None);
    assert_eq!(get(&server, &fig16).status, 200); // evicts fig15

    // Three scripted render failures: each serves last-known-good,
    // flagged stale, byte-identical to the fresh body.
    for _ in 0..3 {
        let resp = get(&server, &fig15);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-dcnr-stale"), Some("render-failed"));
        assert_eq!(resp.body, fresh.body, "stale body is last-known-good");
    }

    // The third failure opened the breaker: no render is attempted,
    // the stale copy is served with the breaker-open cause.
    let resp = get(&server, &fig15);
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-dcnr-stale"), Some("breaker-open"));
    assert_eq!(resp.body, fresh.body);

    // After the cooldown a half-open probe runs the (now healthy)
    // render and closes the breaker again.
    std::thread::sleep(Duration::from_millis(250));
    let recovered = get(&server, &fig15);
    assert_eq!(recovered.status, 200);
    assert_eq!(recovered.header("x-dcnr-stale"), None, "fresh again");
    assert_eq!(recovered.body, fresh.body);

    let metrics = validated_metrics(&server);
    let fig15_label = [("artifact", "fig15")];
    for (labels, at_least) in [
        (vec![("artifact", "fig15"), ("to", "open")], 1.0),
        (vec![("artifact", "fig15"), ("to", "half_open")], 1.0),
        (vec![("artifact", "fig15"), ("to", "closed")], 1.0),
    ] {
        assert!(
            labeled_total(&metrics, "dcnr_server_breaker_transitions_total", &labels) >= at_least,
            "missing breaker transition {labels:?}: {metrics}"
        );
    }
    assert_eq!(
        labeled_total(&metrics, "dcnr_server_breaker_state", &fig15_label),
        0.0,
        "the breaker ends closed"
    );
    assert!(
        labeled_total(
            &metrics,
            "dcnr_server_stale_total",
            &[("artifact", "fig15"), ("cause", "render-failed")]
        ) >= 3.0
    );
    assert!(
        labeled_total(
            &metrics,
            "dcnr_server_stale_total",
            &[("artifact", "fig15"), ("cause", "breaker-open")]
        ) >= 1.0
    );
    assert!(labeled_total(&metrics, "dcnr_server_render_faults_total", &fig15_label) >= 3.0);
    assert!(labeled_total(&metrics, "dcnr_server_render_failures_total", &fig15_label) >= 3.0);

    server.shutdown_and_join();
}
