//! The telemetry subsystem's hard invariant, end to end: **turning
//! telemetry on must not perturb a single RNG draw**. Reports and sweep
//! artifacts must be byte-identical with and without a collector
//! installed, merged sweep totals must be independent of the worker
//! count, and the profile must attribute issue generation per device
//! type.

use dcnr_core::telemetry::{installed, Telemetry};
use dcnr_core::{phase_rows, run_sweep, RunContext, Scenario, ScenarioKind, SweepConfig};

fn small(kind: ScenarioKind, seed: u64) -> Scenario {
    Scenario {
        kind,
        scale: 0.5,
        backbone: dcnr_core::backbone::topo::BackboneParams {
            edges: 30,
            vendors: 12,
            min_links_per_edge: 3,
        },
        ..Scenario::intra(seed)
    }
}

#[test]
fn scenario_reports_are_byte_identical_with_telemetry_on() {
    for kind in [
        ScenarioKind::Intra,
        ScenarioKind::Backbone,
        ScenarioKind::Chaos,
    ] {
        let plain = RunContext::new(small(kind, 0x7E1E)).execute();
        let handle = Telemetry::new_handle();
        let observed = {
            let _guard = installed(handle.clone());
            RunContext::new(small(kind, 0x7E1E)).execute()
        };
        assert_eq!(plain.rendered, observed.rendered, "{kind}");
        assert_eq!(plain.passed, observed.passed, "{kind}");
        let (metrics, _) = handle.snapshots();
        assert!(
            !metrics.is_empty(),
            "{kind}: the instrumented run must actually record metrics"
        );
    }
}

#[test]
fn sweep_output_is_byte_identical_with_telemetry_on() {
    let base = small(ScenarioKind::Backbone, 0xBEE5);
    let plain = run_sweep(SweepConfig::new(base, 3, 2)).unwrap();
    let handle = Telemetry::new_handle();
    let observed = {
        let _guard = installed(handle);
        run_sweep(SweepConfig::new(base, 3, 2)).unwrap()
    };
    assert_eq!(plain.rendered, observed.rendered);
    assert_eq!(plain.supervision, observed.supervision);
    assert!(plain.replica_metrics.is_none(), "no collector, no folding");
    let merged = observed.replica_metrics.expect("collector installed");
    assert!(
        merged.counter_value("dcnr_backbone_fiber_cuts_total", &[]) > 0,
        "replica counters must survive the fold"
    );
    let trace = observed.replica_trace.expect("collector installed");
    assert!(trace.seen > 0, "fiber cuts must be traced");
    assert!(trace.head.iter().all(|e| e.kind == "fiber_cut"));
}

#[test]
fn merged_sweep_totals_are_independent_of_worker_count() {
    let base = small(ScenarioKind::Intra, 0x90B5);
    let run_with_jobs = |jobs: usize| {
        let handle = Telemetry::new_handle();
        let out = {
            let _guard = installed(handle);
            run_sweep(SweepConfig::new(base, 3, jobs)).unwrap()
        };
        (
            out.replica_metrics.expect("collector installed"),
            out.replica_trace.expect("collector installed"),
        )
    };
    let (serial_metrics, serial_trace) = run_with_jobs(1);
    let (parallel_metrics, parallel_trace) = run_with_jobs(3);
    // Exact equality for everything event-driven. Phase histograms
    // hold wall-clock durations — the one legitimately nondeterministic
    // series — so for them only the observation counts must agree.
    assert_eq!(serial_metrics.counters, parallel_metrics.counters);
    assert_eq!(serial_metrics.gauges, parallel_metrics.gauges);
    let keys: Vec<_> = serial_metrics.histograms.keys().collect();
    assert_eq!(keys, parallel_metrics.histograms.keys().collect::<Vec<_>>());
    for (key, serial_hist) in &serial_metrics.histograms {
        assert_eq!(
            serial_hist.count, parallel_metrics.histograms[key].count,
            "{key:?}"
        );
    }
    assert_eq!(serial_trace, parallel_trace);
    assert!(
        serial_metrics.counter_value("dcnr_faults_issues_total", &[("device_type", "rsw")]) > 0,
        "per-type issue counters must be present"
    );
}

#[test]
fn profile_names_issue_generation_per_device_type() {
    let handle = Telemetry::new_handle();
    {
        let _guard = installed(handle.clone());
        RunContext::new(small(ScenarioKind::Intra, 0x1DEA)).execute();
    }
    let (metrics, _) = handle.snapshots();
    let rows = phase_rows(&metrics);
    let phases: Vec<&str> = rows.iter().map(|r| r.phase.as_str()).collect();
    for expected in [
        "intra.fleet_build",
        "intra.remediation",
        "intra.sev_analysis",
    ] {
        assert!(phases.contains(&expected), "missing {expected}: {phases:?}");
    }
    let per_type: Vec<&&str> = phases
        .iter()
        .filter(|p| p.starts_with("intra.issue_gen."))
        .collect();
    assert!(
        per_type.len() >= 5,
        "issue generation must be attributed per device type, got {phases:?}"
    );
    assert!(phases.windows(2).all(|w| w[0] <= w[1]), "rows sorted");
    for row in &rows {
        assert!(row.calls > 0, "{}: zero-call phase in profile", row.phase);
    }
}

#[test]
fn telemetry_off_records_nothing_and_costs_no_formatting() {
    // With no collector on this thread, a full study leaves no global
    // residue: a later install starts from an empty registry.
    RunContext::new(small(ScenarioKind::Intra, 0x0FF)).execute();
    let handle = Telemetry::new_handle();
    let _guard = installed(handle.clone());
    let (metrics, trace) = handle.snapshots();
    assert!(metrics.is_empty());
    assert!(trace.is_empty());
}
