#!/usr/bin/env sh
# Local CI: formatting, lints, tests. Run from the repo root.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "ci: all green"
