#!/usr/bin/env sh
# Local CI: formatting, lints, tests. Run from the repo root.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> sweep smoke (release, byte-identity across worker counts)"
cargo build --release --bin dcnr
./target/release/dcnr sweep --scenario backbone --seeds 2 --jobs 2 \
    --resamples 200 --bench-json /tmp/dcnr_sweep_smoke.json >/dev/null
grep -q '"identical_output": true' /tmp/dcnr_sweep_smoke.json

echo "==> supervision smoke (1 forced panic of 4 replicas)"
# With a failure budget of 1 the degraded sweep must still exit zero
# and report the quarantine...
DCNR_FAULT_REPLICA=1:panic ./target/release/dcnr sweep --scenario backbone \
    --seeds 4 --jobs 2 --resamples 200 --retries 0 --max-failures 1 \
    >/dev/null 2>/tmp/dcnr_supervision_smoke.log
grep -q 'quarantined' /tmp/dcnr_supervision_smoke.log
# ...and with a zero budget the same sweep must exit nonzero.
if DCNR_FAULT_REPLICA=1:panic ./target/release/dcnr sweep --scenario backbone \
    --seeds 4 --jobs 2 --resamples 200 --retries 0 --max-failures 0 \
    >/dev/null 2>&1; then
    echo "expected a nonzero exit under --max-failures 0" >&2
    exit 1
fi

echo "ci: all green"
