#!/usr/bin/env sh
# Local CI: formatting, lints, tests. Run from the repo root.
set -eu

# Every smoke that backgrounds a server registers it here; the trap
# keeps a failed step from leaving an orphan holding its port (and
# this script's stdout pipe) open.
DCNR_BG_PIDS=""
trap 'for p in $DCNR_BG_PIDS; do kill "$p" 2>/dev/null || true; done' EXIT

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> sweep smoke (release, byte-identity across worker counts)"
cargo build --release --bin dcnr
./target/release/dcnr sweep --scenario backbone --seeds 2 --jobs 2 \
    --resamples 200 --bench-json /tmp/dcnr_sweep_smoke.json >/dev/null
grep -q '"identical_output": true' /tmp/dcnr_sweep_smoke.json

echo "==> supervision smoke (1 forced panic of 4 replicas)"
# With a failure budget of 1 the degraded sweep must still exit zero
# and report the quarantine...
DCNR_FAULT_REPLICA=1:panic ./target/release/dcnr sweep --scenario backbone \
    --seeds 4 --jobs 2 --resamples 200 --retries 0 --max-failures 1 \
    >/dev/null 2>/tmp/dcnr_supervision_smoke.log
grep -q 'quarantined' /tmp/dcnr_supervision_smoke.log
# ...and with a zero budget the same sweep must exit nonzero.
if DCNR_FAULT_REPLICA=1:panic ./target/release/dcnr sweep --scenario backbone \
    --seeds 4 --jobs 2 --resamples 200 --retries 0 --max-failures 0 \
    >/dev/null 2>&1; then
    echo "expected a nonzero exit under --max-failures 0" >&2
    exit 1
fi

echo "==> telemetry smoke (sweep bytes identical with --metrics/--trace on)"
# The hard invariant: telemetry must not perturb a single RNG draw, so
# the sweep report is byte-for-byte the same with and without it.
./target/release/dcnr sweep --scenario backbone --seeds 2 --jobs 2 \
    --resamples 200 >/tmp/dcnr_sweep_plain.out 2>/dev/null
./target/release/dcnr --metrics /tmp/dcnr_metrics.prom --trace /tmp/dcnr_trace.json \
    sweep --scenario backbone --seeds 2 --jobs 2 \
    --resamples 200 >/tmp/dcnr_sweep_telem.out 2>/dev/null
cmp /tmp/dcnr_sweep_plain.out /tmp/dcnr_sweep_telem.out
# The metrics file must be valid Prometheus text with the replica
# series folded in, and the trace must carry events.
grep -q '^# TYPE dcnr_backbone_fiber_cuts_total counter' /tmp/dcnr_metrics.prom
grep -q '^dcnr_backbone_fiber_cuts_total ' /tmp/dcnr_metrics.prom
grep -q '^# TYPE dcnr_phase_duration_micros histogram' /tmp/dcnr_metrics.prom
grep -q '"kind": "fiber_cut"' /tmp/dcnr_trace.json

echo "==> profile smoke (quarter scale, parseable BENCH_profile.json)"
( cd /tmp && /root/repo/target/release/dcnr \
    --metrics /tmp/dcnr_profile_metrics.prom \
    profile --scale 0.25 --json /tmp/dcnr_profile_smoke.json >/dev/null 2>&1 )
# The profile must attribute issue generation per device type and
# parse as JSON; the metrics file must pass the strict validator.
grep -q '"phase": "intra.issue_gen.rsw"' /tmp/dcnr_profile_smoke.json
grep -q '"phase": "intra.remediation"' /tmp/dcnr_profile_smoke.json
cargo run --release -q --example validate_telemetry -- \
    /tmp/dcnr_profile_metrics.prom /tmp/dcnr_profile_smoke.json

echo "==> routes smoke (quarter scale, emergent severity, byte-identity)"
# The artifact listing must enumerate the registry (stable order, exit 0).
./target/release/dcnr artifact --list >/tmp/dcnr_artifact_list.out
grep -q '^routes.severity_mix' /tmp/dcnr_artifact_list.out
grep -q '^table1' /tmp/dcnr_artifact_list.out
# All three routes artifacts render at quarter scale, with the severity
# mix emergent (derived from forwarding-state losses, not sampled).
./target/release/dcnr routes --scale 0.25 >/tmp/dcnr_routes_smoke.out
grep -q 'BFS' /tmp/dcnr_routes_smoke.out
grep -q 'no Table 3 sampling' /tmp/dcnr_routes_smoke.out
grep -q 'mean slowdown' /tmp/dcnr_routes_smoke.out
# Sweep byte-identity: --jobs 1 and --jobs 2 must render the same bytes.
./target/release/dcnr sweep --scenario routes --seeds 2 --jobs 1 \
    --resamples 200 --scale 0.25 >/tmp/dcnr_routes_jobs1.out 2>/dev/null
./target/release/dcnr sweep --scenario routes --seeds 2 --jobs 2 \
    --resamples 200 --scale 0.25 >/tmp/dcnr_routes_jobs2.out 2>/dev/null
cmp /tmp/dcnr_routes_jobs1.out /tmp/dcnr_routes_jobs2.out
# Record the forwarding-table build + invalidation wall clock (and the
# allocating-vs-scratch blast sweep delta) at scale 1. BENCH_routes.json
# is committed; timings never enter artifact bytes.
./target/release/dcnr profile --scenario routes --scale 1 \
    --json BENCH_routes.json >/dev/null
grep -q '"phase": "routes.forwarding.build"' BENCH_routes.json
grep -q '"phase": "routes.forwarding.invalidate"' BENCH_routes.json
grep -q '"phase": "routes.blast.alloc_per_candidate"' BENCH_routes.json
grep -q '"phase": "routes.blast.scratch_reuse"' BENCH_routes.json

echo "==> survivability smoke (topology zoo, ranking flip, byte-identity)"
# The topology listing must enumerate the zoo (stable order, exit 0),
# and the artifact registry must carry the surv.* family.
./target/release/dcnr topology --list >/tmp/dcnr_topology_list.out
grep -q '^fat-tree' /tmp/dcnr_topology_list.out
grep -q '^dcell' /tmp/dcnr_topology_list.out
grep -q '^surv.ranking' /tmp/dcnr_artifact_list.out
grep -q '^surv.lifespan' /tmp/dcnr_artifact_list.out
# An unknown topology id is a usage error (exit 2) naming the menu.
dcnr_topo_status=0
./target/release/dcnr survivability --topology hypercube \
    >/dev/null 2>/tmp/dcnr_topology_err.log || dcnr_topo_status=$?
[ "$dcnr_topo_status" -eq 2 ] || {
    echo "expected exit 2 for an unknown topology, got $dcnr_topo_status" >&2
    exit 1
}
grep -q 'valid ids' /tmp/dcnr_topology_err.log
# Both surv artifacts render at quarter scale with the headline lines:
# per-class zoo rankings, the dcell/fat-tree flip, and lifespan bands.
./target/release/dcnr survivability --scale 0.25 >/tmp/dcnr_surv_smoke.out
grep -q 'survivability ranking @30% switch loss' /tmp/dcnr_surv_smoke.out
grep -q 'ranking flip (dcell vs fat-tree, switch loss vs server loss): true' \
    /tmp/dcnr_surv_smoke.out
grep -q 'lifespan band \[lo hi\]' /tmp/dcnr_surv_smoke.out
# Sweep byte-identity on a zoo member: --jobs 1 and --jobs 2 must
# render the same cross-seed bands.
./target/release/dcnr sweep --scenario survivability --seeds 2 --jobs 1 \
    --resamples 200 --scale 0.25 --topology dcell \
    >/tmp/dcnr_surv_jobs1.out 2>/dev/null
./target/release/dcnr sweep --scenario survivability --seeds 2 --jobs 2 \
    --resamples 200 --scale 0.25 --topology dcell \
    >/tmp/dcnr_surv_jobs2.out 2>/dev/null
cmp /tmp/dcnr_surv_jobs1.out /tmp/dcnr_surv_jobs2.out
# Record the zoo sweep + lifespan replay wall clocks at scale 1.
# BENCH_survivability.json is committed; timings never enter artifact
# bytes.
./target/release/dcnr profile --scenario survivability --scale 1 \
    --json BENCH_survivability.json >/dev/null
grep -q '"phase": "surv.ranking.sweep"' BENCH_survivability.json
grep -q '"phase": "surv.lifespan.replay"' BENCH_survivability.json

echo "==> serve smoke (ephemeral port, loadgen, byte-identity, graceful drain)"
# Start the report server on an ephemeral port in admin (test) mode.
rm -f /tmp/dcnr_serve_port
./target/release/dcnr -q serve --addr 127.0.0.1:0 --admin \
    --port-file /tmp/dcnr_serve_port &
DCNR_SERVE_PID=$!
DCNR_BG_PIDS="$DCNR_BG_PIDS $DCNR_SERVE_PID"
# Wait for the port file (the server writes it after binding).
i=0
while [ ! -s /tmp/dcnr_serve_port ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "server never bound" >&2; exit 1; }
    sleep 0.1
done
DCNR_ADDR=$(cat /tmp/dcnr_serve_port)
# Liveness, then a verified closed-loop load run: every response body is
# compared byte-for-byte against a local render of the same scenario.
./target/release/dcnr fetch "$DCNR_ADDR" /healthz | grep -q '^ok$'
./target/release/dcnr -q loadgen --addr "$DCNR_ADDR" \
    --clients 4 --requests 6 --verify \
    --artifacts fig15,fig16,table4 --scale 0.25 --edges 40 --vendors 16 \
    >/dev/null
# /metrics must pass the strict Prometheus validator and report traffic.
./target/release/dcnr -q fetch "$DCNR_ADDR" /metrics --validate \
    >/tmp/dcnr_serve_metrics.prom
grep -q '^dcnr_server_requests_total' /tmp/dcnr_serve_metrics.prom
grep -q '^dcnr_server_cache_hits_total' /tmp/dcnr_serve_metrics.prom
# Admission control is off by default and must be invisible: no drop
# counters, no sojourn histogram — the scrape matches the pre-admission
# server series-for-series.
! grep -q '^dcnr_server_admission_dropped_total' /tmp/dcnr_serve_metrics.prom
! grep -q '^dcnr_server_queue_sojourn_micros' /tmp/dcnr_serve_metrics.prom
# The default threads engine must not grow the events-only series: no
# shard counters, no reactor wakeups/histogram — the scrape matches the
# pre-reactor server series-for-series.
! grep -q 'dcnr_server_cache_shard_' /tmp/dcnr_serve_metrics.prom
! grep -q 'dcnr_server_reactor_' /tmp/dcnr_serve_metrics.prom
# One artifact fetched over HTTP must be byte-identical to the CLI.
./target/release/dcnr artifact fig15 --seed 11 --scale 0.25 \
    --edges 40 --vendors 16 >/tmp/dcnr_artifact_cli.out
./target/release/dcnr -q fetch "$DCNR_ADDR" \
    '/artifacts/fig15?seed=11&scale=0.25&edges=40&vendors=16' \
    >/tmp/dcnr_artifact_http.out
cmp /tmp/dcnr_artifact_cli.out /tmp/dcnr_artifact_http.out
# A surv artifact round-trips too: --topology becomes ?topology= and
# the HTTP bytes match the CLI render.
./target/release/dcnr artifact surv.lifespan --seed 11 --scale 0.25 \
    --topology dcell >/tmp/dcnr_surv_cli.out
./target/release/dcnr -q fetch "$DCNR_ADDR" \
    '/artifacts/surv.lifespan?seed=11&scale=0.25&topology=dcell' \
    >/tmp/dcnr_surv_http.out
cmp /tmp/dcnr_surv_cli.out /tmp/dcnr_surv_http.out
# Graceful drain: /admin/shutdown must end the server with exit 0.
./target/release/dcnr -q fetch "$DCNR_ADDR" /admin/shutdown >/dev/null
wait "$DCNR_SERVE_PID"

echo "==> chaos-off identity smoke (zero-rate shim is byte-invisible)"
# A serve with the fault shim installed but every rate at zero must
# produce responses byte-identical to the plain CLI render.
rm -f /tmp/dcnr_chaos_off_port
./target/release/dcnr -q serve --addr 127.0.0.1:0 --admin --chaos-seed 7 \
    --port-file /tmp/dcnr_chaos_off_port &
DCNR_CHAOS_OFF_PID=$!
DCNR_BG_PIDS="$DCNR_BG_PIDS $DCNR_CHAOS_OFF_PID"
i=0
while [ ! -s /tmp/dcnr_chaos_off_port ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "chaos-off server never bound" >&2; exit 1; }
    sleep 0.1
done
DCNR_ADDR=$(cat /tmp/dcnr_chaos_off_port)
./target/release/dcnr -q fetch "$DCNR_ADDR" \
    '/artifacts/fig15?seed=11&scale=0.25&edges=40&vendors=16' \
    >/tmp/dcnr_artifact_chaos_off.out
cmp /tmp/dcnr_artifact_cli.out /tmp/dcnr_artifact_chaos_off.out
./target/release/dcnr -q fetch "$DCNR_ADDR" /admin/shutdown >/dev/null
wait "$DCNR_CHAOS_OFF_PID"

echo "==> events-engine smoke (epoll reactor: loadgen, parity, graceful drain)"
# The same serve contract on --engine events: a verified closed-loop
# load run, a strict /metrics scrape that now carries the shard +
# reactor series, CLI-vs-HTTP byte-identity, zero-rate chaos
# invisibility (the shim is installed but every rate is zero), and a
# graceful drain that exits 0.
rm -f /tmp/dcnr_events_port
./target/release/dcnr -q serve --addr 127.0.0.1:0 --admin --engine events \
    --chaos-seed 7 --port-file /tmp/dcnr_events_port &
DCNR_EVENTS_PID=$!
DCNR_BG_PIDS="$DCNR_BG_PIDS $DCNR_EVENTS_PID"
i=0
while [ ! -s /tmp/dcnr_events_port ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "events server never bound" >&2; exit 1; }
    sleep 0.1
done
DCNR_ADDR=$(cat /tmp/dcnr_events_port)
./target/release/dcnr fetch "$DCNR_ADDR" /healthz | grep -q '^ok$'
./target/release/dcnr -q loadgen --addr "$DCNR_ADDR" \
    --clients 4 --requests 6 --verify \
    --artifacts fig15,fig16,table4 --scale 0.25 --edges 40 --vendors 16 \
    >/dev/null
./target/release/dcnr -q fetch "$DCNR_ADDR" /metrics --validate \
    >/tmp/dcnr_events_metrics.prom
grep -q '^dcnr_server_cache_shard_hits_total{shard=' /tmp/dcnr_events_metrics.prom
grep -q '^dcnr_server_reactor_wakeups_total' /tmp/dcnr_events_metrics.prom
grep -q '^dcnr_server_reactor_ready_events_bucket' /tmp/dcnr_events_metrics.prom
# The reactor serves the same bytes as the CLI render even with the
# zero-rate chaos shim in the write path.
./target/release/dcnr -q fetch "$DCNR_ADDR" \
    '/artifacts/fig15?seed=11&scale=0.25&edges=40&vendors=16' \
    >/tmp/dcnr_artifact_events.out
cmp /tmp/dcnr_artifact_cli.out /tmp/dcnr_artifact_events.out
# An unknown engine id is a usage error (exit 2) naming the menu.
dcnr_engine_status=0
./target/release/dcnr serve --addr 127.0.0.1:0 --engine fibers \
    >/dev/null 2>/tmp/dcnr_engine_err.log || dcnr_engine_status=$?
[ "$dcnr_engine_status" -eq 2 ] || {
    echo "expected exit 2 for an unknown engine, got $dcnr_engine_status" >&2
    exit 1
}
grep -q 'valid engines' /tmp/dcnr_engine_err.log
# Graceful drain: /admin/shutdown must end the reactor with exit 0.
./target/release/dcnr -q fetch "$DCNR_ADDR" /admin/shutdown >/dev/null
wait "$DCNR_EVENTS_PID"

echo "==> chaos-serve smoke (resilience harness verdict under faults)"
# Full chaos: injected delays, resets, truncations, corruptions, and
# stalls. The retrying clients must still reach a >= 99% eventual
# success rate with ZERO undetected corruptions, or loadgen exits 1.
rm -f /tmp/dcnr_chaos_port
./target/release/dcnr -q serve --addr 127.0.0.1:0 --admin --workers 0 \
    --chaos-seed 7 --chaos-reset-rate 0.06 --chaos-truncate-rate 0.06 \
    --chaos-corrupt-rate 0.06 --chaos-read-delay-rate 0.1 \
    --chaos-write-delay-rate 0.1 --chaos-delay-ms 5 \
    --chaos-stall-rate 0.03 --chaos-stall-ms 50 \
    --port-file /tmp/dcnr_chaos_port &
DCNR_CHAOS_PID=$!
DCNR_BG_PIDS="$DCNR_BG_PIDS $DCNR_CHAOS_PID"
i=0
while [ ! -s /tmp/dcnr_chaos_port ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "chaos server never bound" >&2; exit 1; }
    sleep 0.1
done
DCNR_ADDR=$(cat /tmp/dcnr_chaos_port)
# --retries 6: fault assignment is per connection *index*, and which
# index a retry lands on is a thread race — on a 1-CPU host the default
# budget of 3 occasionally walks a run of corrupt-flagged indices and
# flakes the 99% floor. Six attempts puts the verdict on the harness,
# not the scheduler.
./target/release/dcnr -q loadgen --addr "$DCNR_ADDR" --chaos \
    --clients 4 --requests 8 --min-success 0.99 --retries 6 \
    --artifacts fig15,fig16,table4 --scale 0.25 --edges 40 --vendors 16 \
    --bench-json /tmp/dcnr_resilience_smoke.json \
    >/tmp/dcnr_chaos_loadgen.out
grep -q 'chaos verdict: PASS' /tmp/dcnr_chaos_loadgen.out
grep -q '"undetected_corruption": 0' /tmp/dcnr_resilience_smoke.json
grep -q '"verdict": "pass"' /tmp/dcnr_resilience_smoke.json
# The chaos injection counters must appear on a validated /metrics.
# fetch retries under chaos, so the scrape itself survives injections.
./target/release/dcnr -q fetch "$DCNR_ADDR" /metrics --validate \
    >/tmp/dcnr_chaos_metrics.prom
grep -q '^dcnr_server_chaos_injections_total' /tmp/dcnr_chaos_metrics.prom
grep -q '^dcnr_server_workers ' /tmp/dcnr_chaos_metrics.prom
./target/release/dcnr -q fetch "$DCNR_ADDR" /admin/shutdown >/dev/null
wait "$DCNR_CHAOS_PID"

echo "==> overload smoke (open-loop 2x vs 1 worker, admission control, verdict gate)"
# One worker behind a shallow queue with every admission knob on, then
# an open-loop run at 2x the measured sustainable rate. The verdict
# (goodput floor, admitted-p99 cap, health floor) gates the script:
# loadgen exits 1 on FAIL.
rm -f /tmp/dcnr_overload_port
./target/release/dcnr -q serve --addr 127.0.0.1:0 --admin --workers 1 \
    --queue-depth 16 --sojourn-target-ms 50 --priority-depth 8 \
    --adaptive-retry-after --port-file /tmp/dcnr_overload_port &
DCNR_OVERLOAD_PID=$!
DCNR_BG_PIDS="$DCNR_BG_PIDS $DCNR_OVERLOAD_PID"
i=0
while [ ! -s /tmp/dcnr_overload_port ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "overload server never bound" >&2; exit 1; }
    sleep 0.1
done
DCNR_ADDR=$(cat /tmp/dcnr_overload_port)
./target/release/dcnr -q loadgen --addr "$DCNR_ADDR" --open-loop \
    --overload 2 --arrivals 400 --max-in-flight 32 \
    --goodput-floor 0.2 --p99-cap-ms 2000 --health-floor 0.8 \
    --artifacts fig15,fig16,table4 --scale 0.25 --edges 40 --vendors 16 \
    --bench-json /tmp/dcnr_overload_smoke.json \
    >/tmp/dcnr_overload_loadgen.out
grep -q 'overload verdict: PASS' /tmp/dcnr_overload_loadgen.out
grep -q '"phase": "calibrate"' /tmp/dcnr_overload_smoke.json
grep -q '"phase": "overload"' /tmp/dcnr_overload_smoke.json
grep -q '"verdict": "pass"' /tmp/dcnr_overload_smoke.json
# With admission on, the drop counters and sojourn histogram are live
# on a validated scrape.
./target/release/dcnr -q fetch "$DCNR_ADDR" /metrics --validate \
    >/tmp/dcnr_overload_metrics.prom
grep -q '^dcnr_server_admission_dropped_total' /tmp/dcnr_overload_metrics.prom
grep -q '^dcnr_server_queue_sojourn_micros_bucket' /tmp/dcnr_overload_metrics.prom
# Admission control never touches response bytes: an artifact fetched
# from the admission-on server is byte-identical to the CLI render.
./target/release/dcnr -q fetch "$DCNR_ADDR" \
    '/artifacts/fig15?seed=11&scale=0.25&edges=40&vendors=16' \
    >/tmp/dcnr_artifact_admission.out
cmp /tmp/dcnr_artifact_cli.out /tmp/dcnr_artifact_admission.out
./target/release/dcnr -q fetch "$DCNR_ADDR" /admin/shutdown >/dev/null
wait "$DCNR_OVERLOAD_PID"

echo "ci: all green"
