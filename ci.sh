#!/usr/bin/env sh
# Local CI: formatting, lints, tests. Run from the repo root.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> sweep smoke (release, byte-identity across worker counts)"
cargo build --release --bin dcnr
./target/release/dcnr sweep --scenario backbone --seeds 2 --jobs 2 \
    --resamples 200 --bench-json /tmp/dcnr_sweep_smoke.json >/dev/null
grep -q '"identical_output": true' /tmp/dcnr_sweep_smoke.json

echo "ci: all green"
