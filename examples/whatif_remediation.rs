//! What-if ablations (DESIGN.md A-1 and A-2): rerun the intra-DC study
//! with automated remediation disabled, and with the
//! drain-before-maintenance practice never adopted, and compare incident
//! volumes against the production configuration.
//!
//! Quantifies §4.1.2 ("Facebook relies on this automated repair system to
//! shield our infrastructure from the vast majority of issues") and
//! §5.2's drain-policy observation.
//!
//! ```sh
//! cargo run --release --example whatif_remediation
//! ```

use dcnr_core::faults::hazard::HazardConfig;
use dcnr_core::topology::DeviceType;
use dcnr_core::{IntraDcStudy, StudyConfig};

fn run(name: &str, hazard: HazardConfig) -> IntraDcStudy {
    let study = IntraDcStudy::run(StudyConfig {
        scale: 2.0,
        seed: 77,
        hazard,
        ..Default::default()
    });
    println!(
        "{name:<28} issues {:>8}   SEVs {:>7}",
        study.outcomes().len(),
        study.db().len()
    );
    study
}

fn main() {
    println!("Ablations over the seven-year intra-DC study (scale 2, same seed):\n");

    let baseline = run("production (baseline)", HazardConfig::default());
    let no_auto = run(
        "A-1: automation disabled",
        HazardConfig {
            automation_enabled: false,
            drain_policy_enabled: true,
        },
    );
    let no_drain = run(
        "A-2: no drain-before-maint",
        HazardConfig {
            automation_enabled: true,
            drain_policy_enabled: false,
        },
    );

    println!("\n--- A-1: the value of automated remediation ---");
    let base_2017 = baseline.db().query().year(2017).count() as f64;
    let noauto_2017 = no_auto.db().query().year(2017).count() as f64;
    println!(
        "2017 incidents: {base_2017:.0} -> {noauto_2017:.0}  ({:.0}x more without automation)",
        noauto_2017 / base_2017
    );
    for t in [DeviceType::Rsw, DeviceType::Fsw, DeviceType::Core] {
        let b = baseline.db().query().year(2017).device_type(t).count() as f64;
        let n = no_auto.db().query().year(2017).device_type(t).count() as f64;
        let factor = if b > 0.0 { n / b } else { f64::NAN };
        println!("  {t:<5} 2017 incidents: {b:>6.0} -> {n:>7.0}  ({factor:.0}x)");
    }
    println!(
        "paper anchor: only 1/397 RSW issues needed a human (Apr 2018), so disabling\n\
         automation multiplies RSW incidents by roughly 0.25/0.003 ≈ 83x."
    );

    println!("\n--- A-2: the value of draining before maintenance ---");
    for year in [2015, 2016, 2017] {
        let b = baseline
            .db()
            .query()
            .year(year)
            .device_type(DeviceType::Csa)
            .count();
        let n = no_drain
            .db()
            .query()
            .year(year)
            .device_type(DeviceType::Csa)
            .count();
        println!("  CSA incidents {year}: {b:>4} with drain policy, {n:>5} without");
    }
    let b_mtbi = baseline
        .db()
        .query()
        .years(2015, 2017)
        .device_type(DeviceType::Csa)
        .count()
        .max(1);
    let n_mtbi = no_drain
        .db()
        .query()
        .years(2015, 2017)
        .device_type(DeviceType::Csa)
        .count()
        .max(1);
    println!(
        "  CSA 2015-2017 totals: {b_mtbi} vs {n_mtbi} ({:.0}x) — the paper credits the\n\
         2015 operational guidelines with a ~two-order-of-magnitude CSA MTBI gain.",
        n_mtbi as f64 / b_mtbi as f64
    );
}
