//! The full seven-year intra-datacenter study (§5): regenerates
//! Tables 1–2 and Figures 2–14 and prints each next to the paper's
//! reported anchors, plus the three narrative SEV case studies of §4.2.
//!
//! ```sh
//! cargo run --release --example intra_dc_study
//! ```

use dcnr_core::{RunContext, Scenario};

fn main() {
    println!("Running the seven-year intra-DC pipeline (scale 10)...\n");
    // The scenario engine runs only what the intra artifacts need — the
    // backbone study is never built.
    let ctx = RunContext::new(Scenario::intra(0xDC_2018));
    let out = ctx.execute();
    print!("{}", out.rendered);

    // §4.2's three representative SEVs, reconstructed as records.
    println!("--------------------------------------------------------------");
    println!("Representative SEVs (paper §4.2)");
    println!("--------------------------------------------------------------");
    case_studies();
}

fn case_studies() {
    use dcnr_core::faults::RootCause;
    use dcnr_core::sev::{SevDb, SevLevel};
    use dcnr_core::sim::SimTime;

    let mut db = SevDb::new();
    db.insert(
        SevLevel::Sev3,
        "rsw.dc04.c021.u0108",
        vec![RootCause::Bug],
        SimTime::from_ymd_hms(2017, 8, 17, 18, 52, 0).unwrap(),
        SimTime::from_ymd_hms(2017, 8, 22, 18, 51, 0).unwrap(),
        "Switch crash from software bug: hardware counter allocation failure \
         triggered a crash whenever the software disabled a port.",
    );
    db.insert(
        SevLevel::Sev2,
        "csa.dc02.x000.u0003",
        vec![RootCause::Hardware],
        SimTime::from_ymd_hms(2013, 10, 25, 14, 39, 0).unwrap(),
        SimTime::from_ymd_hms(2013, 10, 26, 15, 22, 0).unwrap(),
        "Traffic drop from faulty hardware module: web and cache servers \
         exhausted CPU after rapid traffic shift; 2.4% of requests failed.",
    );
    db.insert(
        SevLevel::Sev1,
        "dr.pop01.lb.u0001", // a non-intra-DC device: classification fails gracefully
        vec![RootCause::Configuration],
        SimTime::from_ymd_hms(2012, 1, 25, 11, 46, 0).unwrap(),
        SimTime::from_ymd_hms(2012, 1, 25, 15, 47, 0).unwrap(),
        "Data center outage from incorrect load balancing policy after a \
         software upgrade routed all traffic onto a single path.",
    );

    for r in db.iter() {
        println!("{}", dcnr_core::sev::render_postmortem(r));
    }
}
