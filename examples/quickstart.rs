//! Quickstart: run a one-year slice of the intra-datacenter study and a
//! small backbone study, and print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dcnr_core::backbone::topo::BackboneParams;
use dcnr_core::backbone::BackboneSimConfig;
use dcnr_core::topology::DeviceType;
use dcnr_core::{InterDcStudy, IntraDcStudy, StudyConfig};

fn main() {
    // ----- intra data center: one pass over 2011-2017 -----
    println!("== Intra-DC study (scale 2, seven years) ==\n");
    let intra = IntraDcStudy::run(StudyConfig {
        scale: 2.0,
        seed: 42,
        ..Default::default()
    });

    println!(
        "issues triaged: {:>8}\nSEVs recorded : {:>8}\n",
        intra.outcomes().len(),
        intra.db().len()
    );

    println!("Table 1 (automated repair, measured):");
    println!(
        "{}",
        dcnr_core::report::render_table1(&intra.table1_automated_repair())
    );

    println!("Table 2 (root causes, measured):");
    println!(
        "{}",
        dcnr_core::report::render_table2(&intra.table2_root_causes())
    );

    let rates = intra.fig3_incident_rate();
    println!(
        "2017 incident rates: Core {:.4}/dev-yr, RSW {:.6}/dev-yr (paper: 0.2218 / 0.00088)",
        rates[&DeviceType::Core].get(2017),
        rates[&DeviceType::Rsw].get(2017)
    );
    if let Some(g) = intra.sev_growth_factor() {
        println!("SEV growth 2011→2017: {g:.1}x (paper: 9.4x)\n");
    }

    // ----- backbone: a compact eighteen-month run -----
    println!("== Backbone study (60 edges / 25 vendors, 18 months) ==\n");
    let inter = InterDcStudy::run(BackboneSimConfig {
        params: BackboneParams {
            edges: 60,
            vendors: 25,
            min_links_per_edge: 3,
        },
        seed: 42,
        ..Default::default()
    });
    println!(
        "vendor emails parsed: {}\ntickets ingested    : {} (rejected: {})\n",
        inter.output().emails.len(),
        inter.tickets().len(),
        inter.tickets().rejected
    );

    let m = inter.metrics();
    let s = m.edge_mtbf.summary();
    println!(
        "edge MTBF: median {:.0} h, p90 {:.0} h (paper: 1710 / 3521)",
        s.median(),
        s.p90()
    );
    if let Some(fit) = &m.edge_mtbf.fit {
        println!(
            "edge MTBF model: {:.1}*e^({:.3}p), R^2 = {:.2} (paper: 462.88*e^(2.3408p), 0.94)",
            fit.a, fit.b, fit.r2
        );
    }
    if let Some(risk) = inter.risk_report(100_000) {
        println!(
            "conditional risk: E[edges down] = {:.2}, p99.99 = {} edges, P(all up) = {:.2}",
            risk.expected_failures, risk.p9999_failures, risk.p_all_up
        );
    }
}
