//! Mechanistic blast-radius exploration (§5.2, §5.4): build a mixed
//! region (one classic cluster data center + one fabric data center),
//! place services on its racks, and assess the service-level impact of
//! failing each tier — including the single-TOR-vs-dual-TOR question
//! the paper discusses ("we find that it is more cost-effective to
//! handle RSW failures in software ... than to use redundant RSWs in
//! every rack").
//!
//! ```sh
//! cargo run --release --example blast_radius
//! ```

use dcnr_core::service::{disaster_drill, FaultInjectionDrill, ImpactModel, Placement};
use dcnr_core::topology::{DataCenter, DeviceId, FailureSet, Region};

fn assess(region: &Region, placement: &Placement, model: &ImpactModel, label: &str, id: DeviceId) {
    let a = model.assess(
        &region.topology,
        placement,
        id,
        &FailureSet::new(&region.topology),
    );
    println!(
        "{label:<28} -> {}   racks cut {:>3} / degraded {:>3} / total {:>3}   capacity lost {:>5.1}%   failed requests {:>6.3}%",
        a.severity,
        a.blast.racks_disconnected,
        a.blast.racks_degraded,
        a.blast.racks_total,
        a.blast.capacity_loss_fraction * 100.0,
        a.request_failure_rate * 100.0,
    );
}

fn main() {
    let region = Region::mixed_reference();
    let placement = Placement::default_mix(&region.topology);
    let model = ImpactModel::default();

    println!(
        "mixed region: {} devices, {} links, {} racks\n",
        region.topology.device_count(),
        region.topology.link_count(),
        placement.total_racks()
    );

    println!("single-device failures by tier (utilization 70%):");
    for dc in &region.datacenters {
        match dc {
            DataCenter::Cluster { dc, .. } => {
                assess(&region, &placement, &model, "cluster RSW", dc.rsws[0][0]);
                assess(&region, &placement, &model, "cluster CSW", dc.csws[0][0]);
                assess(&region, &placement, &model, "cluster CSA", dc.csas[0]);
                assess(&region, &placement, &model, "cluster Core", dc.cores[0]);
            }
            DataCenter::Fabric { dc, .. } => {
                assess(&region, &placement, &model, "fabric RSW", dc.rsws[0][0]);
                assess(&region, &placement, &model, "fabric FSW", dc.fsws[0][0]);
                assess(&region, &placement, &model, "fabric SSW", dc.ssws[0][0]);
                assess(&region, &placement, &model, "fabric ESW", dc.esws[0][0]);
                assess(&region, &placement, &model, "fabric Core", dc.cores[0]);
            }
        }
    }

    // Escalating Core failures in the cluster DC: the paper provisions
    // 8 Cores to tolerate one loss; show what stacking losses does.
    println!("\nescalating Core failures (cluster DC):");
    if let DataCenter::Cluster { dc, .. } = &region.datacenters[0] {
        let mut base = FailureSet::new(&region.topology);
        for (i, &core) in dc.cores.iter().enumerate() {
            let a = model.assess(&region.topology, &placement, core, &base);
            println!(
                "  failing core #{}: {}   failed requests {:.2}%",
                i + 1,
                a.severity,
                a.request_failure_rate * 100.0
            );
            base.fail(core);
        }
    }

    // §5.7: fault-injection drill — sweep every device in the region.
    println!("\nfault-injection drill (single-failure sweep over every device):");
    let drill = FaultInjectionDrill::sweep(&region, &placement, &model);
    for report in drill.reports() {
        println!(
            "  {:<5} n={:<4} worst={}   max failed requests {:>6.3}%   mean capacity loss {:>6.3}%",
            report.device_type.to_string(),
            report.devices,
            report.worst_severity,
            report.max_request_failure_rate * 100.0,
            report.mean_capacity_loss * 100.0,
        );
    }
    let risky = drill.risky_tiers();
    if risky.is_empty() {
        println!("  every single-device failure is contained (SEV3) — redundancy holds");
    } else {
        println!("  tiers with externally visible single-failure risk: {risky:?}");
    }

    // §5.7: disaster-recovery drill — disconnect each data center.
    println!("\ndisaster-recovery drill (disconnect an entire data center):");
    for dc in &region.datacenters {
        let r = disaster_drill(&region, &placement, &model, dc);
        println!(
            "  dc{}: {} devices failed, {} racks lost / {} surviving, {:.1}% capacity lost (worst service {:.1}%)",
            r.datacenter,
            r.devices_failed,
            r.racks_lost,
            r.racks_surviving,
            r.capacity_lost_fraction * 100.0,
            r.worst_service_loss * 100.0,
        );
    }

    // Per-service view of a CSW loss under hot utilization.
    println!("\nper-service capacity loss for a cluster CSW failure at 95% utilization:");
    let hot = ImpactModel {
        utilization: 0.95,
        ..Default::default()
    };
    if let DataCenter::Cluster { dc, .. } = &region.datacenters[0] {
        let mut base = FailureSet::new(&region.topology);
        base.fail(dc.csws[0][0]);
        base.fail(dc.csws[0][1]);
        let a = hot.assess(&region.topology, &placement, dc.csws[0][2], &base);
        for (service, loss) in &a.service_capacity_loss {
            println!("  {service:<16} {:>5.1}% of capacity lost", loss * 100.0);
        }
        println!("  => severity {}", a.severity);
    }
}
