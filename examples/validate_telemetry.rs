//! CI helper: strict validation of telemetry output files.
//!
//! Usage: `validate_telemetry METRICS_PROM [PROFILE_JSON]`
//!
//! Checks that the metrics file passes the Prometheus text-format
//! validator and carries the phase-duration series, and (when given)
//! that the profile JSON parses and names at least one
//! per-device-type issue-generation phase.

use dcnr_core::json;
use dcnr_core::telemetry::prometheus;
use std::process::ExitCode;

fn check(metrics_path: &str, profile_path: Option<&str>) -> Result<(), String> {
    let text =
        std::fs::read_to_string(metrics_path).map_err(|e| format!("{metrics_path}: read: {e}"))?;
    let series = prometheus::validate(&text).map_err(|e| format!("{metrics_path}: {e}"))?;
    if series == 0 {
        return Err(format!("{metrics_path}: no series at all"));
    }
    if !text.contains("dcnr_phase_duration_micros") {
        return Err(format!("{metrics_path}: missing the phase histogram"));
    }
    println!("{metrics_path}: {series} series, valid Prometheus text");

    if let Some(path) = profile_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: read: {e}"))?;
        let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let phases = doc
            .get("phases")
            .and_then(json::Json::as_arr)
            .map_err(|e| format!("{path}: {e}"))?;
        let per_type = phases
            .iter()
            .filter_map(|p| p.get("phase").and_then(json::Json::as_str).ok())
            .filter(|name| name.starts_with("intra.issue_gen."))
            .count();
        if per_type == 0 {
            return Err(format!(
                "{path}: no per-device-type issue generation phases"
            ));
        }
        println!(
            "{path}: {} phases ({per_type} per-device-type)",
            phases.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(metrics_path) = args.first() else {
        eprintln!("usage: validate_telemetry METRICS_PROM [PROFILE_JSON]");
        return ExitCode::from(2);
    };
    match check(metrics_path, args.get(1).map(String::as_str)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("validate_telemetry: {message}");
            ExitCode::FAILURE
        }
    }
}
