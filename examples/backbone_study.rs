//! The eighteen-month backbone study (§6): regenerates Figures 15–18
//! and Table 4, prints the fitted exponential models next to the
//! paper's, and runs the §6.1 conditional-risk capacity planner.
//!
//! ```sh
//! cargo run --release --example backbone_study
//! ```

use dcnr_core::{RunContext, Scenario};

fn main() {
    println!("Running the eighteen-month backbone pipeline (90 edges, 40 vendors)...\n");
    // The scenario engine runs only the backbone study — no intra-DC
    // fleet is simulated for these artifacts.
    let ctx = RunContext::new(Scenario::backbone(2018));
    let out = ctx.execute();
    print!("{}", out.rendered);
    let inter = ctx.inter();

    println!(
        "\nvendor e-mails: {}   parsed tickets: {}   ingest failures: {}",
        inter.output().emails.len(),
        inter.tickets().len(),
        inter.ingest_failures,
    );

    // §6.1: conditional-risk capacity planning.
    println!("--------------------------------------------------------------");
    println!("Conditional-risk capacity planning (§6.1)");
    println!("--------------------------------------------------------------");
    if let Some(r) = inter.risk_report(400_000) {
        println!(
            "expected concurrently-failed edges : {:.3}",
            r.expected_failures
        );
        println!("p99.99 concurrent edge failures    : {}", r.p9999_failures);
        println!("P(all edges up)                    : {:.3}", r.p_all_up);
        println!(
            "implied capacity headroom          : {:.1}% of edge capacity must be dispensable",
            r.headroom_fraction * 100.0
        );
    }

    // §3.2: rerouting after fiber cuts increases end-to-end latency.
    println!("\n--------------------------------------------------------------");
    println!("Reroute latency impact (§3.2)");
    println!("--------------------------------------------------------------");
    use dcnr_core::backbone::wan::RerouteImpact;
    use std::collections::HashSet;
    let topo = &inter.output().topology;
    // Cut the busiest edge's links one by one and watch latency stretch.
    let victim = &topo.edges()[0];
    for n_cut in 1..=victim.links.len() {
        let cut: HashSet<_> = victim.links.iter().copied().take(n_cut).collect();
        let impact = RerouteImpact::of_cut(topo, &cut);
        println!(
            "  cut {}/{} of {}'s links: mean latency stretch {:.3}x, max {:.2}x, partitioned pairs {}",
            n_cut,
            victim.links.len(),
            victim.id,
            impact.mean_stretch,
            impact.max_stretch,
            impact.partitioned_pairs,
        );
    }

    // §3.2: the four-plane cross-DC fabric degrades, never partitions.
    println!("\nfour-plane cross-DC fabric (§3.2):");
    let mut planes = dcnr_core::backbone::CrossDcPlanes::paper(12);
    for p in 0..4 {
        planes.fail_plane(p);
        println!(
            "  planes failed: {} -> worst surviving pair capacity {:.0}%",
            p + 1,
            planes.min_pair_capacity() * 100.0
        );
    }

    // Bootstrap confidence intervals for the Fig. 15 fit.
    if let Some(boot) = inter.edge_mtbf_bootstrap(400, 0.95) {
        println!(
            "\nedge MTBF fit with 95% bootstrap CIs ({} resamples):",
            boot.successful_resamples
        );
        println!(
            "  a = {:.1}  CI [{:.1}, {:.1}]   (paper: 462.88)",
            boot.a.estimate, boot.a.lo, boot.a.hi
        );
        println!(
            "  b = {:.3} CI [{:.3}, {:.3}]   (paper: 2.3408)",
            boot.b.estimate, boot.b.lo, boot.b.hi
        );
        println!(
            "  paper coefficients inside our CIs: a {}, b {}",
            boot.a.contains(462.88),
            boot.b.contains(2.3408)
        );
    }

    // Kaplan-Meier cross-check on edge time-to-failure (censoring-aware).
    if let Some(km) = &inter.metrics().edge_uptime_survival {
        println!(
            "\nKaplan-Meier edge uptime: {} intervals ({} failures), median time-to-failure {} h",
            km.n(),
            km.events(),
            km.median()
                .map(|m| format!("{m:.0}"))
                .unwrap_or_else(|| "censored".into()),
        );
    }

    // A taste of the raw measurement substrate: one vendor e-mail.
    if let Some((t, raw)) = inter.output().emails.first() {
        println!("\nFirst vendor e-mail in the window (at {t}):\n");
        println!("{}", String::from_utf8_lossy(raw));
    }
}
