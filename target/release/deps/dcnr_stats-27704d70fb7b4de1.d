/root/repo/target/release/deps/dcnr_stats-27704d70fb7b4de1.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/kaplan.rs crates/stats/src/linfit.rs crates/stats/src/renewal.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

/root/repo/target/release/deps/libdcnr_stats-27704d70fb7b4de1.rlib: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/kaplan.rs crates/stats/src/linfit.rs crates/stats/src/renewal.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

/root/repo/target/release/deps/libdcnr_stats-27704d70fb7b4de1.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/kaplan.rs crates/stats/src/linfit.rs crates/stats/src/renewal.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/dist.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/expfit.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kaplan.rs:
crates/stats/src/linfit.rs:
crates/stats/src/renewal.rs:
crates/stats/src/summary.rs:
crates/stats/src/timeseries.rs:
