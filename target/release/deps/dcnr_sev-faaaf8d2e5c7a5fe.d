/root/repo/target/release/deps/dcnr_sev-faaaf8d2e5c7a5fe.d: crates/sev/src/lib.rs crates/sev/src/document.rs crates/sev/src/metrics.rs crates/sev/src/query.rs crates/sev/src/record.rs crates/sev/src/review.rs crates/sev/src/severity.rs crates/sev/src/store.rs

/root/repo/target/release/deps/libdcnr_sev-faaaf8d2e5c7a5fe.rlib: crates/sev/src/lib.rs crates/sev/src/document.rs crates/sev/src/metrics.rs crates/sev/src/query.rs crates/sev/src/record.rs crates/sev/src/review.rs crates/sev/src/severity.rs crates/sev/src/store.rs

/root/repo/target/release/deps/libdcnr_sev-faaaf8d2e5c7a5fe.rmeta: crates/sev/src/lib.rs crates/sev/src/document.rs crates/sev/src/metrics.rs crates/sev/src/query.rs crates/sev/src/record.rs crates/sev/src/review.rs crates/sev/src/severity.rs crates/sev/src/store.rs

crates/sev/src/lib.rs:
crates/sev/src/document.rs:
crates/sev/src/metrics.rs:
crates/sev/src/query.rs:
crates/sev/src/record.rs:
crates/sev/src/review.rs:
crates/sev/src/severity.rs:
crates/sev/src/store.rs:
