/root/repo/target/release/deps/dcnr_remediation-5b6f62371d109994.d: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs

/root/repo/target/release/deps/libdcnr_remediation-5b6f62371d109994.rlib: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs

/root/repo/target/release/deps/libdcnr_remediation-5b6f62371d109994.rmeta: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs

crates/remediation/src/lib.rs:
crates/remediation/src/action.rs:
crates/remediation/src/engine.rs:
crates/remediation/src/monitor.rs:
crates/remediation/src/policy.rs:
crates/remediation/src/queue.rs:
crates/remediation/src/report.rs:
