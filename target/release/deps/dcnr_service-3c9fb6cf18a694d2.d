/root/repo/target/release/deps/dcnr_service-3c9fb6cf18a694d2.d: crates/service/src/lib.rs crates/service/src/drill.rs crates/service/src/impact.rs crates/service/src/placement.rs crates/service/src/resolution.rs crates/service/src/severity.rs crates/service/src/sevgen.rs

/root/repo/target/release/deps/libdcnr_service-3c9fb6cf18a694d2.rlib: crates/service/src/lib.rs crates/service/src/drill.rs crates/service/src/impact.rs crates/service/src/placement.rs crates/service/src/resolution.rs crates/service/src/severity.rs crates/service/src/sevgen.rs

/root/repo/target/release/deps/libdcnr_service-3c9fb6cf18a694d2.rmeta: crates/service/src/lib.rs crates/service/src/drill.rs crates/service/src/impact.rs crates/service/src/placement.rs crates/service/src/resolution.rs crates/service/src/severity.rs crates/service/src/sevgen.rs

crates/service/src/lib.rs:
crates/service/src/drill.rs:
crates/service/src/impact.rs:
crates/service/src/placement.rs:
crates/service/src/resolution.rs:
crates/service/src/severity.rs:
crates/service/src/sevgen.rs:
