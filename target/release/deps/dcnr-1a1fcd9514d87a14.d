/root/repo/target/release/deps/dcnr-1a1fcd9514d87a14.d: crates/core/src/bin/dcnr.rs

/root/repo/target/release/deps/dcnr-1a1fcd9514d87a14: crates/core/src/bin/dcnr.rs

crates/core/src/bin/dcnr.rs:
