/root/repo/target/release/deps/dcnr_bench-670d47ef97878b71.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdcnr_bench-670d47ef97878b71.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdcnr_bench-670d47ef97878b71.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
