/root/repo/target/release/deps/dcnr_faults-c99c6a8bb613688f.d: crates/faults/src/lib.rs crates/faults/src/calibration.rs crates/faults/src/generator.rs crates/faults/src/growth.rs crates/faults/src/hazard.rs crates/faults/src/root_cause.rs crates/faults/src/wearout.rs

/root/repo/target/release/deps/libdcnr_faults-c99c6a8bb613688f.rlib: crates/faults/src/lib.rs crates/faults/src/calibration.rs crates/faults/src/generator.rs crates/faults/src/growth.rs crates/faults/src/hazard.rs crates/faults/src/root_cause.rs crates/faults/src/wearout.rs

/root/repo/target/release/deps/libdcnr_faults-c99c6a8bb613688f.rmeta: crates/faults/src/lib.rs crates/faults/src/calibration.rs crates/faults/src/generator.rs crates/faults/src/growth.rs crates/faults/src/hazard.rs crates/faults/src/root_cause.rs crates/faults/src/wearout.rs

crates/faults/src/lib.rs:
crates/faults/src/calibration.rs:
crates/faults/src/generator.rs:
crates/faults/src/growth.rs:
crates/faults/src/hazard.rs:
crates/faults/src/root_cause.rs:
crates/faults/src/wearout.rs:
