/root/repo/target/release/deps/dcnr_bench-158e8c0ad573570c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdcnr_bench-158e8c0ad573570c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdcnr_bench-158e8c0ad573570c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
