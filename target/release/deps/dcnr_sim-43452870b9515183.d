/root/repo/target/release/deps/dcnr_sim-43452870b9515183.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libdcnr_sim-43452870b9515183.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libdcnr_sim-43452870b9515183.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
