/root/repo/target/release/deps/dcnr_core-43d273f463cfce88.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

/root/repo/target/release/deps/libdcnr_core-43d273f463cfce88.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

/root/repo/target/release/deps/libdcnr_core-43d273f463cfce88.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/inter.rs:
crates/core/src/intra.rs:
crates/core/src/report.rs:
