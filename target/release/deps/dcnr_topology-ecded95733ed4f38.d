/root/repo/target/release/deps/dcnr_topology-ecded95733ed4f38.d: crates/topology/src/lib.rs crates/topology/src/cluster.rs crates/topology/src/datacenter.rs crates/topology/src/device.rs crates/topology/src/fabric.rs crates/topology/src/fleet.rs crates/topology/src/graph.rs crates/topology/src/naming.rs crates/topology/src/routing.rs

/root/repo/target/release/deps/libdcnr_topology-ecded95733ed4f38.rlib: crates/topology/src/lib.rs crates/topology/src/cluster.rs crates/topology/src/datacenter.rs crates/topology/src/device.rs crates/topology/src/fabric.rs crates/topology/src/fleet.rs crates/topology/src/graph.rs crates/topology/src/naming.rs crates/topology/src/routing.rs

/root/repo/target/release/deps/libdcnr_topology-ecded95733ed4f38.rmeta: crates/topology/src/lib.rs crates/topology/src/cluster.rs crates/topology/src/datacenter.rs crates/topology/src/device.rs crates/topology/src/fabric.rs crates/topology/src/fleet.rs crates/topology/src/graph.rs crates/topology/src/naming.rs crates/topology/src/routing.rs

crates/topology/src/lib.rs:
crates/topology/src/cluster.rs:
crates/topology/src/datacenter.rs:
crates/topology/src/device.rs:
crates/topology/src/fabric.rs:
crates/topology/src/fleet.rs:
crates/topology/src/graph.rs:
crates/topology/src/naming.rs:
crates/topology/src/routing.rs:
