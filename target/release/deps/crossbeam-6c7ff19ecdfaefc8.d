/root/repo/target/release/deps/crossbeam-6c7ff19ecdfaefc8.d: crates/compat/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-6c7ff19ecdfaefc8.rlib: crates/compat/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-6c7ff19ecdfaefc8.rmeta: crates/compat/crossbeam/src/lib.rs

crates/compat/crossbeam/src/lib.rs:
