/root/repo/target/release/deps/dcnr-da180e4ba2b8e209.d: crates/core/src/bin/dcnr.rs

/root/repo/target/release/deps/dcnr-da180e4ba2b8e209: crates/core/src/bin/dcnr.rs

crates/core/src/bin/dcnr.rs:
