/root/repo/target/debug/examples/blast_radius-be23177c0b28280a.d: crates/core/../../examples/blast_radius.rs

/root/repo/target/debug/examples/blast_radius-be23177c0b28280a: crates/core/../../examples/blast_radius.rs

crates/core/../../examples/blast_radius.rs:
