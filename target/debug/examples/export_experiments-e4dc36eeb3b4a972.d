/root/repo/target/debug/examples/export_experiments-e4dc36eeb3b4a972.d: crates/core/../../examples/export_experiments.rs Cargo.toml

/root/repo/target/debug/examples/libexport_experiments-e4dc36eeb3b4a972.rmeta: crates/core/../../examples/export_experiments.rs Cargo.toml

crates/core/../../examples/export_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
