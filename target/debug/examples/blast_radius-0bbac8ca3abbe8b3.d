/root/repo/target/debug/examples/blast_radius-0bbac8ca3abbe8b3.d: crates/core/../../examples/blast_radius.rs Cargo.toml

/root/repo/target/debug/examples/libblast_radius-0bbac8ca3abbe8b3.rmeta: crates/core/../../examples/blast_radius.rs Cargo.toml

crates/core/../../examples/blast_radius.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
