/root/repo/target/debug/examples/export_experiments-47982da0989d042c.d: crates/core/../../examples/export_experiments.rs

/root/repo/target/debug/examples/export_experiments-47982da0989d042c: crates/core/../../examples/export_experiments.rs

crates/core/../../examples/export_experiments.rs:
