/root/repo/target/debug/examples/blast_radius-979cc542e4baec45.d: crates/core/../../examples/blast_radius.rs

/root/repo/target/debug/examples/blast_radius-979cc542e4baec45: crates/core/../../examples/blast_radius.rs

crates/core/../../examples/blast_radius.rs:
