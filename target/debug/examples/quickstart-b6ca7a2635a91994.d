/root/repo/target/debug/examples/quickstart-b6ca7a2635a91994.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b6ca7a2635a91994.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
