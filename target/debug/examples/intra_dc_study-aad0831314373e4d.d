/root/repo/target/debug/examples/intra_dc_study-aad0831314373e4d.d: crates/core/../../examples/intra_dc_study.rs

/root/repo/target/debug/examples/intra_dc_study-aad0831314373e4d: crates/core/../../examples/intra_dc_study.rs

crates/core/../../examples/intra_dc_study.rs:
