/root/repo/target/debug/examples/backbone_study-2f303dd7f79dfa54.d: crates/core/../../examples/backbone_study.rs Cargo.toml

/root/repo/target/debug/examples/libbackbone_study-2f303dd7f79dfa54.rmeta: crates/core/../../examples/backbone_study.rs Cargo.toml

crates/core/../../examples/backbone_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
