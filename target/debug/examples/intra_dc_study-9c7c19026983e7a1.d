/root/repo/target/debug/examples/intra_dc_study-9c7c19026983e7a1.d: crates/core/../../examples/intra_dc_study.rs

/root/repo/target/debug/examples/intra_dc_study-9c7c19026983e7a1: crates/core/../../examples/intra_dc_study.rs

crates/core/../../examples/intra_dc_study.rs:
