/root/repo/target/debug/examples/quickstart-7a1ce334312d0926.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7a1ce334312d0926: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
