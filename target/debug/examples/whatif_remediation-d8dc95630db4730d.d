/root/repo/target/debug/examples/whatif_remediation-d8dc95630db4730d.d: crates/core/../../examples/whatif_remediation.rs

/root/repo/target/debug/examples/whatif_remediation-d8dc95630db4730d: crates/core/../../examples/whatif_remediation.rs

crates/core/../../examples/whatif_remediation.rs:
