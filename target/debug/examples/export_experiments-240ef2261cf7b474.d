/root/repo/target/debug/examples/export_experiments-240ef2261cf7b474.d: crates/core/../../examples/export_experiments.rs

/root/repo/target/debug/examples/export_experiments-240ef2261cf7b474: crates/core/../../examples/export_experiments.rs

crates/core/../../examples/export_experiments.rs:
