/root/repo/target/debug/examples/quickstart-c1d7c200b2926f65.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c1d7c200b2926f65: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
