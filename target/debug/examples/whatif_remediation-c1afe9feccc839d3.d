/root/repo/target/debug/examples/whatif_remediation-c1afe9feccc839d3.d: crates/core/../../examples/whatif_remediation.rs

/root/repo/target/debug/examples/whatif_remediation-c1afe9feccc839d3: crates/core/../../examples/whatif_remediation.rs

crates/core/../../examples/whatif_remediation.rs:
