/root/repo/target/debug/examples/intra_dc_study-e03483f3ac939790.d: crates/core/../../examples/intra_dc_study.rs Cargo.toml

/root/repo/target/debug/examples/libintra_dc_study-e03483f3ac939790.rmeta: crates/core/../../examples/intra_dc_study.rs Cargo.toml

crates/core/../../examples/intra_dc_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
