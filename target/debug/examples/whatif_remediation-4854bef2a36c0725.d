/root/repo/target/debug/examples/whatif_remediation-4854bef2a36c0725.d: crates/core/../../examples/whatif_remediation.rs Cargo.toml

/root/repo/target/debug/examples/libwhatif_remediation-4854bef2a36c0725.rmeta: crates/core/../../examples/whatif_remediation.rs Cargo.toml

crates/core/../../examples/whatif_remediation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
