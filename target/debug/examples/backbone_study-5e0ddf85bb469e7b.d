/root/repo/target/debug/examples/backbone_study-5e0ddf85bb469e7b.d: crates/core/../../examples/backbone_study.rs

/root/repo/target/debug/examples/backbone_study-5e0ddf85bb469e7b: crates/core/../../examples/backbone_study.rs

crates/core/../../examples/backbone_study.rs:
