/root/repo/target/debug/examples/backbone_study-845c21898da682e8.d: crates/core/../../examples/backbone_study.rs

/root/repo/target/debug/examples/backbone_study-845c21898da682e8: crates/core/../../examples/backbone_study.rs

crates/core/../../examples/backbone_study.rs:
