/root/repo/target/debug/deps/dcnr-2c7bd9bfa8524796.d: crates/core/src/bin/dcnr.rs

/root/repo/target/debug/deps/dcnr-2c7bd9bfa8524796: crates/core/src/bin/dcnr.rs

crates/core/src/bin/dcnr.rs:
