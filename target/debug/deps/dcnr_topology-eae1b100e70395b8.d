/root/repo/target/debug/deps/dcnr_topology-eae1b100e70395b8.d: crates/topology/src/lib.rs crates/topology/src/cluster.rs crates/topology/src/datacenter.rs crates/topology/src/device.rs crates/topology/src/fabric.rs crates/topology/src/fleet.rs crates/topology/src/graph.rs crates/topology/src/naming.rs crates/topology/src/routing.rs

/root/repo/target/debug/deps/libdcnr_topology-eae1b100e70395b8.rmeta: crates/topology/src/lib.rs crates/topology/src/cluster.rs crates/topology/src/datacenter.rs crates/topology/src/device.rs crates/topology/src/fabric.rs crates/topology/src/fleet.rs crates/topology/src/graph.rs crates/topology/src/naming.rs crates/topology/src/routing.rs

crates/topology/src/lib.rs:
crates/topology/src/cluster.rs:
crates/topology/src/datacenter.rs:
crates/topology/src/device.rs:
crates/topology/src/fabric.rs:
crates/topology/src/fleet.rs:
crates/topology/src/graph.rs:
crates/topology/src/naming.rs:
crates/topology/src/routing.rs:
