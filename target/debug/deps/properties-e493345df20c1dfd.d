/root/repo/target/debug/deps/properties-e493345df20c1dfd.d: crates/faults/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e493345df20c1dfd.rmeta: crates/faults/tests/properties.rs Cargo.toml

crates/faults/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
