/root/repo/target/debug/deps/dcnr_stats-f48f663df17848bf.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/kaplan.rs crates/stats/src/linfit.rs crates/stats/src/renewal.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

/root/repo/target/debug/deps/libdcnr_stats-f48f663df17848bf.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/kaplan.rs crates/stats/src/linfit.rs crates/stats/src/renewal.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/dist.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/expfit.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kaplan.rs:
crates/stats/src/linfit.rs:
crates/stats/src/renewal.rs:
crates/stats/src/summary.rs:
crates/stats/src/timeseries.rs:
