/root/repo/target/debug/deps/dcnr_service-579d998c0eaea0a9.d: crates/service/src/lib.rs crates/service/src/drill.rs crates/service/src/impact.rs crates/service/src/placement.rs crates/service/src/resolution.rs crates/service/src/severity.rs crates/service/src/sevgen.rs

/root/repo/target/debug/deps/libdcnr_service-579d998c0eaea0a9.rmeta: crates/service/src/lib.rs crates/service/src/drill.rs crates/service/src/impact.rs crates/service/src/placement.rs crates/service/src/resolution.rs crates/service/src/severity.rs crates/service/src/sevgen.rs

crates/service/src/lib.rs:
crates/service/src/drill.rs:
crates/service/src/impact.rs:
crates/service/src/placement.rs:
crates/service/src/resolution.rs:
crates/service/src/severity.rs:
crates/service/src/sevgen.rs:
