/root/repo/target/debug/deps/dcnr_backbone-ae78a0764fc312b1.d: crates/backbone/src/lib.rs crates/backbone/src/email.rs crates/backbone/src/failure_model.rs crates/backbone/src/geo.rs crates/backbone/src/metrics.rs crates/backbone/src/models.rs crates/backbone/src/optical.rs crates/backbone/src/planning.rs crates/backbone/src/sim.rs crates/backbone/src/ticket.rs crates/backbone/src/topo.rs crates/backbone/src/vendor.rs crates/backbone/src/wan.rs

/root/repo/target/debug/deps/libdcnr_backbone-ae78a0764fc312b1.rlib: crates/backbone/src/lib.rs crates/backbone/src/email.rs crates/backbone/src/failure_model.rs crates/backbone/src/geo.rs crates/backbone/src/metrics.rs crates/backbone/src/models.rs crates/backbone/src/optical.rs crates/backbone/src/planning.rs crates/backbone/src/sim.rs crates/backbone/src/ticket.rs crates/backbone/src/topo.rs crates/backbone/src/vendor.rs crates/backbone/src/wan.rs

/root/repo/target/debug/deps/libdcnr_backbone-ae78a0764fc312b1.rmeta: crates/backbone/src/lib.rs crates/backbone/src/email.rs crates/backbone/src/failure_model.rs crates/backbone/src/geo.rs crates/backbone/src/metrics.rs crates/backbone/src/models.rs crates/backbone/src/optical.rs crates/backbone/src/planning.rs crates/backbone/src/sim.rs crates/backbone/src/ticket.rs crates/backbone/src/topo.rs crates/backbone/src/vendor.rs crates/backbone/src/wan.rs

crates/backbone/src/lib.rs:
crates/backbone/src/email.rs:
crates/backbone/src/failure_model.rs:
crates/backbone/src/geo.rs:
crates/backbone/src/metrics.rs:
crates/backbone/src/models.rs:
crates/backbone/src/optical.rs:
crates/backbone/src/planning.rs:
crates/backbone/src/sim.rs:
crates/backbone/src/ticket.rs:
crates/backbone/src/topo.rs:
crates/backbone/src/vendor.rs:
crates/backbone/src/wan.rs:
