/root/repo/target/debug/deps/dcnr_bench-471cb41856291d2c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_bench-471cb41856291d2c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
