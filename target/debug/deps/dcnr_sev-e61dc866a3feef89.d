/root/repo/target/debug/deps/dcnr_sev-e61dc866a3feef89.d: crates/sev/src/lib.rs crates/sev/src/document.rs crates/sev/src/metrics.rs crates/sev/src/query.rs crates/sev/src/record.rs crates/sev/src/review.rs crates/sev/src/severity.rs crates/sev/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_sev-e61dc866a3feef89.rmeta: crates/sev/src/lib.rs crates/sev/src/document.rs crates/sev/src/metrics.rs crates/sev/src/query.rs crates/sev/src/record.rs crates/sev/src/review.rs crates/sev/src/severity.rs crates/sev/src/store.rs Cargo.toml

crates/sev/src/lib.rs:
crates/sev/src/document.rs:
crates/sev/src/metrics.rs:
crates/sev/src/query.rs:
crates/sev/src/record.rs:
crates/sev/src/review.rs:
crates/sev/src/severity.rs:
crates/sev/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
