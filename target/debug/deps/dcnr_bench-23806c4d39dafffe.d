/root/repo/target/debug/deps/dcnr_bench-23806c4d39dafffe.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdcnr_bench-23806c4d39dafffe.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
