/root/repo/target/debug/deps/dcnr_chaos-bf16cfbdc4c62dd1.d: crates/chaos/src/lib.rs crates/chaos/src/config.rs crates/chaos/src/dead_letter.rs crates/chaos/src/dedup.rs crates/chaos/src/inject.rs crates/chaos/src/pipeline.rs crates/chaos/src/reconcile.rs crates/chaos/src/report.rs crates/chaos/src/store.rs crates/chaos/src/study.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_chaos-bf16cfbdc4c62dd1.rmeta: crates/chaos/src/lib.rs crates/chaos/src/config.rs crates/chaos/src/dead_letter.rs crates/chaos/src/dedup.rs crates/chaos/src/inject.rs crates/chaos/src/pipeline.rs crates/chaos/src/reconcile.rs crates/chaos/src/report.rs crates/chaos/src/store.rs crates/chaos/src/study.rs Cargo.toml

crates/chaos/src/lib.rs:
crates/chaos/src/config.rs:
crates/chaos/src/dead_letter.rs:
crates/chaos/src/dedup.rs:
crates/chaos/src/inject.rs:
crates/chaos/src/pipeline.rs:
crates/chaos/src/reconcile.rs:
crates/chaos/src/report.rs:
crates/chaos/src/store.rs:
crates/chaos/src/study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
