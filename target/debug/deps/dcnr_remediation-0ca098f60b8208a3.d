/root/repo/target/debug/deps/dcnr_remediation-0ca098f60b8208a3.d: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs

/root/repo/target/debug/deps/libdcnr_remediation-0ca098f60b8208a3.rlib: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs

/root/repo/target/debug/deps/libdcnr_remediation-0ca098f60b8208a3.rmeta: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs

crates/remediation/src/lib.rs:
crates/remediation/src/action.rs:
crates/remediation/src/engine.rs:
crates/remediation/src/monitor.rs:
crates/remediation/src/policy.rs:
crates/remediation/src/queue.rs:
crates/remediation/src/report.rs:
