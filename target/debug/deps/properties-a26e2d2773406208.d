/root/repo/target/debug/deps/properties-a26e2d2773406208.d: crates/sev/tests/properties.rs

/root/repo/target/debug/deps/properties-a26e2d2773406208: crates/sev/tests/properties.rs

crates/sev/tests/properties.rs:
