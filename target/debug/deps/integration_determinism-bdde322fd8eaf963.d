/root/repo/target/debug/deps/integration_determinism-bdde322fd8eaf963.d: crates/core/../../tests/integration_determinism.rs

/root/repo/target/debug/deps/integration_determinism-bdde322fd8eaf963: crates/core/../../tests/integration_determinism.rs

crates/core/../../tests/integration_determinism.rs:
