/root/repo/target/debug/deps/dcnr_stats-3548165243d13c2f.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/kaplan.rs crates/stats/src/linfit.rs crates/stats/src/renewal.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_stats-3548165243d13c2f.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/kaplan.rs crates/stats/src/linfit.rs crates/stats/src/renewal.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/dist.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/expfit.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kaplan.rs:
crates/stats/src/linfit.rs:
crates/stats/src/renewal.rs:
crates/stats/src/summary.rs:
crates/stats/src/timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
