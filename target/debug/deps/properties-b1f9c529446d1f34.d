/root/repo/target/debug/deps/properties-b1f9c529446d1f34.d: crates/remediation/tests/properties.rs

/root/repo/target/debug/deps/properties-b1f9c529446d1f34: crates/remediation/tests/properties.rs

crates/remediation/tests/properties.rs:
