/root/repo/target/debug/deps/dcnr-7409815e6271b8cf.d: crates/core/src/bin/dcnr.rs

/root/repo/target/debug/deps/dcnr-7409815e6271b8cf: crates/core/src/bin/dcnr.rs

crates/core/src/bin/dcnr.rs:
