/root/repo/target/debug/deps/dcnr_sev-971237772476ac62.d: crates/sev/src/lib.rs crates/sev/src/document.rs crates/sev/src/metrics.rs crates/sev/src/query.rs crates/sev/src/record.rs crates/sev/src/review.rs crates/sev/src/severity.rs crates/sev/src/store.rs

/root/repo/target/debug/deps/libdcnr_sev-971237772476ac62.rmeta: crates/sev/src/lib.rs crates/sev/src/document.rs crates/sev/src/metrics.rs crates/sev/src/query.rs crates/sev/src/record.rs crates/sev/src/review.rs crates/sev/src/severity.rs crates/sev/src/store.rs

crates/sev/src/lib.rs:
crates/sev/src/document.rs:
crates/sev/src/metrics.rs:
crates/sev/src/query.rs:
crates/sev/src/record.rs:
crates/sev/src/review.rs:
crates/sev/src/severity.rs:
crates/sev/src/store.rs:
