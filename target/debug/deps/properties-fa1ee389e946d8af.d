/root/repo/target/debug/deps/properties-fa1ee389e946d8af.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-fa1ee389e946d8af: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
