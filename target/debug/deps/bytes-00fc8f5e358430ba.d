/root/repo/target/debug/deps/bytes-00fc8f5e358430ba.d: crates/compat/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-00fc8f5e358430ba.rmeta: crates/compat/bytes/src/lib.rs

crates/compat/bytes/src/lib.rs:
