/root/repo/target/debug/deps/dcnr-e68146396b2ca59c.d: crates/core/src/bin/dcnr.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr-e68146396b2ca59c.rmeta: crates/core/src/bin/dcnr.rs Cargo.toml

crates/core/src/bin/dcnr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
