/root/repo/target/debug/deps/integration_determinism-342a481752d0bc5c.d: crates/core/../../tests/integration_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_determinism-342a481752d0bc5c.rmeta: crates/core/../../tests/integration_determinism.rs Cargo.toml

crates/core/../../tests/integration_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
