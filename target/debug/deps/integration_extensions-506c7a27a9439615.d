/root/repo/target/debug/deps/integration_extensions-506c7a27a9439615.d: crates/core/../../tests/integration_extensions.rs

/root/repo/target/debug/deps/integration_extensions-506c7a27a9439615: crates/core/../../tests/integration_extensions.rs

crates/core/../../tests/integration_extensions.rs:
