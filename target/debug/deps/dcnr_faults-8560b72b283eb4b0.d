/root/repo/target/debug/deps/dcnr_faults-8560b72b283eb4b0.d: crates/faults/src/lib.rs crates/faults/src/calibration.rs crates/faults/src/generator.rs crates/faults/src/growth.rs crates/faults/src/hazard.rs crates/faults/src/root_cause.rs crates/faults/src/wearout.rs

/root/repo/target/debug/deps/libdcnr_faults-8560b72b283eb4b0.rmeta: crates/faults/src/lib.rs crates/faults/src/calibration.rs crates/faults/src/generator.rs crates/faults/src/growth.rs crates/faults/src/hazard.rs crates/faults/src/root_cause.rs crates/faults/src/wearout.rs

crates/faults/src/lib.rs:
crates/faults/src/calibration.rs:
crates/faults/src/generator.rs:
crates/faults/src/growth.rs:
crates/faults/src/hazard.rs:
crates/faults/src/root_cause.rs:
crates/faults/src/wearout.rs:
