/root/repo/target/debug/deps/integration_backbone-7c87440622705da4.d: crates/core/../../tests/integration_backbone.rs

/root/repo/target/debug/deps/integration_backbone-7c87440622705da4: crates/core/../../tests/integration_backbone.rs

crates/core/../../tests/integration_backbone.rs:
