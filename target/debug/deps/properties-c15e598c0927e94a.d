/root/repo/target/debug/deps/properties-c15e598c0927e94a.d: crates/service/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c15e598c0927e94a.rmeta: crates/service/tests/properties.rs Cargo.toml

crates/service/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
