/root/repo/target/debug/deps/integration_backbone-0cc2a48dec7138bb.d: crates/core/../../tests/integration_backbone.rs

/root/repo/target/debug/deps/integration_backbone-0cc2a48dec7138bb: crates/core/../../tests/integration_backbone.rs

crates/core/../../tests/integration_backbone.rs:
