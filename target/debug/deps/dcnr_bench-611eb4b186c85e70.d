/root/repo/target/debug/deps/dcnr_bench-611eb4b186c85e70.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdcnr_bench-611eb4b186c85e70.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdcnr_bench-611eb4b186c85e70.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
