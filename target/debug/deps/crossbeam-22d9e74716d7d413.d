/root/repo/target/debug/deps/crossbeam-22d9e74716d7d413.d: crates/compat/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-22d9e74716d7d413.rmeta: crates/compat/crossbeam/src/lib.rs

crates/compat/crossbeam/src/lib.rs:
