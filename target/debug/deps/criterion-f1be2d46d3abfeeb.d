/root/repo/target/debug/deps/criterion-f1be2d46d3abfeeb.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f1be2d46d3abfeeb.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f1be2d46d3abfeeb.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
