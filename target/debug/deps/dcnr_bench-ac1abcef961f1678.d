/root/repo/target/debug/deps/dcnr_bench-ac1abcef961f1678.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dcnr_bench-ac1abcef961f1678: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
