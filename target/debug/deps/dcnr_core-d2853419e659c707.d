/root/repo/target/debug/deps/dcnr_core-d2853419e659c707.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

/root/repo/target/debug/deps/dcnr_core-d2853419e659c707: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/inter.rs:
crates/core/src/intra.rs:
crates/core/src/report.rs:
