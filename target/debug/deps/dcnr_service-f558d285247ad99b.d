/root/repo/target/debug/deps/dcnr_service-f558d285247ad99b.d: crates/service/src/lib.rs crates/service/src/drill.rs crates/service/src/impact.rs crates/service/src/placement.rs crates/service/src/resolution.rs crates/service/src/severity.rs crates/service/src/sevgen.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_service-f558d285247ad99b.rmeta: crates/service/src/lib.rs crates/service/src/drill.rs crates/service/src/impact.rs crates/service/src/placement.rs crates/service/src/resolution.rs crates/service/src/severity.rs crates/service/src/sevgen.rs Cargo.toml

crates/service/src/lib.rs:
crates/service/src/drill.rs:
crates/service/src/impact.rs:
crates/service/src/placement.rs:
crates/service/src/resolution.rs:
crates/service/src/severity.rs:
crates/service/src/sevgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
