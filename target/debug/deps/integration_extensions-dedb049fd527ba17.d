/root/repo/target/debug/deps/integration_extensions-dedb049fd527ba17.d: crates/core/../../tests/integration_extensions.rs

/root/repo/target/debug/deps/integration_extensions-dedb049fd527ba17: crates/core/../../tests/integration_extensions.rs

crates/core/../../tests/integration_extensions.rs:
