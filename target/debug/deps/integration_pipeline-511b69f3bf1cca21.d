/root/repo/target/debug/deps/integration_pipeline-511b69f3bf1cca21.d: crates/core/../../tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-511b69f3bf1cca21: crates/core/../../tests/integration_pipeline.rs

crates/core/../../tests/integration_pipeline.rs:
