/root/repo/target/debug/deps/properties-0204009f5575a87b.d: crates/remediation/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0204009f5575a87b.rmeta: crates/remediation/tests/properties.rs Cargo.toml

crates/remediation/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
