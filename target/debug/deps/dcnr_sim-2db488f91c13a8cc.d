/root/repo/target/debug/deps/dcnr_sim-2db488f91c13a8cc.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/dcnr_sim-2db488f91c13a8cc: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
