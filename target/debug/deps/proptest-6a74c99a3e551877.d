/root/repo/target/debug/deps/proptest-6a74c99a3e551877.d: crates/compat/proptest/src/lib.rs crates/compat/proptest/src/strategy.rs crates/compat/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-6a74c99a3e551877.rmeta: crates/compat/proptest/src/lib.rs crates/compat/proptest/src/strategy.rs crates/compat/proptest/src/test_runner.rs

crates/compat/proptest/src/lib.rs:
crates/compat/proptest/src/strategy.rs:
crates/compat/proptest/src/test_runner.rs:
