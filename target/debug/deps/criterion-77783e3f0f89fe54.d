/root/repo/target/debug/deps/criterion-77783e3f0f89fe54.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-77783e3f0f89fe54.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
