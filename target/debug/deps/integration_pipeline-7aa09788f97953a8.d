/root/repo/target/debug/deps/integration_pipeline-7aa09788f97953a8.d: crates/core/../../tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-7aa09788f97953a8: crates/core/../../tests/integration_pipeline.rs

crates/core/../../tests/integration_pipeline.rs:
