/root/repo/target/debug/deps/integration_backbone-c8fb8d97bc0d6655.d: crates/core/../../tests/integration_backbone.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_backbone-c8fb8d97bc0d6655.rmeta: crates/core/../../tests/integration_backbone.rs Cargo.toml

crates/core/../../tests/integration_backbone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
