/root/repo/target/debug/deps/dcnr_bench-3ea8bc43b2319e0b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdcnr_bench-3ea8bc43b2319e0b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdcnr_bench-3ea8bc43b2319e0b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
