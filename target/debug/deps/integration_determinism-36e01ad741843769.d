/root/repo/target/debug/deps/integration_determinism-36e01ad741843769.d: crates/core/../../tests/integration_determinism.rs

/root/repo/target/debug/deps/integration_determinism-36e01ad741843769: crates/core/../../tests/integration_determinism.rs

crates/core/../../tests/integration_determinism.rs:
