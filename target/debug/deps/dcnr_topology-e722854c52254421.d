/root/repo/target/debug/deps/dcnr_topology-e722854c52254421.d: crates/topology/src/lib.rs crates/topology/src/cluster.rs crates/topology/src/datacenter.rs crates/topology/src/device.rs crates/topology/src/fabric.rs crates/topology/src/fleet.rs crates/topology/src/graph.rs crates/topology/src/naming.rs crates/topology/src/routing.rs crates/topology/src/proptests.rs

/root/repo/target/debug/deps/dcnr_topology-e722854c52254421: crates/topology/src/lib.rs crates/topology/src/cluster.rs crates/topology/src/datacenter.rs crates/topology/src/device.rs crates/topology/src/fabric.rs crates/topology/src/fleet.rs crates/topology/src/graph.rs crates/topology/src/naming.rs crates/topology/src/routing.rs crates/topology/src/proptests.rs

crates/topology/src/lib.rs:
crates/topology/src/cluster.rs:
crates/topology/src/datacenter.rs:
crates/topology/src/device.rs:
crates/topology/src/fabric.rs:
crates/topology/src/fleet.rs:
crates/topology/src/graph.rs:
crates/topology/src/naming.rs:
crates/topology/src/routing.rs:
crates/topology/src/proptests.rs:
