/root/repo/target/debug/deps/properties-58ddb8f892c6811e.d: crates/faults/tests/properties.rs

/root/repo/target/debug/deps/properties-58ddb8f892c6811e: crates/faults/tests/properties.rs

crates/faults/tests/properties.rs:
