/root/repo/target/debug/deps/dcnr-1b0667cbf8af107a.d: crates/core/src/bin/dcnr.rs

/root/repo/target/debug/deps/dcnr-1b0667cbf8af107a: crates/core/src/bin/dcnr.rs

crates/core/src/bin/dcnr.rs:
