/root/repo/target/debug/deps/dcnr_bench-1b092564b5f64005.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_bench-1b092564b5f64005.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
