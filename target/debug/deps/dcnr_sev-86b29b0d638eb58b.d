/root/repo/target/debug/deps/dcnr_sev-86b29b0d638eb58b.d: crates/sev/src/lib.rs crates/sev/src/document.rs crates/sev/src/metrics.rs crates/sev/src/query.rs crates/sev/src/record.rs crates/sev/src/review.rs crates/sev/src/severity.rs crates/sev/src/store.rs

/root/repo/target/debug/deps/libdcnr_sev-86b29b0d638eb58b.rlib: crates/sev/src/lib.rs crates/sev/src/document.rs crates/sev/src/metrics.rs crates/sev/src/query.rs crates/sev/src/record.rs crates/sev/src/review.rs crates/sev/src/severity.rs crates/sev/src/store.rs

/root/repo/target/debug/deps/libdcnr_sev-86b29b0d638eb58b.rmeta: crates/sev/src/lib.rs crates/sev/src/document.rs crates/sev/src/metrics.rs crates/sev/src/query.rs crates/sev/src/record.rs crates/sev/src/review.rs crates/sev/src/severity.rs crates/sev/src/store.rs

crates/sev/src/lib.rs:
crates/sev/src/document.rs:
crates/sev/src/metrics.rs:
crates/sev/src/query.rs:
crates/sev/src/record.rs:
crates/sev/src/review.rs:
crates/sev/src/severity.rs:
crates/sev/src/store.rs:
