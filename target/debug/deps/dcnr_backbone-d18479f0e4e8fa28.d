/root/repo/target/debug/deps/dcnr_backbone-d18479f0e4e8fa28.d: crates/backbone/src/lib.rs crates/backbone/src/email.rs crates/backbone/src/failure_model.rs crates/backbone/src/geo.rs crates/backbone/src/metrics.rs crates/backbone/src/models.rs crates/backbone/src/optical.rs crates/backbone/src/planning.rs crates/backbone/src/sim.rs crates/backbone/src/ticket.rs crates/backbone/src/topo.rs crates/backbone/src/vendor.rs crates/backbone/src/wan.rs

/root/repo/target/debug/deps/libdcnr_backbone-d18479f0e4e8fa28.rmeta: crates/backbone/src/lib.rs crates/backbone/src/email.rs crates/backbone/src/failure_model.rs crates/backbone/src/geo.rs crates/backbone/src/metrics.rs crates/backbone/src/models.rs crates/backbone/src/optical.rs crates/backbone/src/planning.rs crates/backbone/src/sim.rs crates/backbone/src/ticket.rs crates/backbone/src/topo.rs crates/backbone/src/vendor.rs crates/backbone/src/wan.rs

crates/backbone/src/lib.rs:
crates/backbone/src/email.rs:
crates/backbone/src/failure_model.rs:
crates/backbone/src/geo.rs:
crates/backbone/src/metrics.rs:
crates/backbone/src/models.rs:
crates/backbone/src/optical.rs:
crates/backbone/src/planning.rs:
crates/backbone/src/sim.rs:
crates/backbone/src/ticket.rs:
crates/backbone/src/topo.rs:
crates/backbone/src/vendor.rs:
crates/backbone/src/wan.rs:
