/root/repo/target/debug/deps/parking_lot-c2db7cfad8f64b2e.d: crates/compat/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c2db7cfad8f64b2e.rmeta: crates/compat/parking_lot/src/lib.rs

crates/compat/parking_lot/src/lib.rs:
