/root/repo/target/debug/deps/dcnr_core-c74604fed712aca7.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_core-c74604fed712aca7.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/inter.rs:
crates/core/src/intra.rs:
crates/core/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
