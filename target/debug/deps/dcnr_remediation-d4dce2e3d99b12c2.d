/root/repo/target/debug/deps/dcnr_remediation-d4dce2e3d99b12c2.d: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs

/root/repo/target/debug/deps/libdcnr_remediation-d4dce2e3d99b12c2.rmeta: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs

crates/remediation/src/lib.rs:
crates/remediation/src/action.rs:
crates/remediation/src/engine.rs:
crates/remediation/src/monitor.rs:
crates/remediation/src/policy.rs:
crates/remediation/src/queue.rs:
crates/remediation/src/report.rs:
