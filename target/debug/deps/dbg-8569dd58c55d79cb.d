/root/repo/target/debug/deps/dbg-8569dd58c55d79cb.d: crates/chaos/tests/dbg.rs

/root/repo/target/debug/deps/dbg-8569dd58c55d79cb: crates/chaos/tests/dbg.rs

crates/chaos/tests/dbg.rs:
