/root/repo/target/debug/deps/dcnr_remediation-0886316f787b5ed8.d: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs

/root/repo/target/debug/deps/dcnr_remediation-0886316f787b5ed8: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs

crates/remediation/src/lib.rs:
crates/remediation/src/action.rs:
crates/remediation/src/engine.rs:
crates/remediation/src/monitor.rs:
crates/remediation/src/policy.rs:
crates/remediation/src/queue.rs:
crates/remediation/src/report.rs:
