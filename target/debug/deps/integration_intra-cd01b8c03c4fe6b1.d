/root/repo/target/debug/deps/integration_intra-cd01b8c03c4fe6b1.d: crates/core/../../tests/integration_intra.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_intra-cd01b8c03c4fe6b1.rmeta: crates/core/../../tests/integration_intra.rs Cargo.toml

crates/core/../../tests/integration_intra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
