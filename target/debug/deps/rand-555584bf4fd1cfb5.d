/root/repo/target/debug/deps/rand-555584bf4fd1cfb5.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-555584bf4fd1cfb5.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
