/root/repo/target/debug/deps/properties-f58fec83e51039bd.d: crates/service/tests/properties.rs

/root/repo/target/debug/deps/properties-f58fec83e51039bd: crates/service/tests/properties.rs

crates/service/tests/properties.rs:
