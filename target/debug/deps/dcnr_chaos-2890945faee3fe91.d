/root/repo/target/debug/deps/dcnr_chaos-2890945faee3fe91.d: crates/chaos/src/lib.rs crates/chaos/src/config.rs crates/chaos/src/dead_letter.rs crates/chaos/src/dedup.rs crates/chaos/src/inject.rs crates/chaos/src/pipeline.rs crates/chaos/src/reconcile.rs crates/chaos/src/report.rs crates/chaos/src/store.rs crates/chaos/src/study.rs

/root/repo/target/debug/deps/libdcnr_chaos-2890945faee3fe91.rmeta: crates/chaos/src/lib.rs crates/chaos/src/config.rs crates/chaos/src/dead_letter.rs crates/chaos/src/dedup.rs crates/chaos/src/inject.rs crates/chaos/src/pipeline.rs crates/chaos/src/reconcile.rs crates/chaos/src/report.rs crates/chaos/src/store.rs crates/chaos/src/study.rs

crates/chaos/src/lib.rs:
crates/chaos/src/config.rs:
crates/chaos/src/dead_letter.rs:
crates/chaos/src/dedup.rs:
crates/chaos/src/inject.rs:
crates/chaos/src/pipeline.rs:
crates/chaos/src/reconcile.rs:
crates/chaos/src/report.rs:
crates/chaos/src/store.rs:
crates/chaos/src/study.rs:
