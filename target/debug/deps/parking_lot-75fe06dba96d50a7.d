/root/repo/target/debug/deps/parking_lot-75fe06dba96d50a7.d: crates/compat/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-75fe06dba96d50a7.rlib: crates/compat/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-75fe06dba96d50a7.rmeta: crates/compat/parking_lot/src/lib.rs

crates/compat/parking_lot/src/lib.rs:
