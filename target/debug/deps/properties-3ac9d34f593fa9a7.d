/root/repo/target/debug/deps/properties-3ac9d34f593fa9a7.d: crates/backbone/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3ac9d34f593fa9a7.rmeta: crates/backbone/tests/properties.rs Cargo.toml

crates/backbone/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
