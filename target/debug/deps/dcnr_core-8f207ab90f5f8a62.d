/root/repo/target/debug/deps/dcnr_core-8f207ab90f5f8a62.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libdcnr_core-8f207ab90f5f8a62.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libdcnr_core-8f207ab90f5f8a62.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/inter.rs:
crates/core/src/intra.rs:
crates/core/src/report.rs:
