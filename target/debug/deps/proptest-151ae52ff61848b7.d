/root/repo/target/debug/deps/proptest-151ae52ff61848b7.d: crates/compat/proptest/src/lib.rs crates/compat/proptest/src/strategy.rs crates/compat/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-151ae52ff61848b7.rlib: crates/compat/proptest/src/lib.rs crates/compat/proptest/src/strategy.rs crates/compat/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-151ae52ff61848b7.rmeta: crates/compat/proptest/src/lib.rs crates/compat/proptest/src/strategy.rs crates/compat/proptest/src/test_runner.rs

crates/compat/proptest/src/lib.rs:
crates/compat/proptest/src/strategy.rs:
crates/compat/proptest/src/test_runner.rs:
