/root/repo/target/debug/deps/dcnr-10991ec7c260074d.d: crates/core/src/bin/dcnr.rs

/root/repo/target/debug/deps/dcnr-10991ec7c260074d: crates/core/src/bin/dcnr.rs

crates/core/src/bin/dcnr.rs:
