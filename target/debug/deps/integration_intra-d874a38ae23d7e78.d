/root/repo/target/debug/deps/integration_intra-d874a38ae23d7e78.d: crates/core/../../tests/integration_intra.rs

/root/repo/target/debug/deps/integration_intra-d874a38ae23d7e78: crates/core/../../tests/integration_intra.rs

crates/core/../../tests/integration_intra.rs:
