/root/repo/target/debug/deps/dcnr_chaos-1631d0d58f5e35f1.d: crates/chaos/src/lib.rs crates/chaos/src/config.rs crates/chaos/src/dead_letter.rs crates/chaos/src/dedup.rs crates/chaos/src/inject.rs crates/chaos/src/pipeline.rs crates/chaos/src/reconcile.rs crates/chaos/src/report.rs crates/chaos/src/store.rs crates/chaos/src/study.rs

/root/repo/target/debug/deps/dcnr_chaos-1631d0d58f5e35f1: crates/chaos/src/lib.rs crates/chaos/src/config.rs crates/chaos/src/dead_letter.rs crates/chaos/src/dedup.rs crates/chaos/src/inject.rs crates/chaos/src/pipeline.rs crates/chaos/src/reconcile.rs crates/chaos/src/report.rs crates/chaos/src/store.rs crates/chaos/src/study.rs

crates/chaos/src/lib.rs:
crates/chaos/src/config.rs:
crates/chaos/src/dead_letter.rs:
crates/chaos/src/dedup.rs:
crates/chaos/src/inject.rs:
crates/chaos/src/pipeline.rs:
crates/chaos/src/reconcile.rs:
crates/chaos/src/report.rs:
crates/chaos/src/store.rs:
crates/chaos/src/study.rs:
