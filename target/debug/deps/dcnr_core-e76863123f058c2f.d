/root/repo/target/debug/deps/dcnr_core-e76863123f058c2f.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

/root/repo/target/debug/deps/dcnr_core-e76863123f058c2f: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/inter.rs:
crates/core/src/intra.rs:
crates/core/src/report.rs:
