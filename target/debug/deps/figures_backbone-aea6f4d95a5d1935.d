/root/repo/target/debug/deps/figures_backbone-aea6f4d95a5d1935.d: crates/bench/benches/figures_backbone.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_backbone-aea6f4d95a5d1935.rmeta: crates/bench/benches/figures_backbone.rs Cargo.toml

crates/bench/benches/figures_backbone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
