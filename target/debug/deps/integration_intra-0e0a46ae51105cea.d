/root/repo/target/debug/deps/integration_intra-0e0a46ae51105cea.d: crates/core/../../tests/integration_intra.rs

/root/repo/target/debug/deps/integration_intra-0e0a46ae51105cea: crates/core/../../tests/integration_intra.rs

crates/core/../../tests/integration_intra.rs:
