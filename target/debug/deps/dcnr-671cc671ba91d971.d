/root/repo/target/debug/deps/dcnr-671cc671ba91d971.d: crates/core/src/bin/dcnr.rs

/root/repo/target/debug/deps/libdcnr-671cc671ba91d971.rmeta: crates/core/src/bin/dcnr.rs

crates/core/src/bin/dcnr.rs:
