/root/repo/target/debug/deps/bytes-82203537bcdb3418.d: crates/compat/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-82203537bcdb3418.rlib: crates/compat/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-82203537bcdb3418.rmeta: crates/compat/bytes/src/lib.rs

crates/compat/bytes/src/lib.rs:
