/root/repo/target/debug/deps/properties-8edf2779ec9346b0.d: crates/sev/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-8edf2779ec9346b0.rmeta: crates/sev/tests/properties.rs Cargo.toml

crates/sev/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
