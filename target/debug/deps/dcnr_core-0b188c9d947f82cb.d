/root/repo/target/debug/deps/dcnr_core-0b188c9d947f82cb.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libdcnr_core-0b188c9d947f82cb.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libdcnr_core-0b188c9d947f82cb.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/inter.rs:
crates/core/src/intra.rs:
crates/core/src/report.rs:
