/root/repo/target/debug/deps/dcnr-44857e5a8519beb9.d: crates/core/src/bin/dcnr.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr-44857e5a8519beb9.rmeta: crates/core/src/bin/dcnr.rs Cargo.toml

crates/core/src/bin/dcnr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
