/root/repo/target/debug/deps/dcnr_remediation-2af95905f632a0ef.d: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_remediation-2af95905f632a0ef.rmeta: crates/remediation/src/lib.rs crates/remediation/src/action.rs crates/remediation/src/engine.rs crates/remediation/src/monitor.rs crates/remediation/src/policy.rs crates/remediation/src/queue.rs crates/remediation/src/report.rs Cargo.toml

crates/remediation/src/lib.rs:
crates/remediation/src/action.rs:
crates/remediation/src/engine.rs:
crates/remediation/src/monitor.rs:
crates/remediation/src/policy.rs:
crates/remediation/src/queue.rs:
crates/remediation/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
