/root/repo/target/debug/deps/dcnr_bench-47fe0969aa4c4c8b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dcnr_bench-47fe0969aa4c4c8b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
