/root/repo/target/debug/deps/dcnr_backbone-6b58e9b4fc7908eb.d: crates/backbone/src/lib.rs crates/backbone/src/email.rs crates/backbone/src/failure_model.rs crates/backbone/src/geo.rs crates/backbone/src/metrics.rs crates/backbone/src/models.rs crates/backbone/src/optical.rs crates/backbone/src/planning.rs crates/backbone/src/sim.rs crates/backbone/src/ticket.rs crates/backbone/src/topo.rs crates/backbone/src/vendor.rs crates/backbone/src/wan.rs

/root/repo/target/debug/deps/dcnr_backbone-6b58e9b4fc7908eb: crates/backbone/src/lib.rs crates/backbone/src/email.rs crates/backbone/src/failure_model.rs crates/backbone/src/geo.rs crates/backbone/src/metrics.rs crates/backbone/src/models.rs crates/backbone/src/optical.rs crates/backbone/src/planning.rs crates/backbone/src/sim.rs crates/backbone/src/ticket.rs crates/backbone/src/topo.rs crates/backbone/src/vendor.rs crates/backbone/src/wan.rs

crates/backbone/src/lib.rs:
crates/backbone/src/email.rs:
crates/backbone/src/failure_model.rs:
crates/backbone/src/geo.rs:
crates/backbone/src/metrics.rs:
crates/backbone/src/models.rs:
crates/backbone/src/optical.rs:
crates/backbone/src/planning.rs:
crates/backbone/src/sim.rs:
crates/backbone/src/ticket.rs:
crates/backbone/src/topo.rs:
crates/backbone/src/vendor.rs:
crates/backbone/src/wan.rs:
