/root/repo/target/debug/deps/dcnr_service-f48fcef1406b5553.d: crates/service/src/lib.rs crates/service/src/drill.rs crates/service/src/impact.rs crates/service/src/placement.rs crates/service/src/resolution.rs crates/service/src/severity.rs crates/service/src/sevgen.rs

/root/repo/target/debug/deps/dcnr_service-f48fcef1406b5553: crates/service/src/lib.rs crates/service/src/drill.rs crates/service/src/impact.rs crates/service/src/placement.rs crates/service/src/resolution.rs crates/service/src/severity.rs crates/service/src/sevgen.rs

crates/service/src/lib.rs:
crates/service/src/drill.rs:
crates/service/src/impact.rs:
crates/service/src/placement.rs:
crates/service/src/resolution.rs:
crates/service/src/severity.rs:
crates/service/src/sevgen.rs:
