/root/repo/target/debug/deps/crossbeam-74fd225ebd25c2c2.d: crates/compat/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-74fd225ebd25c2c2.rlib: crates/compat/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-74fd225ebd25c2c2.rmeta: crates/compat/crossbeam/src/lib.rs

crates/compat/crossbeam/src/lib.rs:
