/root/repo/target/debug/deps/dcnr_faults-f28537bde657e0f9.d: crates/faults/src/lib.rs crates/faults/src/calibration.rs crates/faults/src/generator.rs crates/faults/src/growth.rs crates/faults/src/hazard.rs crates/faults/src/root_cause.rs crates/faults/src/wearout.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_faults-f28537bde657e0f9.rmeta: crates/faults/src/lib.rs crates/faults/src/calibration.rs crates/faults/src/generator.rs crates/faults/src/growth.rs crates/faults/src/hazard.rs crates/faults/src/root_cause.rs crates/faults/src/wearout.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/calibration.rs:
crates/faults/src/generator.rs:
crates/faults/src/growth.rs:
crates/faults/src/hazard.rs:
crates/faults/src/root_cause.rs:
crates/faults/src/wearout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
