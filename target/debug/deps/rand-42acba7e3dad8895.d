/root/repo/target/debug/deps/rand-42acba7e3dad8895.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-42acba7e3dad8895.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-42acba7e3dad8895.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
