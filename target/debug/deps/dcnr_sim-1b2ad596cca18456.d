/root/repo/target/debug/deps/dcnr_sim-1b2ad596cca18456.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdcnr_sim-1b2ad596cca18456.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdcnr_sim-1b2ad596cca18456.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
