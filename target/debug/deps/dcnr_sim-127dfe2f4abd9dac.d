/root/repo/target/debug/deps/dcnr_sim-127dfe2f4abd9dac.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_sim-127dfe2f4abd9dac.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
