/root/repo/target/debug/deps/properties-5a9687492bcaa87b.d: crates/chaos/tests/properties.rs

/root/repo/target/debug/deps/properties-5a9687492bcaa87b: crates/chaos/tests/properties.rs

crates/chaos/tests/properties.rs:
