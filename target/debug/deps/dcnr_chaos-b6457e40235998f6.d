/root/repo/target/debug/deps/dcnr_chaos-b6457e40235998f6.d: crates/chaos/src/lib.rs crates/chaos/src/config.rs crates/chaos/src/dead_letter.rs crates/chaos/src/dedup.rs crates/chaos/src/inject.rs crates/chaos/src/pipeline.rs crates/chaos/src/reconcile.rs crates/chaos/src/report.rs crates/chaos/src/store.rs crates/chaos/src/study.rs

/root/repo/target/debug/deps/libdcnr_chaos-b6457e40235998f6.rlib: crates/chaos/src/lib.rs crates/chaos/src/config.rs crates/chaos/src/dead_letter.rs crates/chaos/src/dedup.rs crates/chaos/src/inject.rs crates/chaos/src/pipeline.rs crates/chaos/src/reconcile.rs crates/chaos/src/report.rs crates/chaos/src/store.rs crates/chaos/src/study.rs

/root/repo/target/debug/deps/libdcnr_chaos-b6457e40235998f6.rmeta: crates/chaos/src/lib.rs crates/chaos/src/config.rs crates/chaos/src/dead_letter.rs crates/chaos/src/dedup.rs crates/chaos/src/inject.rs crates/chaos/src/pipeline.rs crates/chaos/src/reconcile.rs crates/chaos/src/report.rs crates/chaos/src/store.rs crates/chaos/src/study.rs

crates/chaos/src/lib.rs:
crates/chaos/src/config.rs:
crates/chaos/src/dead_letter.rs:
crates/chaos/src/dedup.rs:
crates/chaos/src/inject.rs:
crates/chaos/src/pipeline.rs:
crates/chaos/src/reconcile.rs:
crates/chaos/src/report.rs:
crates/chaos/src/store.rs:
crates/chaos/src/study.rs:
