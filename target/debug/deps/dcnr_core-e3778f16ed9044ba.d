/root/repo/target/debug/deps/dcnr_core-e3778f16ed9044ba.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libdcnr_core-e3778f16ed9044ba.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/inter.rs:
crates/core/src/intra.rs:
crates/core/src/report.rs:
