/root/repo/target/debug/deps/dcnr_service-29f4823e9c4a1852.d: crates/service/src/lib.rs crates/service/src/drill.rs crates/service/src/impact.rs crates/service/src/placement.rs crates/service/src/resolution.rs crates/service/src/severity.rs crates/service/src/sevgen.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_service-29f4823e9c4a1852.rmeta: crates/service/src/lib.rs crates/service/src/drill.rs crates/service/src/impact.rs crates/service/src/placement.rs crates/service/src/resolution.rs crates/service/src/severity.rs crates/service/src/sevgen.rs Cargo.toml

crates/service/src/lib.rs:
crates/service/src/drill.rs:
crates/service/src/impact.rs:
crates/service/src/placement.rs:
crates/service/src/resolution.rs:
crates/service/src/severity.rs:
crates/service/src/sevgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
