/root/repo/target/debug/deps/dcnr_topology-c61e22c9c86f80c7.d: crates/topology/src/lib.rs crates/topology/src/cluster.rs crates/topology/src/datacenter.rs crates/topology/src/device.rs crates/topology/src/fabric.rs crates/topology/src/fleet.rs crates/topology/src/graph.rs crates/topology/src/naming.rs crates/topology/src/routing.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_topology-c61e22c9c86f80c7.rmeta: crates/topology/src/lib.rs crates/topology/src/cluster.rs crates/topology/src/datacenter.rs crates/topology/src/device.rs crates/topology/src/fabric.rs crates/topology/src/fleet.rs crates/topology/src/graph.rs crates/topology/src/naming.rs crates/topology/src/routing.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/cluster.rs:
crates/topology/src/datacenter.rs:
crates/topology/src/device.rs:
crates/topology/src/fabric.rs:
crates/topology/src/fleet.rs:
crates/topology/src/graph.rs:
crates/topology/src/naming.rs:
crates/topology/src/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
