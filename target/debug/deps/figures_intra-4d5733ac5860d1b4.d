/root/repo/target/debug/deps/figures_intra-4d5733ac5860d1b4.d: crates/bench/benches/figures_intra.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_intra-4d5733ac5860d1b4.rmeta: crates/bench/benches/figures_intra.rs Cargo.toml

crates/bench/benches/figures_intra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
