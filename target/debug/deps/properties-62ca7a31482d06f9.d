/root/repo/target/debug/deps/properties-62ca7a31482d06f9.d: crates/chaos/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-62ca7a31482d06f9.rmeta: crates/chaos/tests/properties.rs Cargo.toml

crates/chaos/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
