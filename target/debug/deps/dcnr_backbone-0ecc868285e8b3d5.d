/root/repo/target/debug/deps/dcnr_backbone-0ecc868285e8b3d5.d: crates/backbone/src/lib.rs crates/backbone/src/email.rs crates/backbone/src/failure_model.rs crates/backbone/src/geo.rs crates/backbone/src/metrics.rs crates/backbone/src/models.rs crates/backbone/src/optical.rs crates/backbone/src/planning.rs crates/backbone/src/sim.rs crates/backbone/src/ticket.rs crates/backbone/src/topo.rs crates/backbone/src/vendor.rs crates/backbone/src/wan.rs Cargo.toml

/root/repo/target/debug/deps/libdcnr_backbone-0ecc868285e8b3d5.rmeta: crates/backbone/src/lib.rs crates/backbone/src/email.rs crates/backbone/src/failure_model.rs crates/backbone/src/geo.rs crates/backbone/src/metrics.rs crates/backbone/src/models.rs crates/backbone/src/optical.rs crates/backbone/src/planning.rs crates/backbone/src/sim.rs crates/backbone/src/ticket.rs crates/backbone/src/topo.rs crates/backbone/src/vendor.rs crates/backbone/src/wan.rs Cargo.toml

crates/backbone/src/lib.rs:
crates/backbone/src/email.rs:
crates/backbone/src/failure_model.rs:
crates/backbone/src/geo.rs:
crates/backbone/src/metrics.rs:
crates/backbone/src/models.rs:
crates/backbone/src/optical.rs:
crates/backbone/src/planning.rs:
crates/backbone/src/sim.rs:
crates/backbone/src/ticket.rs:
crates/backbone/src/topo.rs:
crates/backbone/src/vendor.rs:
crates/backbone/src/wan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
