/root/repo/target/debug/deps/properties-267e755dfe34a229.d: crates/stats/tests/properties.rs

/root/repo/target/debug/deps/properties-267e755dfe34a229: crates/stats/tests/properties.rs

crates/stats/tests/properties.rs:
