/root/repo/target/debug/deps/properties-911cf3489a93e0c5.d: crates/backbone/tests/properties.rs

/root/repo/target/debug/deps/properties-911cf3489a93e0c5: crates/backbone/tests/properties.rs

crates/backbone/tests/properties.rs:
