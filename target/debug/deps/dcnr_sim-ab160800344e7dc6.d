/root/repo/target/debug/deps/dcnr_sim-ab160800344e7dc6.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdcnr_sim-ab160800344e7dc6.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
